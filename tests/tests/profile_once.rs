//! The hoisting guarantee of the sharded `StandardMatch` pipeline: one
//! `match_databases` run profiles each target column exactly once, no matter
//! how many source tables score against it.
//!
//! This file intentionally holds a single test: it measures a process-wide
//! telemetry counter, so it must not share its test binary with other tests
//! that drive the matchers concurrently.

use cxm_core::{ContextMatchConfig, ContextualMatcher};
use cxm_matching::column::telemetry;
use cxm_matching::StandardMatcher;
use cxm_relational::{tuple, Attribute, Database, Table, TableSchema};

fn text_table(name: &str, attrs: [&str; 2], rows: Vec<[&str; 2]>) -> Table {
    Table::with_rows(
        TableSchema::new(name, attrs.iter().map(|a| Attribute::text(*a)).collect::<Vec<_>>()),
        rows.into_iter().map(|[a, b]| tuple![a, b]).collect(),
    )
    .unwrap()
}

#[test]
fn match_databases_profiles_each_target_column_exactly_once() {
    // Three source tables × two target tables, all-text columns so the q-gram
    // matcher applies to (and profiles) every column.
    let source = Database::new("RS")
        .with_table(text_table(
            "inv_a",
            ["name", "descr"],
            vec![["leaves of grass", "hardcover"], ["kind of blue", "columbia cd"]],
        ))
        .with_table(text_table(
            "inv_b",
            ["title", "note"],
            vec![["moby dick", "paperback"], ["abbey road", "apple cd"]],
        ))
        .with_table(text_table(
            "inv_c",
            ["label", "kind"],
            vec![["the historian", "hardcover"], ["x&y", "capitol cd"]],
        ));
    let target = Database::new("RT")
        .with_table(text_table(
            "book",
            ["title", "format"],
            vec![["war and peace", "paperback"], ["middlemarch", "hardcover"]],
        ))
        .with_table(text_table(
            "music",
            ["title", "label"],
            vec![["blue train", "blue note cd"], ["hotel california", "elektra cd"]],
        ));
    let source_cols = 6; // 3 tables × 2 text columns
    let target_cols = 4; // 2 tables × 2 text columns

    let matcher = StandardMatcher::with_defaults();
    let before = telemetry::qgram_profile_builds();
    let outcome = matcher.match_databases(&source, &target);
    let builds = telemetry::qgram_profile_builds() - before;
    assert_eq!(outcome.all_pairs.len(), source_cols * target_cols);
    assert_eq!(
        builds,
        source_cols + target_cols,
        "each column must be profiled exactly once per run \
         (the serial legacy loop would profile each target column once per source table)"
    );

    // The serial reference path really does re-profile the targets per source
    // table — the cost the hoisted batch removes.
    let before = telemetry::qgram_profile_builds();
    let _ = matcher.match_databases_serial(&source, &target);
    let serial_builds = telemetry::qgram_profile_builds() - before;
    assert_eq!(serial_builds, source_cols + 3 * target_cols);

    // The full contextual pipeline threads the same hoisted batch through
    // prototype matching AND candidate re-scoring: the sharded run must
    // profile exactly (source tables − 1) × target columns fewer times than
    // the serial reference, whose only difference is re-extracting the target
    // batch each iteration. (View-restricted source columns profile
    // identically on both paths, so they cancel in the delta.)
    let cm = ContextualMatcher::new(ContextMatchConfig::default());
    let before = telemetry::qgram_profile_builds();
    let sharded_result = cm.run(&source, &target).unwrap();
    let sharded_run_builds = telemetry::qgram_profile_builds() - before;
    let before = telemetry::qgram_profile_builds();
    let serial_result = cm.run_serial(&source, &target).unwrap();
    let serial_run_builds = telemetry::qgram_profile_builds() - before;
    assert_eq!(sharded_result.selected, serial_result.selected);
    assert_eq!(serial_run_builds - sharded_run_builds, 2 * target_cols);
}
