//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use cxm_relational::{
    split_rows, Attribute, Condition, SplitRatio, Table, TableSchema, Tuple, Value, ViewDef,
    ViewFamily,
};
use cxm_stats::{f_measure, normal_cdf, Binomial, MatchSetQuality, Moments};

/// Build a single-column table of integers.
fn int_table(values: &[i64]) -> Table {
    let schema = TableSchema::new("t", vec![Attribute::int("x")]);
    Table::with_rows(schema, values.iter().map(|&v| Tuple::new(vec![Value::Int(v)])).collect())
        .expect("arity matches")
}

proptest! {
    /// A view family built from the distinct values of an attribute always
    /// partitions the table: member views are disjoint and cover every row.
    #[test]
    fn view_families_partition_tables(values in prop::collection::vec(0i64..6, 1..120)) {
        let table = int_table(&values);
        let family = ViewFamily::partition_by_values(&table, "x").unwrap();
        prop_assert!(family.is_mutually_exclusive());
        let db = cxm_relational::Database::new("d").with_table(table.clone());
        let parts = family.evaluate(&db).unwrap();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, table.len());
    }

    /// Selection views never return rows that violate their condition, and the
    /// selectivity equals the returned fraction.
    #[test]
    fn selection_views_are_sound(values in prop::collection::vec(0i64..10, 1..100), pivot in 0i64..10) {
        let table = int_table(&values);
        let db = cxm_relational::Database::new("d").with_table(table.clone());
        let view = ViewDef::named_by_condition("t", Condition::eq("x", pivot));
        let out = view.evaluate(&db).unwrap();
        for row in out.rows() {
            prop_assert_eq!(row.at(0), &Value::Int(pivot));
        }
        let expected = values.iter().filter(|&&v| v == pivot).count();
        prop_assert_eq!(out.len(), expected);
        let sel = view.selectivity(&table);
        prop_assert!((sel - expected as f64 / values.len() as f64).abs() < 1e-12);
    }

    /// Train/test splitting is a partition: sizes add up and every row lands in
    /// exactly one side, for any ratio and seed.
    #[test]
    fn split_rows_is_a_partition(
        values in prop::collection::vec(0i64..1000, 2..200),
        ratio in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let table = int_table(&values);
        let (train, test) = split_rows(&table, SplitRatio(ratio), seed);
        prop_assert_eq!(train.len() + test.len(), table.len());
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
        let mut combined: Vec<i64> = train
            .column("x").unwrap().iter().chain(test.column("x").unwrap().iter())
            .map(|v| v.as_i64().unwrap())
            .collect();
        combined.sort_unstable();
        let mut original = values.clone();
        original.sort_unstable();
        prop_assert_eq!(combined, original);
    }

    /// The bitmap-backed (dense) `RowSelection` representation is
    /// behavior-identical to the sorted-vector one: over random selections,
    /// every set operation agrees with reference set semantics, and a sparse
    /// twin built from the same indices is equal and operates identically.
    /// Binary values over a large base push conditions past the ~50 %
    /// density threshold, so both representations (and the mixed-pair ops)
    /// are exercised.
    #[test]
    fn dense_and_sparse_selections_agree(
        values in prop::collection::vec(0i64..2, 1..300),
        pivot in 0i64..2,
        stride in 1usize..7,
    ) {
        use std::collections::BTreeSet;
        use cxm_relational::RowSelection;

        let table = int_table(&values);
        let n = values.len();
        let a = RowSelection::of_condition(&table, &Condition::eq("x", pivot));
        let b = RowSelection::of_condition(&table, &Condition::eq("x", 1 - pivot));
        let sa: BTreeSet<usize> = a.iter().collect();
        let sb: BTreeSet<usize> = b.iter().collect();

        // Set algebra agrees with reference semantics.
        let inter: Vec<usize> = sa.intersection(&sb).copied().collect();
        let uni: Vec<usize> = sa.union(&sb).copied().collect();
        let comp: Vec<usize> = (0..n).filter(|i| !sa.contains(i)).collect();
        prop_assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), inter);
        prop_assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), uni.clone());
        prop_assert_eq!(a.complement(n).iter().collect::<Vec<_>>(), comp);
        prop_assert_eq!(a.union(&b).len(), n, "binary column: union covers the base");

        // A sparse twin of the same content is equal and ops identically,
        // regardless of which representation `a` picked.
        let twin = RowSelection::from_sorted(a.iter().collect());
        prop_assert!(!twin.is_dense());
        prop_assert_eq!(&twin, &a);
        prop_assert_eq!(twin.intersect(&b), a.intersect(&b));
        prop_assert_eq!(twin.union(&b), a.union(&b));
        prop_assert_eq!(twin.complement(n), a.complement(n));

        // Mixed-representation pairs (strided sparse subset vs `a`).
        let strided = RowSelection::from_sorted((0..n).step_by(stride).collect());
        let ss: BTreeSet<usize> = strided.iter().collect();
        let mixed_inter: Vec<usize> = ss.intersection(&sa).copied().collect();
        let mixed_uni: Vec<usize> = ss.union(&sa).copied().collect();
        prop_assert_eq!(strided.intersect(&a).iter().collect::<Vec<_>>(), mixed_inter.clone());
        prop_assert_eq!(a.intersect(&strided).iter().collect::<Vec<_>>(), mixed_inter);
        prop_assert_eq!(strided.union(&a).iter().collect::<Vec<_>>(), mixed_uni.clone());
        prop_assert_eq!(a.union(&strided).iter().collect::<Vec<_>>(), mixed_uni);

        // Membership, indexing and length agree with the index list.
        let listed: Vec<usize> = a.indices().to_vec();
        prop_assert_eq!(listed.len(), a.len());
        for (k, &i) in listed.iter().enumerate() {
            prop_assert!(a.contains(i));
            prop_assert_eq!(a.nth_index(k), Some(i));
        }
        prop_assert_eq!(a.max_index(), listed.last().copied());
    }

    /// Conditions: `and`/`or` composition never mentions attributes that the
    /// operands do not mention, and evaluation is consistent with the boolean
    /// semantics of the composition.
    #[test]
    fn condition_composition_is_consistent(a in 0i64..4, b in 0i64..4, x in 0i64..4) {
        let schema = TableSchema::new("t", vec![Attribute::int("x")]);
        let row = Tuple::new(vec![Value::Int(x)]);
        let ca = Condition::eq("x", a);
        let cb = Condition::eq("x", b);
        let and = ca.clone().and(cb.clone());
        let or = ca.clone().or(cb.clone());
        prop_assert_eq!(and.eval(&schema, &row), ca.eval(&schema, &row) && cb.eval(&schema, &row));
        prop_assert_eq!(or.eval(&schema, &row), ca.eval(&schema, &row) || cb.eval(&schema, &row));
        prop_assert!(and.attributes().len() <= 1 + 1);
        prop_assert!(or.complexity() <= 1);
    }

    /// The normal CDF is monotone and bounded; binomial mean/variance formulas
    /// hold for arbitrary parameters.
    #[test]
    fn stats_invariants(x in -6.0f64..6.0, dx in 0.0f64..3.0, n in 1u64..400, p in 0.0f64..1.0) {
        let c1 = normal_cdf(x);
        let c2 = normal_cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!(c2 + 1e-12 >= c1);
        let b = Binomial::new(n, p);
        prop_assert!((b.mean() - n as f64 * p).abs() < 1e-9);
        prop_assert!(b.variance() >= -1e-12);
        prop_assert!(b.std_dev() <= n as f64 / 2.0 + 1.0);
    }

    /// Welford moments match the direct two-pass computation.
    #[test]
    fn moments_match_two_pass(values in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let m = Moments::from_samples(values.iter().copied());
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        prop_assert!((m.mean() - mean).abs() < 1e-6);
        prop_assert!((m.population_variance() - var).abs() < 1e-6);
    }

    /// Match-set quality: accuracy and precision stay in [0, 1], FMeasure is
    /// bounded by both, and comparing a set against itself is perfect.
    #[test]
    fn match_set_quality_bounds(
        found in prop::collection::btree_set(0u32..50, 0..30),
        truth in prop::collection::btree_set(0u32..50, 0..30),
    ) {
        let found: Vec<u32> = found.into_iter().collect();
        let truth: Vec<u32> = truth.into_iter().collect();
        let q = MatchSetQuality::compare(&found, &truth);
        prop_assert!((0.0..=1.0).contains(&q.accuracy()));
        prop_assert!((0.0..=1.0).contains(&q.precision()));
        let f = q.f_measure();
        prop_assert!(f <= q.accuracy() + 1e-12 || f <= q.precision() + 1e-12);
        let self_q = MatchSetQuality::compare(&truth, &truth);
        prop_assert!((self_q.f_measure() - 1.0).abs() < 1e-12);
        prop_assert!((f_measure(q.accuracy(), q.precision()) - f).abs() < 1e-12);
    }
}

mod interned_kernels {
    use std::sync::Arc;

    use proptest::prelude::*;

    use cxm_matching::instance::{QGramMatcher, ValueOverlapMatcher};
    use cxm_matching::{ColumnData, GramInterner, Matcher};
    use cxm_relational::{AttrRef, DataType};

    /// Alphabet the generated values draw from: small, with a space and a
    /// digit, so profiles overlap often (the interesting regime for the
    /// merge-join kernels) and normalization is exercised.
    const ALPHABET: &[char] = &['a', 'b', 'c', ' ', 'x', '7'];

    /// Render index vectors (what the vendored proptest shim can generate)
    /// into value strings over [`ALPHABET`].
    fn texts(raw: Vec<Vec<usize>>) -> Vec<String> {
        raw.into_iter()
            .map(|word| word.into_iter().map(|i| ALPHABET[i % ALPHABET.len()]).collect())
            .collect()
    }

    /// Strategy for a column's raw values: up to 40 strings of up to 12
    /// alphabet characters.
    fn column_values() -> impl Strategy<Value = Vec<Vec<usize>>> {
        prop::collection::vec(prop::collection::vec(0usize..6, 0..12), 0..40)
    }

    fn column(
        name: &str,
        values: Vec<String>,
        interner: &Arc<GramInterner>,
    ) -> ColumnData<'static> {
        ColumnData::owned(
            AttrRef::new("t", name),
            DataType::Text,
            values.into_iter().map(cxm_relational::Value::str).collect(),
        )
        .with_interner(Arc::clone(interner))
    }

    proptest! {
        /// The interned merge-join cosine agrees with the legacy
        /// `BTreeMap<String, f64>` kernel to within 1e-12 on arbitrary
        /// columns (the two kernels round differently: legacy normalizes
        /// each profile before the dot product, the interned kernel keeps
        /// exact integer counts and divides by the norms once).
        #[test]
        fn interned_cosine_matches_legacy(a in column_values(), b in column_values()) {
            let interner = Arc::new(GramInterner::new());
            let ca = column("a", texts(a), &interner);
            let cb = column("b", texts(b), &interner);
            let fast = QGramMatcher::new().score(&ca, &cb);
            let slow = QGramMatcher::legacy().score(&ca, &cb);
            prop_assert!((fast - slow).abs() <= 1e-12, "interned {fast} vs legacy {slow}");
            prop_assert!((0.0..=1.0).contains(&fast));
            // Symmetry holds bit-exactly for the interned kernel.
            prop_assert_eq!(
                QGramMatcher::new().score(&cb, &ca).to_bits(),
                fast.to_bits()
            );
        }

        /// The interned merge-join Jaccard is **bit-identical** to the
        /// legacy `BTreeSet<String>` kernel: both divide the same two
        /// intersection/union counts.
        #[test]
        fn interned_jaccard_matches_legacy(a in column_values(), b in column_values()) {
            let interner = Arc::new(GramInterner::new());
            let ca = column("a", texts(a), &interner);
            let cb = column("b", texts(b), &interner);
            let fast = ValueOverlapMatcher::new().score(&ca, &cb);
            let slow = ValueOverlapMatcher::legacy().score(&ca, &cb);
            prop_assert_eq!(fast.to_bits(), slow.to_bits(), "interned {} vs legacy {}", fast, slow);
        }

        /// Interner ids round-trip (`resolve(intern(s)) == s`), are stable
        /// on re-intern, and are injective over distinct strings.
        #[test]
        fn interner_ids_round_trip(raw in prop::collection::vec(prop::collection::vec(0usize..6, 0..8), 1..60)) {
            let strings = texts(raw);
            let interner = GramInterner::new();
            let ids: Vec<u32> = strings.iter().map(|s| interner.intern(s)).collect();
            for (s, &id) in strings.iter().zip(&ids) {
                prop_assert_eq!(interner.resolve(id).as_deref(), Some(s.as_str()));
                prop_assert_eq!(interner.intern(s), id, "re-interning must be stable");
                prop_assert_eq!(interner.lookup(s), Some(id));
            }
            let distinct: std::collections::BTreeSet<&String> = strings.iter().collect();
            let distinct_ids: std::collections::BTreeSet<u32> = ids.iter().copied().collect();
            prop_assert_eq!(distinct.len(), distinct_ids.len(), "ids are injective");
            prop_assert_eq!(interner.len(), distinct.len());
        }
    }
}

mod warm_keys {
    use proptest::prelude::*;

    use cxm_relational::{
        combine_column_fingerprints, Attribute, Table, TableSchema, Tuple, Value,
    };

    /// Alphabet the generated values draw from (see `interned_kernels`).
    const ALPHABET: &[char] = &['a', 'b', 'c', ' ', 'x', '7'];

    fn word(raw: &[usize]) -> String {
        raw.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect()
    }

    /// A three-text-column table whose cell values are derived from `rows`
    /// (one generated word per row; the three columns see rotated variants,
    /// so columns differ but remain deterministic in the input).
    fn three_column_table(rows: &[Vec<usize>]) -> Table {
        let schema = TableSchema::new(
            "t",
            vec![Attribute::text("a"), Attribute::text("b"), Attribute::text("c")],
        );
        let tuples = rows
            .iter()
            .enumerate()
            .map(|(i, raw)| {
                let w = word(raw);
                Tuple::new(vec![
                    Value::str(w.clone()),
                    Value::str(format!("{w}-{i}")),
                    Value::str(format!("{}#{w}", i % 3)),
                ])
            })
            .collect();
        Table::with_rows(schema, tuples).expect("arity matches")
    }

    proptest! {
        /// `Table::fingerprint` is exactly the public combinator over the
        /// per-column fingerprints — the contract that lets table-level and
        /// column-level warm keys coexist without ever disagreeing.
        #[test]
        fn table_fingerprint_is_the_column_combinator(
            rows in prop::collection::vec(prop::collection::vec(0usize..6, 0..8), 1..24),
        ) {
            let table = three_column_table(&rows);
            prop_assert_eq!(table.column_fingerprints().len(), 3);
            prop_assert_eq!(
                combine_column_fingerprints(
                    table.name(),
                    table.len(),
                    table.column_fingerprints(),
                ),
                table.fingerprint()
            );
            // The cached family is stable across reads and across clones.
            prop_assert_eq!(table.fingerprint(), table.clone().fingerprint());
        }

        /// Editing one column's values changes that column's fingerprint and
        /// no sibling's — the invariant column-granular invalidation rests
        /// on. (The table fingerprint changes too, being the combinator.)
        #[test]
        fn editing_one_column_changes_only_its_fingerprint(
            rows in prop::collection::vec(prop::collection::vec(0usize..6, 0..8), 1..24),
            column in 0usize..3,
            row in any::<u64>(),
        ) {
            let table = three_column_table(&rows);
            let row = (row % table.len() as u64) as usize;
            // Append a sentinel to one cell of the chosen column: the edited
            // bag strictly differs.
            let tuples: Vec<Tuple> = table
                .rows()
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    Tuple::new(
                        (0..3)
                            .map(|c| {
                                if i == row && c == column {
                                    Value::str(format!("{}!", r.at(c).as_text()))
                                } else {
                                    r.at(c).clone()
                                }
                            })
                            .collect(),
                    )
                })
                .collect();
            let edited = Table::with_rows(table.schema().clone(), tuples).expect("arity matches");

            let before = table.column_fingerprints();
            let after = edited.column_fingerprints();
            for c in 0..3 {
                let name = ["a", "b", "c"][c];
                if c == column {
                    prop_assert_ne!(before[c], after[c], "edited column {} must re-key", name);
                } else {
                    prop_assert_eq!(before[c], after[c], "sibling column {} must not re-key", name);
                }
                // The slice and the by-name accessor agree.
                prop_assert_eq!(after[c], edited.column_fingerprint(name).unwrap());
            }
            prop_assert_ne!(table.fingerprint(), edited.fingerprint());
        }
    }
}

mod result_cache {
    use proptest::prelude::*;

    use cxm_core::{ContextMatchConfig, ContextualMatcher};
    use cxm_relational::{Attribute, Database, Table, TableSchema, Tuple, Value};
    use cxm_service::MatchService;

    const ALPHABET: &[char] = &['a', 'b', 'c', ' ', 'x', '7'];

    fn db(name: &str, table: &str, attr: &str, raw: &[Vec<usize>]) -> Database {
        let rows = raw
            .iter()
            .map(|w| {
                Tuple::new(vec![Value::str(
                    w.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect::<String>(),
                )])
            })
            .collect();
        Database::new(name).with_table(
            Table::with_rows(TableSchema::new(table, vec![Attribute::text(attr)]), rows)
                .expect("arity matches"),
        )
    }

    proptest! {
        /// A result-cache hit is **bit-identical** to a fresh run: the
        /// second submission of an unchanged source is served from the
        /// cache, and every score and confidence matches a from-scratch
        /// `ContextualMatcher::run` down to the Debug representation (which
        /// round-trips `f64` bits).
        #[test]
        fn result_cache_hits_are_bit_identical_to_fresh_runs(
            source_rows in prop::collection::vec(prop::collection::vec(0usize..6, 0..6), 1..8),
            target_rows in prop::collection::vec(prop::collection::vec(0usize..6, 0..6), 1..8),
        ) {
            let source = db("RS", "inv", "name", &source_rows);
            let target = db("RT", "book", "title", &target_rows);
            let config = ContextMatchConfig::default().with_tau(0.1);

            let service = MatchService::new(config);
            service.register_target(&target);
            let first = service.submit(&source).unwrap();
            prop_assert!(!first.telemetry.result_cache_hit);
            let second = service.submit(&source).unwrap();
            prop_assert!(second.telemetry.result_cache_hit);
            prop_assert_eq!(second.telemetry.classifier_work_units, 0);

            let fresh = ContextualMatcher::new(config).run(&source, &target).unwrap();
            for (label, result) in [("first", &first.result), ("hit", &second.result)] {
                prop_assert_eq!(&result.selected, &fresh.selected, "{} selected", label);
                prop_assert_eq!(&result.standard, &fresh.standard, "{} standard", label);
                prop_assert_eq!(&result.candidates, &fresh.candidates, "{} candidates", label);
                prop_assert_eq!(
                    format!("{:?}", result.selected),
                    format!("{:?}", fresh.selected),
                    "{} selected bits", label
                );
                prop_assert_eq!(
                    format!("{:?}", result.candidates),
                    format!("{:?}", fresh.candidates),
                    "{} candidate bits", label
                );
            }
        }
    }
}

mod index_pruning {
    use std::sync::Arc;

    use proptest::prelude::*;

    use cxm_matching::instance::{QGramMatcher, ValueOverlapMatcher};
    use cxm_matching::{ColumnData, GramIndex, GramInterner, Matcher, StandardMatcher};
    use cxm_relational::{AttrRef, DataType};

    /// Alphabet the generated values draw from (see `interned_kernels`):
    /// small enough that profiles overlap often, so both the surviving and
    /// the pruned regime are exercised.
    const ALPHABET: &[char] = &['a', 'b', 'c', ' ', 'x', '7'];

    fn texts(raw: Vec<Vec<usize>>) -> Vec<String> {
        raw.into_iter()
            .map(|word| word.into_iter().map(|i| ALPHABET[i % ALPHABET.len()]).collect())
            .collect()
    }

    fn column(
        table: &str,
        name: &str,
        values: Vec<String>,
        interner: &Arc<GramInterner>,
    ) -> ColumnData<'static> {
        ColumnData::owned(
            AttrRef::new(table, name),
            DataType::Text,
            values.into_iter().map(cxm_relational::Value::str).collect(),
        )
        .with_interner(Arc::clone(interner))
    }

    /// Strategy for one column's raw values.
    fn column_values() -> impl Strategy<Value = Vec<Vec<usize>>> {
        prop::collection::vec(prop::collection::vec(0usize..6, 0..10), 0..25)
    }

    /// Strategy for a batch of 1–5 columns.
    fn batch_values() -> impl Strategy<Value = Vec<Vec<Vec<usize>>>> {
        prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0usize..6, 0..10), 0..20),
            1..6,
        )
    }

    proptest! {
        /// Admissibility of the index's pruning information on arbitrary
        /// columns: the cosine upper bound dominates the exact kernel score
        /// of every (source, slot) pair, a zero bound pins the exact score
        /// to literal `0.0`, and a zero value intersection pins the exact
        /// Jaccard to `+0.0` — the bit-identity contract the hinted scoring
        /// path rests on.
        #[test]
        fn index_bounds_are_admissible(
            source_raw in column_values(),
            targets_raw in batch_values(),
        ) {
            let interner = Arc::new(GramInterner::new());
            let source = column("s", "probe", texts(source_raw), &interner);
            let targets: Vec<ColumnData> = targets_raw
                .into_iter()
                .enumerate()
                .map(|(i, vals)| column("t", &format!("c{i}"), texts(vals), &interner))
                .collect();
            let index = GramIndex::build(&targets);
            let bounds = index.cosine_upper_bounds(&source.qgram3_ids());
            let scan = index.scan(&source.qgram3_ids(), &source.value_ids());
            for (i, target) in targets.iter().enumerate() {
                let exact = QGramMatcher::new().score(&source, target);
                prop_assert!(
                    exact <= bounds[i] + 1e-12,
                    "slot {}: exact {} exceeds bound {}", i, exact, bounds[i]
                );
                if bounds[i] == 0.0 {
                    prop_assert_eq!(exact.to_bits(), 0.0f64.to_bits(), "zero bound, slot {}", i);
                }
                let hint = scan.hint(i);
                if hint.qgram_zero() {
                    prop_assert_eq!(exact.to_bits(), 0.0f64.to_bits(), "pruned cosine, slot {}", i);
                }
                // The hint-served cosine (zero-skip or dot/(‖a‖·‖b‖) from
                // the scan's exact dot) is bit-identical to the kernel's.
                let served = QGramMatcher::new().score_with_hint(&source, target, hint);
                prop_assert_eq!(served.to_bits(), exact.to_bits(), "served cosine, slot {}", i);
                if hint.overlap_zero {
                    let jaccard = ValueOverlapMatcher::new().score(&source, target);
                    prop_assert_eq!(
                        jaccard.to_bits(), 0.0f64.to_bits(),
                        "pruned overlap, slot {}", i
                    );
                }
            }
        }

        /// Pruned and unpruned matching are **byte-identical** on arbitrary
        /// column batches: same accepted matches, same raw pair scores, same
        /// per-attribute score distributions, down to the Debug rendering
        /// (which round-trips `f64` bits).
        #[test]
        fn indexed_matching_is_byte_identical(
            sources_raw in batch_values(),
            targets_raw in batch_values(),
        ) {
            let interner = Arc::new(GramInterner::new());
            let sources: Vec<ColumnData> = sources_raw
                .into_iter()
                .enumerate()
                .map(|(i, vals)| column("s", &format!("a{i}"), texts(vals), &interner))
                .collect();
            let targets: Vec<ColumnData> = targets_raw
                .into_iter()
                .enumerate()
                .map(|(i, vals)| column("t", &format!("c{i}"), texts(vals), &interner))
                .collect();
            let index = GramIndex::build(&targets);
            let matcher = StandardMatcher::with_defaults();
            let plain = matcher.match_columns(&sources, &targets);
            let indexed = matcher.match_columns_indexed(&sources, &targets, Some(&index));
            prop_assert_eq!(
                format!("{:?}", plain.accepted),
                format!("{:?}", indexed.accepted)
            );
            prop_assert_eq!(
                format!("{:?}", plain.all_pairs),
                format!("{:?}", indexed.all_pairs)
            );
            for source in &sources {
                for matcher_name in ["name", "qgram", "overlap", "numeric"] {
                    prop_assert_eq!(
                        plain.distribution(&source.attr, matcher_name),
                        indexed.distribution(&source.attr, matcher_name),
                        "distribution for {:?}/{}", source.attr, matcher_name
                    );
                }
            }
        }
    }
}

mod par_shim {
    use proptest::prelude::*;
    use rayon::prelude::*;

    proptest! {
        /// The work-stealing parallel map preserves input order for any input
        /// length and any `with_min_len` chunk hint — including hints of 0,
        /// hints larger than the input (serial fallback), and hints that
        /// leave a short trailing task.
        #[test]
        fn par_map_preserves_order_for_any_chunking(
            values in prop::collection::vec(any::<u32>(), 0..400),
            min_len in 0usize..96,
        ) {
            let out: Vec<u64> =
                values.par_iter().with_min_len(min_len).map(|&v| v as u64 + 1).collect();
            let expected: Vec<u64> = values.iter().map(|&v| v as u64 + 1).collect();
            prop_assert_eq!(out, expected);
        }

        /// Task boundaries honor the `with_min_len` contract for any input
        /// size, worker count and hint: tasks tile the input contiguously and
        /// every task except the trailing remainder spans at least the hint.
        #[test]
        fn task_schedule_respects_min_len(
            n in 0usize..5000,
            workers in 1usize..64,
            min_len in 0usize..256,
        ) {
            let len = rayon::scheduler::task_len(n, workers, min_len);
            prop_assert!(len >= min_len.max(1));
            let starts = rayon::scheduler::task_starts(n, workers, min_len);
            let mut covered = 0usize;
            for &s in &starts {
                prop_assert_eq!(s, covered);
                covered = (s + len).min(n);
            }
            prop_assert_eq!(covered, n);
        }
    }
}
