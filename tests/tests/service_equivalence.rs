//! The match service's warm path must be *byte-identical* to a cold one-shot
//! `ContextualMatcher::run`, and its warm-artifact reuse must be exactly as
//! advertised at **column granularity**: zero q-gram profile rebuilds on a
//! warm second request, exactly one column's profile rebuilt after replacing
//! one column of a multi-column target table (zero for its siblings), and a
//! repeat submission of an unchanged source against an unchanged catalog
//! served from the whole-match result cache with zero classifier work.
//!
//! This file intentionally holds a **single test**: it differences the
//! process-wide `cxm_matching::column::telemetry` counter, so it must not
//! share its test binary with other tests that drive the matchers
//! concurrently (same isolation rule as `profile_once.rs`).

use cxm_core::{ContextMatchConfig, ContextualMatcher, ViewInferenceStrategy};
use cxm_datagen::{generate_retail, RetailConfig};
use cxm_matching::column::telemetry;
use cxm_relational::{tuple, Attribute, Database, Table, TableSchema};
use cxm_service::{MatchService, ServiceConfig};

#[test]
fn service_lifecycle_reuses_and_invalidates_warm_artifacts() {
    retail_byte_identical_equivalence();
    exact_profile_accounting();
}

/// The realistic scenario: candidate views, contextual matches, multiple
/// requests. Pins result equality against the one-shot matcher and the
/// selection-cache warm-up across requests. Whole-match result memoization
/// is disabled here so repeats really exercise the warm *artifact* path —
/// the result-cache path is pinned in [`exact_profile_accounting`].
fn retail_byte_identical_equivalence() {
    let dataset = generate_retail(&RetailConfig {
        source_items: 120,
        target_rows: 40,
        ..RetailConfig::default()
    });
    let config =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4);

    let before = telemetry::qgram_profile_builds();
    let cold = ContextualMatcher::new(config).run(&dataset.source, &dataset.target).unwrap();
    let cold_builds = telemetry::qgram_profile_builds() - before;

    let service = MatchService::with_config(ServiceConfig {
        context: config,
        match_result_entries: 0,
        ..ServiceConfig::default()
    });
    service.register_target(&dataset.target);
    let first = service.submit(&dataset.source).unwrap();
    let second = service.submit(&dataset.source).unwrap();
    let third = service.submit(&dataset.source).unwrap();

    // Byte-identical results on every request, warm or cold.
    for (label, response) in [("first", &first), ("second", &second), ("third", &third)] {
        assert_eq!(response.result.selected, cold.selected, "{label} selected");
        assert_eq!(response.result.standard, cold.standard, "{label} standard");
        assert_eq!(response.result.candidates, cold.candidates, "{label} candidates");
        assert_eq!(
            response.result.candidate_views.len(),
            cold.candidate_views.len(),
            "{label} views"
        );
        for (a, b) in response.result.candidate_views.iter().zip(&cold.candidate_views) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "{label} view def");
        }
        assert!(!response.telemetry.result_cache_hit, "result memoization is off");
    }

    // The scenario must really exercise view-restricted columns, or the
    // zero-build assertion below would be vacuous.
    assert!(!cold.candidate_views.is_empty(), "retail fixture must infer candidate views");

    // A cold submit costs what a cold run costs; a warm repeat builds
    // **zero** q-gram profiles — source and target base columns come from
    // the warm batches, and every view-restricted column is served from the
    // column-fingerprint-keyed cross-request restricted-profile cache.
    assert_eq!(first.telemetry.qgram_profile_builds, cold_builds);
    assert!(first.telemetry.restricted_profile_misses > 0, "cold submit seeds the cache");
    assert_eq!(first.telemetry.restricted_profile_hits, 0);
    assert_eq!(
        second.telemetry.qgram_profile_builds, 0,
        "a warm repeat must build no q-gram profile at all, restricted columns included",
    );
    assert!(second.telemetry.restricted_profile_hits > 0);
    assert_eq!(
        second.telemetry.restricted_profile_misses, 0,
        "every restricted column of a warm repeat is cache-served",
    );
    assert_eq!(second.telemetry, third.telemetry, "warm requests are steady-state");
    assert!(second.telemetry.source_cache_hit);

    // The shared selection cache warms across requests: the first request
    // scans every condition atom, later identical requests scan none.
    assert!(first.telemetry.selection_cache_misses > 0);
    assert_eq!(second.telemetry.selection_cache_misses, 0);
    assert!(second.telemetry.selection_cache_hits > 0);
}

/// A hand-built all-text scenario with no categorical source attributes —
/// so no candidate views, and therefore no per-request view-restricted
/// columns. Every q-gram profile build is a base-column build, which makes
/// the accounting exact:
///
/// * repeat of an unchanged source against an unchanged catalog: a
///   whole-match result-cache hit — zero classifier work units, zero
///   builds, byte-identical outcome;
/// * after replacing **one column** of a 2-column target table: exactly 1
///   build (zero for the sibling column), then a result-cache hit again;
/// * after replacing the whole table: exactly 2 builds.
fn exact_profile_accounting() {
    fn text_table(name: &str, attrs: [&str; 2], rows: Vec<[&str; 2]>) -> Table {
        Table::with_rows(
            TableSchema::new(name, attrs.iter().map(|a| Attribute::text(*a)).collect::<Vec<_>>()),
            rows.into_iter().map(|[a, b]| tuple![a, b]).collect(),
        )
        .unwrap()
    }
    // All values distinct → no categorical attributes → no candidate views.
    let source = Database::new("RS").with_table(text_table(
        "inv",
        ["name", "descr"],
        vec![
            ["leaves of grass", "first edition hardcover"],
            ["kind of blue", "columbia records pressing"],
            ["moby dick", "illustrated paperback"],
            ["abbey road", "apple records lp"],
        ],
    ));
    let target = Database::new("RT")
        .with_table(text_table(
            "book",
            ["title", "binding"],
            vec![["war and peace", "clothbound"], ["middlemarch", "trade paperback"]],
        ))
        .with_table(text_table(
            "music",
            ["title", "press"],
            vec![["blue train", "blue note mono"], ["hotel california", "asylum stereo"]],
        ));
    let source_cols = 2; // 1 table × 2 text columns
    let target_cols = 4; // 2 tables × 2 text columns

    let config = ContextMatchConfig::default();
    let before = telemetry::qgram_profile_builds();
    let cold = ContextualMatcher::new(config).run(&source, &target).unwrap();
    let cold_builds = telemetry::qgram_profile_builds() - before;
    assert!(cold.candidate_views.is_empty(), "scenario must infer no views");
    assert_eq!(cold_builds, source_cols + target_cols, "every build is a base-column build");

    // Result memoization at its default (enabled) setting.
    let service = MatchService::new(config);
    service.register_target(&target);
    let first = service.submit(&source).unwrap();
    assert_eq!(first.result.selected, cold.selected);
    assert!(!first.telemetry.result_cache_hit);
    assert_eq!(first.telemetry.qgram_profile_builds, source_cols + target_cols);

    // Repeat of an unchanged source against an unchanged catalog: served
    // from the whole-match result cache. Zero classifier work, zero builds,
    // byte-identical to both the first response and the cold run.
    let work_before = cxm_classify::telemetry::work_units();
    let second = service.submit(&source).unwrap();
    assert!(second.telemetry.result_cache_hit, "unchanged repeat must be a result-cache hit");
    assert_eq!(
        cxm_classify::telemetry::work_units(),
        work_before,
        "a result-cache hit does zero classifier work units"
    );
    assert_eq!(second.telemetry.qgram_profile_builds, 0);
    assert_eq!(second.telemetry.classifier_work_units, 0);
    assert_eq!(second.result.selected, cold.selected, "hit is byte-identical to the cold run");
    assert_eq!(second.result.standard, cold.standard);
    assert_eq!(second.result.candidates, cold.candidates);

    // Replace ONE COLUMN of the music table (same title values, new press
    // values): the catalog rebuilds exactly that column, and the next
    // submit re-profiles exactly that column — zero builds for its sibling
    // (and zero for every other table).
    let music_one_column = text_table(
        "music",
        ["title", "press"],
        vec![["blue train", "impulse stereo"], ["hotel california", "reprise pressing"]],
    );
    let mut target2 = target.clone();
    target2.replace_table(music_one_column.clone());
    let update = service.replace_table(music_one_column).unwrap();
    assert_eq!((update.reused, update.rebuilt, update.dropped), (1, 1, 0));
    assert_eq!(
        (update.columns_reused, update.columns_rebuilt),
        (3, 1),
        "book's 2 columns + music.title carried forward; only music.press rebuilt"
    );

    let after_column = service.submit(&source).unwrap();
    assert!(!after_column.telemetry.result_cache_hit, "new catalog version re-keys");
    assert_eq!(
        after_column.telemetry.qgram_profile_builds, 1,
        "exactly the replaced column is re-profiled, zero for siblings"
    );
    assert_eq!(after_column.telemetry.catalog_version, 2);
    let cold2 = ContextualMatcher::new(config).run(&source, &target2).unwrap();
    assert_eq!(after_column.result.selected, cold2.selected);
    assert_eq!(after_column.result.standard, cold2.standard);
    assert_eq!(after_column.result.candidates, cold2.candidates);
    // The new (source, v2) result is memoized in turn.
    assert!(service.submit(&source).unwrap().telemetry.result_cache_hit);

    // Replace the whole music table (both columns changed): exactly 2
    // builds, and results match a fresh cold run.
    let music_full = text_table(
        "music",
        ["title", "press"],
        vec![["a love supreme", "impulse mono"], ["harvest", "warner pressing"]],
    );
    let mut target3 = target2.clone();
    target3.replace_table(music_full.clone());
    let update = service.replace_table(music_full).unwrap();
    assert_eq!((update.columns_reused, update.columns_rebuilt), (2, 2));

    let after_table = service.submit(&source).unwrap();
    assert_eq!(
        after_table.telemetry.qgram_profile_builds, 2,
        "only the replaced table's 2 columns may be re-profiled"
    );
    let cold3 = ContextualMatcher::new(config).run(&source, &target3).unwrap();
    assert_eq!(after_table.result.selected, cold3.selected);
    assert_eq!(after_table.result.candidates, cold3.candidates);

    // Dropping the other table invalidates without rebuilding anything.
    let update = service.drop_table("book").unwrap();
    assert_eq!((update.reused, update.rebuilt, update.dropped), (1, 0, 1));
    let shrunk = service.submit(&source).unwrap();
    assert_eq!(shrunk.telemetry.qgram_profile_builds, 0, "surviving table stays warm");
    let mut target4 = target3.clone();
    target4.remove_table("book");
    let cold4 = ContextualMatcher::new(config).run(&source, &target4).unwrap();
    assert_eq!(shrunk.result.selected, cold4.selected);
    assert_eq!(shrunk.result.standard, cold4.standard);
}
