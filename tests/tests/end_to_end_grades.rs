//! End-to-end integration test: the Grades / attribute-normalization scenario.
//!
//! Exercises contextual matching, constraint mining, propagation, the join
//! rules and mapping execution together — the paper's §4.3 + §5.7 pipeline.

use cxm_core::{ContextMatchConfig, ViewInferenceStrategy};
use cxm_datagen::{generate_grades, GradesConfig};
use cxm_mapping::clio_qual_table;
use cxm_relational::Value;

fn config() -> ContextMatchConfig {
    ContextMatchConfig::default()
        .with_inference(ViewInferenceStrategy::SrcClass)
        .with_early_disjuncts(false)
        .with_omega(1.0)
        .with_tau(0.3)
}

#[test]
fn low_sigma_grades_mapping_recovers_most_exam_views() {
    let dataset = generate_grades(&GradesConfig {
        students: 100,
        target_students: 100,
        sigma: 6.0,
        ..GradesConfig::default()
    });
    let mapping = clio_qual_table(&dataset.source, &dataset.target, config()).unwrap();

    // The contextual matcher should find per-exam views on examNum.
    assert!(!mapping.views.is_empty());
    for view in &mapping.views {
        assert_eq!(view.base_table, "grades");
        assert!(view.condition.attributes().contains("examNum"));
    }

    // Accuracy should be substantial at low sigma.
    let acc = dataset.truth.accuracy_pct(&mapping.match_result.selected);
    assert!(acc >= 50.0, "accuracy too low at sigma=6: {acc:.1}%");

    // Keys were propagated onto the views and join-1 edges exist in the query.
    let query = mapping.query_for("projs").expect("mapping query for the wide table");
    assert!(!query.logical_table.edges.is_empty(), "views were not joined");

    // The materialized wide table has one row per source student and carries
    // genuine grade values (not all NULL).
    let wide = mapping.target_instance.table("projs").expect("materialized projs");
    assert!(!wide.is_empty());
    let narrow = dataset.source.table("grades").unwrap();
    let students = narrow.distinct_values("name").unwrap().len();
    assert!(wide.len() <= students);
    let grade1 = wide.column("grade1").unwrap();
    assert!(grade1.iter().any(|v| !v.is_null()));
}

#[test]
fn high_sigma_grades_are_harder() {
    let low = generate_grades(&GradesConfig {
        students: 80,
        target_students: 80,
        sigma: 5.0,
        ..GradesConfig::default()
    });
    let high = generate_grades(&GradesConfig {
        students: 80,
        target_students: 80,
        sigma: 35.0,
        ..GradesConfig::default()
    });
    let acc = |ds: &cxm_datagen::GradesDataset| {
        let mapping = clio_qual_table(&ds.source, &ds.target, config()).unwrap();
        ds.truth.accuracy_pct(&mapping.match_result.selected)
    };
    let low_acc = acc(&low);
    let high_acc = acc(&high);
    assert!(
        low_acc + 1e-9 >= high_acc,
        "accuracy should not improve with more overlap: sigma=5 → {low_acc:.1}, sigma=35 → {high_acc:.1}"
    );
}

#[test]
fn materialized_grades_preserve_source_values() {
    // Every non-null grade value in the wide instance must occur in the narrow
    // source for the same student (information preservation of the mapping).
    let dataset = generate_grades(&GradesConfig {
        students: 60,
        target_students: 60,
        sigma: 5.0,
        ..GradesConfig::default()
    });
    let mapping = clio_qual_table(&dataset.source, &dataset.target, config()).unwrap();
    let Some(wide) = mapping.target_instance.table("projs") else {
        return; // nothing materialized at this configuration — covered elsewhere
    };
    let narrow = dataset.source.table("grades").unwrap();
    let name_idx = narrow.schema().index_of("name").unwrap();
    let grade_idx = narrow.schema().index_of("grade").unwrap();

    for row in wide.rows() {
        let name = row.at(0).clone();
        if name.is_null() {
            continue;
        }
        for value in row.iter().skip(1) {
            if value.is_null() || matches!(value, Value::Str(_)) {
                continue;
            }
            let exists = narrow
                .rows()
                .iter()
                .any(|nr| nr.at(name_idx) == &name && nr.at(grade_idx) == value);
            assert!(exists, "grade {value} for {name} does not exist in the source");
        }
    }
}
