//! Fault-injected recovery: every way a snapshot write or file can die —
//! kill before the atomic rename, torn write truncated at every section
//! boundary, a bit flip inside every section, a stale snapshot behind an
//! edited catalog — must leave a restart that answers **byte-identically**
//! to a cold service. Corruption may cost rebuild time (reported in the
//! restore summary); it may never change an answer. And the clean-restart
//! path must re-profile *zero* unchanged target columns.

use std::path::Path;

use cxm_core::ContextMatchConfig;
use cxm_datagen::{generate_retail, RetailConfig};
use cxm_persist::{encode, encode_with_layout, FaultFs, FaultPlan, SnapshotStore};
use cxm_relational::{Database, Table, Tuple, Value};
use cxm_service::{MatchService, ServiceConfig};

fn fixture() -> (Database, Database) {
    let ds = generate_retail(&RetailConfig {
        source_items: 40,
        target_rows: 16,
        ..RetailConfig::default()
    });
    (ds.source, ds.target)
}

fn second_source() -> Database {
    generate_retail(&RetailConfig {
        seed: 29,
        source_items: 30,
        target_rows: 16,
        ..RetailConfig::default()
    })
    .source
}

fn config() -> ServiceConfig {
    ServiceConfig {
        context: ContextMatchConfig::default().with_tau(0.4),
        ..ServiceConfig::default()
    }
}

/// The full match answer as one comparable string (`Debug` round-trips
/// `f64` bits, so equality here is bit-identity of every score).
fn answer(service: &MatchService, source: &Database) -> String {
    let outcome = service.submit(source).expect("submit");
    format!(
        "{:?}|{:?}|{:?}",
        outcome.result.selected, outcome.result.standard, outcome.result.candidates
    )
}

/// A warmed service whose snapshot the fault sweeps corrupt.
fn warmed(target: &Database, source: &Database) -> MatchService {
    let service = MatchService::with_config(config());
    service.register_target(target);
    let _ = service.submit(source).expect("warm-up submit");
    service
}

#[test]
fn kill_before_rename_at_any_progress_is_a_correct_cold_start() {
    let (source, target) = fixture();
    let cold = answer(&warmed(&target, &source), &source);
    let service = warmed(&target, &source);
    let len = encode(&service.export_snapshot()).len();
    let path = Path::new("warm.snap");

    for after_bytes in [0, 1, len / 3, len / 2, len - 1, len] {
        let store = FaultFs::new();
        store.set_plan(FaultPlan::KillBeforeRename { after_bytes });
        service.save_warm_state_to(&store, path).expect_err("the injected kill must surface");
        assert!(
            store.read(path).expect("read").is_none(),
            "kill after {after_bytes} bytes must never publish the destination"
        );

        let restored = MatchService::with_warm_state_from(config(), &store, path).expect("cold");
        assert_eq!(restored.restore_summary().restored_columns, 0);
        restored.register_target(&target);
        assert_eq!(answer(&restored, &source), cold, "kill after {after_bytes} bytes");
    }
}

#[test]
fn torn_write_truncated_at_every_section_boundary_degrades_never_lies() {
    let (source, target) = fixture();
    let cold = answer(&warmed(&target, &source), &source);
    let service = warmed(&target, &source);
    let (bytes, layout) = encode_with_layout(&service.export_snapshot());
    let path = Path::new("warm.snap");

    // Cut exactly at each section's start and mid-payload, plus the first
    // and last byte of the file.
    let mut cuts = vec![1, bytes.len() - 1];
    for entry in &layout {
        cuts.push(entry.offset as usize);
        cuts.push((entry.offset + entry.len / 2) as usize);
    }

    for keep_bytes in cuts {
        let store = FaultFs::new();
        store.set_plan(FaultPlan::TornWrite { keep_bytes });
        service.save_warm_state_to(&store, path).expect_err("the torn write must surface");
        let published = store.read(path).expect("read").expect("torn write published a prefix");
        assert_eq!(published.len(), keep_bytes.min(bytes.len()));

        let restored =
            MatchService::with_warm_state_from(config(), &store, path).expect("degraded load");
        let summary = restored.restore_summary();
        assert!(summary.degraded_sections >= 1, "cut at {keep_bytes}: {summary}");
        restored.register_target(&target);
        assert_eq!(answer(&restored, &source), cold, "cut at {keep_bytes}");
    }
}

#[test]
fn a_bit_flip_in_every_section_degrades_that_section_and_stays_byte_identical() {
    let (source, target) = fixture();
    let cold = answer(&warmed(&target, &source), &source);
    let service = warmed(&target, &source);
    let (_, layout) = encode_with_layout(&service.export_snapshot());
    let path = Path::new("warm.snap");

    // One flip inside each section's payload (or its tag byte when the
    // payload is empty), plus one in the trailer.
    let mut flip_offsets: Vec<(String, u64)> = layout
        .iter()
        .map(|entry| {
            let header = 1 + 2 + entry.label.len() as u64 + 8;
            let inside =
                if entry.len == 0 { entry.offset } else { entry.offset + header + entry.len / 2 };
            (format!("section {}:{}", entry.tag, entry.label), inside)
        })
        .collect();

    let store = FaultFs::new();
    service.save_warm_state_to(&store, path).expect("clean save");
    let file_len = store.read(path).expect("read").expect("saved").len() as u64;
    flip_offsets.push(("trailer".into(), file_len - 4));

    for (what, offset) in flip_offsets {
        let store = FaultFs::new();
        service.save_warm_state_to(&store, path).expect("clean save");
        assert!(store.mutate(path, |b| b[offset as usize] ^= 0x20), "mutate {what}");

        let restored =
            MatchService::with_warm_state_from(config(), &store, path).expect("degraded load");
        let summary = restored.restore_summary();
        assert!(summary.degraded_sections >= 1, "flip in {what} at {offset}: {summary}");
        restored.register_target(&target);
        assert_eq!(answer(&restored, &source), cold, "flip in {what} at {offset}");
    }
}

#[test]
fn a_stale_snapshot_behind_an_edited_catalog_rebuilds_only_the_edited_column() {
    let (source, target) = fixture();
    let service = warmed(&target, &source);
    let snapshot = encode(&service.export_snapshot());

    // Edit one cell of the first column of the first table: exactly one
    // column fingerprint changes.
    let tables: Vec<&Table> = target.tables().collect();
    let old = *tables.first().expect("a table");
    let rows: Vec<Tuple> = old
        .rows()
        .iter()
        .enumerate()
        .map(|(i, row)| {
            Tuple::new(
                (0..old.column_fingerprints().len())
                    .map(|c| {
                        if i == 0 && c == 0 {
                            Value::str(format!("{}~edited", row.at(c).as_text()))
                        } else {
                            row.at(c).clone()
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    let edited_table = Table::with_rows(old.schema().clone(), rows).expect("same arity");
    let edited = tables
        .iter()
        .skip(1)
        .fold(Database::new(target.name()).with_table(edited_table), |db, t| {
            db.with_table((*t).clone())
        });

    // Reference: cold service over the edited catalog.
    let cold = answer(&warmed(&edited, &source), &source);

    // Clean restart re-registering the *unchanged* catalog: the baseline
    // number of profile builds a fresh submit needs (source side only).
    let clean = MatchService::from_snapshot_bytes(config(), &snapshot);
    clean.register_target(&target);
    let clean_builds = clean.submit(&source).expect("submit").telemetry.qgram_profile_builds;

    // Stale restart: the snapshot predates the edit. Re-registering the
    // edited catalog must keep every unchanged column's warm profile and
    // rebuild exactly the edited one.
    let stale = MatchService::from_snapshot_bytes(config(), &snapshot);
    assert_eq!(stale.restore_summary().degraded_sections, 0, "the file itself is clean");
    stale.register_target(&edited);
    let outcome = stale.submit(&source).expect("submit");
    assert_eq!(
        outcome.telemetry.qgram_profile_builds,
        clean_builds + 1,
        "exactly the edited column re-profiles"
    );
    let stale_answer = format!(
        "{:?}|{:?}|{:?}",
        outcome.result.selected, outcome.result.standard, outcome.result.candidates
    );
    assert_eq!(stale_answer, cold, "stale warm state must never leak into answers");
}

#[test]
fn clean_restart_re_profiles_zero_unchanged_columns() {
    let (source_a, target) = fixture();
    let source_b = second_source();

    // Reference: one service, warmed on A, then submits B against the warm
    // catalog — the builds B pays are source-side only.
    let reference = warmed(&target, &source_a);
    let snapshot = encode(&reference.export_snapshot());
    let ref_outcome = reference.submit(&source_b).expect("submit");
    let ref_answer = format!(
        "{:?}|{:?}|{:?}",
        ref_outcome.result.selected, ref_outcome.result.standard, ref_outcome.result.candidates
    );

    // Restored process: same warm state, never saw B. Its first submit of B
    // must pay exactly the same builds — i.e. zero for the target side.
    let restored = MatchService::from_snapshot_bytes(config(), &snapshot);
    let summary = restored.restore_summary();
    assert_eq!(summary.degraded_sections, 0, "{summary}");
    assert_eq!(summary.rebuilt_columns, 0, "{summary}");
    assert!(summary.restored_columns > 0, "{summary}");

    let outcome = restored.submit(&source_b).expect("submit");
    assert_eq!(
        outcome.telemetry.qgram_profile_builds, ref_outcome.telemetry.qgram_profile_builds,
        "a clean restart must not re-profile any unchanged target column"
    );
    assert_eq!(
        outcome.telemetry.restricted_profile_misses,
        ref_outcome.telemetry.restricted_profile_misses,
        "the restored restricted cache serves the same hits"
    );
    let got = format!(
        "{:?}|{:?}|{:?}",
        outcome.result.selected, outcome.result.standard, outcome.result.candidates
    );
    assert_eq!(got, ref_answer);
}

mod server_restart {
    use cxm_core::ContextMatchConfig;
    use cxm_datagen::{generate_retail, RetailConfig};
    use cxm_server::client::is_ok;
    use cxm_server::{serve, Client, Json, ServerConfig, TenantPolicy, TenantQuotas};

    fn server_config(persist: &std::path::Path) -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            context: ContextMatchConfig::default().with_tau(0.4),
            persist_path: Some(persist.to_path_buf()),
            ..ServerConfig::default()
        }
    }

    /// Full server lifecycle: warm two tenants, snapshot via the `persist`
    /// op *and* the drain path, restart from the file, and require
    /// byte-identical responses with restored (not rebuilt) warm state.
    #[test]
    fn a_restarted_server_answers_byte_identically_from_its_snapshot() {
        let dir = std::env::temp_dir().join(format!("cxm-persist-test-{}", std::process::id()));
        let snap = dir.join("server.snap");
        let _ = std::fs::remove_file(&snap);

        let retail_a = generate_retail(&RetailConfig {
            source_items: 40,
            target_rows: 16,
            ..RetailConfig::default()
        });
        let retail_b = generate_retail(&RetailConfig {
            seed: 29,
            source_items: 30,
            target_rows: 14,
            ..RetailConfig::default()
        });
        let tenants = [("alpha", &retail_a), ("beta", &retail_b)];

        // First life: register, warm, persist on demand, then drain (which
        // snapshots again — the on-demand frame proves the op works, the
        // drain write is what the restart actually reads).
        let first = serve(server_config(&snap)).expect("bind first life");
        let mut expected = Vec::new();
        {
            let mut client = Client::connect(first.local_addr()).expect("connect");
            for (name, retail) in &tenants {
                let ack = client
                    .register(
                        name,
                        &retail.target,
                        &TenantPolicy::default(),
                        &TenantQuotas::default(),
                    )
                    .expect("register");
                assert!(is_ok(&ack), "{ack:?}");
            }
            for (name, retail) in &tenants {
                let reply = client.submit(name, &retail.source, None).expect("submit");
                assert!(is_ok(&reply), "{reply:?}");
                expected.push(reply.get("result").expect("result member").to_text());
            }
            let persisted = client.persist().expect("persist op");
            assert!(is_ok(&persisted), "{persisted:?}");
            assert_eq!(persisted.get("tenants").and_then(Json::as_u64), Some(2));
            let _ = client.shutdown();
        }
        first.join();
        assert!(snap.is_file(), "drain must leave a snapshot behind");

        // Second life: no registration at all — tenants, catalogs and warm
        // profiles all come from the snapshot.
        let second = serve(server_config(&snap)).expect("bind second life");
        {
            let mut client = Client::connect(second.local_addr()).expect("reconnect");
            for ((name, retail), expected) in tenants.iter().zip(&expected) {
                let reply = client.submit(name, &retail.source, None).expect("submit");
                assert!(is_ok(&reply), "{reply:?}");
                let got = reply.get("result").expect("result member").to_text();
                assert_eq!(&got, expected, "tenant {name} must answer byte-identically");
            }
            let stats = client.stats(None).expect("stats");
            let tenant_stats = stats.get("tenants").and_then(Json::as_array).expect("tenants");
            assert_eq!(tenant_stats.len(), 2);
            for t in tenant_stats {
                let restored = t.get("restored_columns").and_then(Json::as_u64).expect("member");
                let rebuilt = t.get("rebuilt_columns").and_then(Json::as_u64).expect("member");
                let degraded = t.get("degraded_sections").and_then(Json::as_u64).expect("member");
                assert!(restored > 0, "restored warm state: {t:?}");
                assert_eq!(rebuilt, 0, "{t:?}");
                assert_eq!(degraded, 0, "{t:?}");
            }
            let _ = client.shutdown();
        }
        second.join();
        let _ = std::fs::remove_file(&snap);
        let _ = std::fs::remove_dir(&dir);
    }
}
