//! The concurrent server must be **byte-identical** to a serial in-process
//! `MatchService`: N client threads × M tenants hammering the wire protocol
//! get exactly the bytes a single-threaded reference produces through the
//! same canonical encoder. This is the serving layer's determinism
//! contract — admission order, worker interleaving, and the shared gram
//! interner must all be invisible in the results.

use std::collections::BTreeMap;
use std::thread;

use cxm_core::{ContextMatchConfig, ViewInferenceStrategy};
use cxm_datagen::{generate_retail, RetailConfig};
use cxm_server::client::is_ok;
use cxm_server::{serve, Client, Json, ServerConfig, TenantPolicy, TenantQuotas};
use cxm_service::{MatchService, ServiceConfig};

const CLIENT_THREADS: usize = 6;

#[test]
fn concurrent_submissions_are_byte_identical_to_a_serial_service() {
    let context =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4);
    let retail_a = generate_retail(&RetailConfig {
        source_items: 60,
        target_rows: 25,
        ..RetailConfig::default()
    });
    let retail_b = generate_retail(&RetailConfig {
        seed: 29,
        source_items: 45,
        target_rows: 25,
        ..RetailConfig::default()
    });
    let sources = [&retail_a.source, &retail_b.source];
    // Two tenants over different catalogs; beta additionally projects its
    // responses through a post-match policy, which must not perturb bytes
    // anywhere else.
    let tenants = [
        ("alpha", &retail_a.target, TenantPolicy::default()),
        ("beta", &retail_b.target, TenantPolicy { score_threshold: Some(0.05), top_k: Some(3) }),
    ];

    // Serial in-process references, rendered through the same canonical
    // encoder the server uses.
    let mut expected: BTreeMap<(&str, usize), String> = BTreeMap::new();
    for (tenant, target, policy) in &tenants {
        let service =
            MatchService::with_config(ServiceConfig { context, ..ServiceConfig::default() });
        service.register_target(target);
        for (s, source) in sources.iter().enumerate() {
            let response = service.submit(source).expect("reference submit");
            expected.insert(
                (*tenant, s),
                cxm_server::encode_result(&response.result, policy).to_text(),
            );
        }
    }

    let handle =
        serve(ServerConfig { workers: 4, queue_capacity: 64, context, ..ServerConfig::default() })
            .expect("bind");
    let addr = handle.local_addr();

    // Register both tenants and warm each (tenant, source) pair once, so the
    // concurrent phase below exercises the warm result-cache path under
    // contention — where nondeterminism would hide if there were any.
    let mut setup = Client::connect(addr).expect("connect");
    for (tenant, target, policy) in &tenants {
        let ack =
            setup.register(tenant, target, policy, &TenantQuotas::default()).expect("register");
        assert!(is_ok(&ack), "{ack:?}");
    }
    for (tenant, _, _) in &tenants {
        for (s, source) in sources.iter().enumerate() {
            let reply = setup.submit(tenant, source, None).expect("warm-up submit");
            assert!(is_ok(&reply), "{reply:?}");
            let bytes = reply.get("result").expect("result member").to_text();
            assert_eq!(&bytes, &expected[&(*tenant, s)], "warm-up {tenant}/{s}");
        }
    }

    let workers: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let expected = expected.clone();
            let sources: Vec<_> = sources.iter().map(|s| (*s).clone()).collect();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Every thread hits every (tenant, source) pair, rotated so
                // threads collide on different pairs at different times.
                for round in 0..4 {
                    let s = (t + round) % sources.len();
                    for tenant in ["alpha", "beta"] {
                        let reply = client.submit(tenant, &sources[s], None).expect("submit");
                        assert!(is_ok(&reply), "{reply:?}");
                        assert_eq!(
                            reply.get("result_cache_hit"),
                            Some(&Json::Bool(true)),
                            "post-warm-up submissions are result-cache hits"
                        );
                        let bytes = reply.get("result").expect("result member").to_text();
                        assert_eq!(&bytes, &expected[&(tenant, s)], "thread {t} {tenant}/{s}");
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    // Every submission was admitted and completed; the warm phase was
    // entirely result-cache hits.
    let total = 2 * sources.len() + CLIENT_THREADS * 4 * 2;
    let stats = handle.stats();
    assert_eq!(stats.submits, total, "{stats}");
    assert_eq!(stats.completed, total, "{stats}");
    assert_eq!(stats.admission_rejects, 0, "{stats}");
    assert_eq!(stats.deadline_expiries, 0, "{stats}");
    assert_eq!(stats.tenants, 2, "{stats}");
    for tenant in handle.tenant_stats() {
        assert_eq!(tenant.submits, total / 2, "{tenant}");
        assert_eq!(tenant.result_cache_hits, CLIENT_THREADS * 4, "{tenant}");
        assert_eq!(tenant.warm.result_len, sources.len(), "{tenant}");
    }

    // The stats op reports the same numbers over the wire.
    let stats_frame = setup.stats(Some("alpha")).expect("stats");
    assert!(is_ok(&stats_frame), "{stats_frame:?}");
    let tenants_member = stats_frame.get("tenants").and_then(Json::as_array).expect("tenants");
    assert_eq!(tenants_member.len(), 1);
    assert_eq!(tenants_member[0].get("submits").and_then(Json::as_i64), Some((total / 2) as i64));

    let ack = setup.shutdown().expect("shutdown");
    assert!(is_ok(&ack), "{ack:?}");
    handle.join();
}
