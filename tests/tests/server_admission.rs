//! Serving-discipline contracts: a full 1-slot admission queue rejects with
//! an explicit `overloaded` frame (every client always gets exactly one
//! reply — never a hang, never a dropped connection), an expired deadline is
//! answered `deadline_exceeded` after **zero** classifier work, and a
//! graceful drain acknowledges, refuses new work, and lets `join()` return.
//!
//! This file intentionally holds a **single test**: the deadline section
//! differences the process-wide `cxm_classify::telemetry` work-unit counter,
//! so nothing else in this binary may drive the matchers concurrently.

use std::sync::{Arc, Barrier};
use std::thread;

use cxm_datagen::{generate_retail, RetailConfig};
use cxm_relational::{tuple, Attribute, Database, Table, TableSchema};
use cxm_server::client::{error_code, is_ok};
use cxm_server::{serve, Client, Json, QuotaCeilings, ServerConfig, TenantPolicy, TenantQuotas};

#[test]
fn admission_deadline_and_drain_contracts() {
    overload_rejects_explicitly();
    deadline_expiry_does_zero_classifier_work();
    graceful_drain_refuses_new_work();
}

fn small_target() -> Database {
    Database::new("RT").with_table(
        Table::with_rows(
            TableSchema::new("book", vec![Attribute::text("title"), Attribute::text("binding")]),
            vec![tuple!["war and peace", "clothbound"], tuple!["middlemarch", "paperback"]],
        )
        .unwrap(),
    )
}

fn small_source(tag: usize) -> Database {
    Database::new("RS").with_table(
        Table::with_rows(
            TableSchema::new("inv", vec![Attribute::text("name"), Attribute::text("descr")]),
            vec![
                tuple![format!("leaves of grass {tag}"), format!("first edition {tag}")],
                tuple![format!("moby dick {tag}"), format!("paperback {tag}")],
            ],
        )
        .unwrap(),
    )
}

/// Overload a `workers = 1, queue_capacity = 1` server with barrier-released
/// concurrent cold submissions. At most two requests can be in the system
/// (one running, one queued); the rest must be rejected *explicitly* — an
/// `overloaded` error frame with a `retry_after_ms` hint — and every client
/// must receive exactly one reply per request.
fn overload_rejects_explicitly() {
    const CLIENTS: usize = 8;
    let retail = generate_retail(&RetailConfig {
        source_items: 120,
        target_rows: 40,
        ..RetailConfig::default()
    });
    let handle = serve(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 7,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();
    let mut setup = Client::connect(addr).expect("connect");
    let ack = setup
        .register("t", &retail.target, &TenantPolicy::default(), &TenantQuotas::default())
        .expect("register");
    assert!(is_ok(&ack), "{ack:?}");

    // Overload is probabilistic per round (threads may serialize), so retry
    // with fresh cold sources until a reject is observed; the *contract*
    // assertions — one reply per request, only ok/overloaded outcomes, a
    // retry hint on every reject — hold in every round.
    let mut total_rejects = 0;
    for round in 0..5 {
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let replies: Vec<Json> = (0..CLIENTS)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let source = generate_retail(&RetailConfig {
                    seed: 1000 + (round * CLIENTS + c) as u64,
                    source_items: 90,
                    target_rows: 40,
                    ..RetailConfig::default()
                })
                .source;
                thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    client.submit("t", &source, None).expect("every request gets a reply")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect();
        assert_eq!(replies.len(), CLIENTS, "exactly one reply per request");
        for reply in &replies {
            if is_ok(reply) {
                continue;
            }
            assert_eq!(error_code(reply), Some("overloaded"), "{reply:?}");
            // The hint scales with observed queue depth × service time but
            // is floored at the configured value — so it is present on
            // every reject and never below the floor.
            match reply.get("error").and_then(|e| e.get("retry_after_ms")) {
                Some(&Json::Int(hint)) => {
                    assert!(hint >= 7, "hint {hint} below the configured floor: {reply:?}")
                }
                other => panic!("rejects carry the retry hint, got {other:?}: {reply:?}"),
            }
            total_rejects += 1;
        }
        if total_rejects > 0 {
            break;
        }
    }
    assert!(total_rejects > 0, "a 1-slot queue under 8 simultaneous cold submits must shed load");
    let stats = handle.stats();
    assert_eq!(stats.admission_rejects, total_rejects, "{stats}");
    assert_eq!(stats.queue_depth, 0, "all replies received means the queue drained: {stats}");
    handle.shutdown();
    handle.join();
}

/// A zero-millisecond deadline budget is expired at dequeue: the reply is
/// `deadline_exceeded` and the classifier runs **zero** work units — the
/// request never reaches decoding or matching.
fn deadline_expiry_does_zero_classifier_work() {
    let handle = serve(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let ack = client
        .register("t", &small_target(), &TenantPolicy::default(), &TenantQuotas::default())
        .expect("register");
    assert!(is_ok(&ack), "{ack:?}");

    let work_before = cxm_classify::telemetry::work_units();
    let reply = client.submit("t", &small_source(1), Some(0)).expect("reply");
    assert_eq!(error_code(&reply), Some("deadline_exceeded"), "{reply:?}");
    assert_eq!(
        cxm_classify::telemetry::work_units(),
        work_before,
        "an expired deadline does zero classifier work"
    );

    // The same submission without a deadline succeeds — the expiry above was
    // the budget's doing, not a broken request.
    let reply = client.submit("t", &small_source(1), None).expect("reply");
    assert!(is_ok(&reply), "{reply:?}");
    assert!(
        cxm_classify::telemetry::work_units() > work_before,
        "the control submission really does classifier work"
    );

    let stats = handle.stats();
    assert_eq!(stats.deadline_expiries, 1, "{stats}");
    assert_eq!(stats.completed, 1, "{stats}");
    let tenant = &handle.tenant_stats()[0];
    assert_eq!(tenant.deadline_expiries, 1, "{tenant}");
    handle.shutdown();
    handle.join();
}

/// A `shutdown` frame is acknowledged, already-open connections get explicit
/// `shutting_down` refusals for new work, and `join()` returns — the drain
/// neither hangs nor silently drops clients. Also pins the remaining error
/// codes (`unknown_tenant`, `unknown_table`, `bad_request`) and that quota
/// requests above the server ceilings are clamped, not honored.
fn graceful_drain_refuses_new_work() {
    let handle = serve(ServerConfig {
        quota_ceilings: QuotaCeilings { match_result_entries: 2, ..QuotaCeilings::default() },
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();
    let mut alice = Client::connect(addr).expect("connect");
    let mut bob = Client::connect(addr).expect("connect");

    let reply = alice.submit("ghost", &small_source(2), None).expect("reply");
    assert_eq!(error_code(&reply), Some("unknown_tenant"), "{reply:?}");
    let ack = alice
        .register(
            "t",
            &small_target(),
            &TenantPolicy::default(),
            &TenantQuotas { match_result_entries: Some(9999), ..TenantQuotas::default() },
        )
        .expect("register");
    assert!(is_ok(&ack), "{ack:?}");
    let reply = alice.drop_table("t", "no_such_table").expect("reply");
    assert_eq!(error_code(&reply), Some("unknown_table"), "{reply:?}");
    let reply =
        alice.request(&Json::Object(vec![("op".into(), Json::str("warp"))])).expect("reply");
    assert_eq!(error_code(&reply), Some("bad_request"), "{reply:?}");
    let reply = bob.submit("t", &small_source(3), None).expect("reply");
    assert!(is_ok(&reply), "{reply:?}");
    assert_eq!(
        handle.tenant_stats()[0].warm.result_capacity,
        2,
        "quota requests above the ceiling are clamped"
    );

    let ack = alice.shutdown().expect("shutdown is acknowledged");
    assert!(is_ok(&ack), "{ack:?}");
    assert_eq!(ack.get("draining"), Some(&Json::Bool(true)));

    // Bob's connection predates the drain; his new work is refused with an
    // explicit frame, not a hang or a reset.
    let reply = bob.submit("t", &small_source(4), None).expect("reply");
    assert_eq!(error_code(&reply), Some("shutting_down"), "{reply:?}");
    let reply = bob
        .register("u", &small_target(), &TenantPolicy::default(), &TenantQuotas::default())
        .expect("reply");
    assert_eq!(error_code(&reply), Some("shutting_down"), "{reply:?}");

    assert!(handle.stats().draining);
    handle.join();
}
