//! Equivalence and determinism of the zero-copy view execution layer.
//!
//! Two properties guard the refactor of the `ScoreMatch` hot path:
//!
//! 1. **Equivalence** — for every source table of the `datagen` Retail and
//!    Grades scenarios, the selection-vector scoring path
//!    (`score_candidates`) and the legacy materializing path
//!    (`score_candidates_materializing`) produce identical candidate lists:
//!    same (view, match) order, same view names, same conditions, same scores
//!    and confidences — and therefore identical end-to-end
//!    `ContextMatchResult`s.
//! 2. **Determinism** — `ContextualMatcher::run` parallelizes the
//!    view × match re-scoring loop; repeated runs on the same input must
//!    produce byte-identical ordered match lists.

use cxm_core::{
    candidate_views::{flatten_views, infer_candidate_views},
    score_candidates, score_candidates_materializing, ContextMatchConfig, ContextualMatcher,
    ViewInferenceStrategy,
};
use cxm_datagen::{generate_grades, generate_retail, GradesConfig, RetailConfig};
use cxm_matching::{Match, MatchList, StandardMatcher};
use cxm_relational::Database;

/// Render a match list in full so comparisons cover every field (scores and
/// confidences included, via the float Debug representation).
fn render(matches: &MatchList) -> Vec<String> {
    matches.iter().map(|m| format!("{m:?}")).collect()
}

/// Run both scoring paths over every source table of `(source, target)` and
/// assert they agree exactly.
fn assert_scoring_paths_agree(source: &Database, target: &Database, config: ContextMatchConfig) {
    let matcher = StandardMatcher::new(config.matching);
    let mut compared_views = 0usize;
    for table in source.tables() {
        let outcome = matcher.match_table(table, target);
        let prototype: MatchList = outcome.accepted.clone();
        let families = infer_candidate_views(table, &prototype, target, &config);
        let views = flatten_views(&families, &config);
        compared_views += views.len();

        let fast = score_candidates(source, target, &matcher, &outcome, table, &views, &prototype)
            .expect("zero-copy scoring succeeds");
        let reference = score_candidates_materializing(
            source, target, &matcher, &outcome, table, &views, &prototype,
        )
        .expect("materializing scoring succeeds");

        assert_eq!(render(&fast), render(&reference), "paths diverged on table {}", table.name());
    }
    assert!(compared_views > 0, "scenario produced no candidate views to compare");
}

/// Two full `ContextualMatcher::run`s must render byte-identically.
fn assert_run_deterministic(source: &Database, target: &Database, config: ContextMatchConfig) {
    let run = || {
        let result = ContextualMatcher::new(config).run(source, target).expect("run succeeds");
        let selected: Vec<Match> = result.selected.to_vec();
        let candidates: Vec<Match> = result.candidates.to_vec();
        (format!("{selected:?}"), format!("{candidates:?}"))
    };
    let first = run();
    for attempt in 0..2 {
        let again = run();
        assert_eq!(first, again, "run {attempt} diverged");
    }
}

fn retail_config() -> ContextMatchConfig {
    ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4)
}

#[test]
fn retail_scoring_paths_are_equivalent() {
    let dataset = generate_retail(&RetailConfig {
        source_items: 80,
        target_rows: 30,
        ..RetailConfig::default()
    });
    assert_scoring_paths_agree(&dataset.source, &dataset.target, retail_config());
}

#[test]
fn grades_scoring_paths_are_equivalent() {
    let dataset = generate_grades(&GradesConfig { students: 24, ..GradesConfig::default() });
    // Grades contexts partition on the exam number; NaiveInfer proposes them
    // without needing a classifier to pass significance on the small sample.
    let config =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::Naive).with_tau(0.2);
    assert_scoring_paths_agree(&dataset.source, &dataset.target, config);
}

#[test]
fn retail_end_to_end_runs_are_byte_identical() {
    let dataset = generate_retail(&RetailConfig {
        source_items: 80,
        target_rows: 30,
        ..RetailConfig::default()
    });
    assert_run_deterministic(&dataset.source, &dataset.target, retail_config());
}

#[test]
fn grades_end_to_end_runs_are_byte_identical() {
    let dataset = generate_grades(&GradesConfig { students: 24, ..GradesConfig::default() });
    let config =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::Naive).with_tau(0.2);
    assert_run_deterministic(&dataset.source, &dataset.target, config);
}

#[test]
fn full_context_match_results_agree_across_paths_on_retail() {
    // End-to-end: a ContextualMatcher::run (zero-copy inside) must select the
    // same matches a manual materializing re-scoring pipeline would.
    let dataset = generate_retail(&RetailConfig {
        source_items: 80,
        target_rows: 30,
        ..RetailConfig::default()
    });
    let config = retail_config();
    let result =
        ContextualMatcher::new(config).run(&dataset.source, &dataset.target).expect("run succeeds");

    // Rebuild the candidate list through the materializing reference path.
    let matcher = StandardMatcher::new(config.matching);
    let mut reference = MatchList::new();
    for table in dataset.source.tables() {
        let outcome = matcher.match_table(table, &dataset.target);
        let prototype = outcome.accepted.clone();
        let families = infer_candidate_views(table, &prototype, &dataset.target, &config);
        let views = flatten_views(&families, &config);
        reference.extend(
            score_candidates_materializing(
                &dataset.source,
                &dataset.target,
                &matcher,
                &outcome,
                table,
                &views,
                &prototype,
            )
            .expect("materializing scoring succeeds"),
        );
    }
    assert_eq!(render(&result.candidates), render(&reference));
}
