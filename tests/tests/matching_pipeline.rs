//! Cross-crate tests of the matching pipeline below the `ContextMatch` level:
//! standard matching, candidate-view scoring and the classifier substrate
//! working together on generated data.

use cxm_classify::{Classifier, NaiveBayesClassifier};
use cxm_core::candidate_views::infer_candidate_views;
use cxm_core::{ContextMatchConfig, ViewInferenceStrategy};
use cxm_datagen::{generate_retail, RetailConfig};
use cxm_matching::{ColumnData, MatchingConfig, StandardMatcher};
use cxm_relational::{categorical_attributes, CategoricalPolicy};

#[test]
fn standard_matching_prefers_the_semantically_right_pairs() {
    let dataset = generate_retail(&RetailConfig {
        source_items: 300,
        target_rows: 80,
        ..RetailConfig::default()
    });
    let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.0));
    let outcome = matcher.match_databases(&dataset.source, &dataset.target);

    let conf = |src: &str, tgt_table: &str, tgt: &str| {
        outcome
            .confidence_of(
                &cxm_relational::AttrRef::new("items", src),
                &cxm_relational::AttrRef::new(tgt_table, tgt),
            )
            .unwrap_or(0.0)
    };
    // Titles match titles better than they match catalogue codes.
    assert!(conf("ItemName", "book", "title") > conf("ItemName", "book", "isbn"));
    // Codes match codes better than they match formats.
    assert!(conf("Code", "book", "isbn") > conf("Code", "book", "format"));
    // Prices match prices better than they match titles.
    assert!(conf("Price", "music", "price") > conf("Price", "music", "title"));
}

#[test]
fn candidate_views_from_generated_data_partition_on_item_type() {
    let dataset = generate_retail(&RetailConfig {
        source_items: 300,
        target_rows: 80,
        ..RetailConfig::default()
    });
    let items = dataset.source.table("items").unwrap();
    let matcher = StandardMatcher::with_defaults();
    let outcome = matcher.match_table(items, &dataset.target);
    let config = ContextMatchConfig::default()
        .with_inference(ViewInferenceStrategy::SrcClass)
        .with_early_disjuncts(false);
    let families = infer_candidate_views(items, &outcome.accepted, &dataset.target, &config);
    assert!(!families.is_empty());
    assert!(
        families.iter().any(|f| f.attribute == "ItemType"),
        "SrcClassInfer should admit the ItemType partition: {:?}",
        families.iter().map(|f| f.attribute.clone()).collect::<Vec<_>>()
    );
}

#[test]
fn qgram_classifier_separates_generated_descriptions() {
    // The classifier substrate must separate the generated book formats from
    // music labels — the property TgtClassInfer relies on.
    let dataset = generate_retail(&RetailConfig {
        source_items: 400,
        target_rows: 80,
        ..RetailConfig::default()
    });
    let items = dataset.source.table("items").unwrap();
    let descr = items.column("Description").unwrap();
    let types = items.column("ItemType").unwrap();
    let mut nb = NaiveBayesClassifier::with_qgrams(3);
    let n = descr.len();
    for i in 0..n / 2 {
        let label = if types[i].as_text().starts_with("Book") { "book" } else { "cd" };
        nb.teach(&descr[i].as_text(), label);
    }
    let mut correct = 0;
    let mut total = 0;
    for i in n / 2..n {
        let expected = if types[i].as_text().starts_with("Book") { "book" } else { "cd" };
        if nb.classify(&descr[i].as_text()).as_deref() == Some(expected) {
            correct += 1;
        }
        total += 1;
    }
    let accuracy = correct as f64 / total as f64;
    assert!(accuracy > 0.9, "description classifier accuracy only {accuracy:.2}");
}

#[test]
fn generated_columns_have_expected_statistical_character() {
    let dataset = generate_retail(&RetailConfig {
        source_items: 500,
        target_rows: 100,
        ..RetailConfig::default()
    });
    let items = dataset.source.table("items").unwrap();
    let cats = categorical_attributes(items, &CategoricalPolicy::default());
    assert!(cats.contains(&"ItemType".to_string()));
    let price = ColumnData::from_table(items, "Price").unwrap();
    assert!(price.looks_numeric());
    let name = ColumnData::from_table(items, "ItemName").unwrap();
    assert!(!name.looks_numeric());
    assert_eq!(name.len(), 500);
}
