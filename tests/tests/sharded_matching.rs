//! Equivalence and determinism of the sharded `StandardMatch` pipeline: the
//! work-stealing, hoisted-target-batch paths must produce byte-identical
//! output to the serial per-table loops they replaced, on realistic
//! multi-table scenarios.

use cxm_core::{ContextMatchConfig, ContextualMatcher, ViewInferenceStrategy};
use cxm_datagen::{generate_multi_table_retail, generate_retail, RetailConfig};
use cxm_matching::{MatchingConfig, StandardMatcher};
use cxm_relational::Database;

/// The shared multi-table retail scenario at integration-test scale.
fn multi_table_retail(tables: usize, items_per_table: usize) -> (Database, Database) {
    let base =
        RetailConfig { source_items: items_per_table, target_rows: 40, ..RetailConfig::default() };
    generate_multi_table_retail(&base, tables)
}

#[test]
fn sharded_standard_match_equals_serial_on_multitable_retail() {
    let (source, target) = multi_table_retail(4, 120);
    let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.4));
    let sharded = matcher.match_databases(&source, &target);
    let serial = matcher.match_databases_serial(&source, &target);
    assert_eq!(sharded.accepted, serial.accepted);
    assert_eq!(sharded.all_pairs, serial.all_pairs);
    // Every shard contributed, in source-table order.
    for i in 0..4 {
        assert!(
            sharded.all_pairs.iter().any(|m| m.base_table == format!("items_{i}")),
            "no pairs from shard {i}"
        );
    }
    let order: Vec<&str> = sharded.all_pairs.iter().map(|m| m.base_table.as_str()).collect();
    let mut sorted = order.clone();
    sorted.sort();
    assert_eq!(order, sorted, "merge must preserve source-table order");
}

#[test]
fn sharded_context_match_equals_serial_on_multitable_retail() {
    let (source, target) = multi_table_retail(3, 100);
    let config =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4);
    let matcher = ContextualMatcher::new(config);
    let sharded = matcher.run(&source, &target).unwrap();
    let serial = matcher.run_serial(&source, &target).unwrap();
    assert_eq!(sharded.standard, serial.standard);
    assert_eq!(sharded.candidates, serial.candidates);
    assert_eq!(sharded.selected, serial.selected);
    assert_eq!(sharded.candidate_views.len(), serial.candidate_views.len());
    for (a, b) in sharded.candidate_views.iter().zip(&serial.candidate_views) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
    assert_eq!(sharded.families.len(), serial.families.len());
}

#[test]
fn sharded_context_match_is_deterministic_across_runs() {
    let (source, target) = multi_table_retail(3, 80);
    let config =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4);
    let matcher = ContextualMatcher::new(config);
    let first = matcher.run(&source, &target).unwrap();
    for _ in 0..3 {
        let again = matcher.run(&source, &target).unwrap();
        assert_eq!(first.standard, again.standard);
        assert_eq!(first.candidates, again.candidates);
        assert_eq!(first.selected, again.selected);
    }
}

#[test]
fn single_table_source_still_works_through_the_sharded_path() {
    let dataset = generate_retail(&RetailConfig {
        source_items: 120,
        target_rows: 40,
        ..RetailConfig::default()
    });
    let matcher = ContextualMatcher::new(ContextMatchConfig::default().with_tau(0.4));
    let sharded = matcher.run(&dataset.source, &dataset.target).unwrap();
    let serial = matcher.run_serial(&dataset.source, &dataset.target).unwrap();
    assert_eq!(sharded.selected, serial.selected);
    assert!(!sharded.standard.is_empty());
}
