//! Property-based tests for the snapshot codec: `decode ∘ encode` is the
//! identity on arbitrary well-formed snapshots, and `decode` never panics —
//! and never *silently* returns wrong data — on arbitrarily truncated or
//! bit-flipped inputs.
//!
//! Snapshots are generated from a seeded LCG rather than per-field
//! strategies: one `u64` seed fans out into interner dumps, catalogs,
//! profile records and restricted entries of varying shapes, which keeps the
//! generator within the vendored shim's strategy vocabulary while still
//! covering every section kind and every optional field.

use proptest::prelude::*;

use cxm_persist::{
    decode, encode, ArtifactsRecord, ColumnProfileRecord, RestrictedRecord, Snapshot,
    TableFingerprints, TenantEntry, TenantMeta, WarmState,
};
use cxm_relational::{Attribute, Condition, Database, Table, TableSchema, Tuple, Value};

/// Deterministic generator for snapshot structure.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn word(&mut self) -> String {
        const ALPHABET: &[char] = &['a', 'b', 'c', ' ', 'x', '7', 'é'];
        let len = self.below(7) as usize;
        (0..len).map(|_| ALPHABET[self.below(ALPHABET.len() as u64) as usize]).collect()
    }

    fn finite_f64(&mut self) -> f64 {
        (self.below(2_000_001) as f64 - 1_000_000.0) / 97.0
    }

    fn value(&mut self) -> Value {
        match self.below(5) {
            0 => Value::Null,
            1 => Value::Int(self.next() as i64),
            2 => Value::Float(self.finite_f64()),
            3 => Value::Bool(self.below(2) == 0),
            _ => Value::str(self.word()),
        }
    }

    /// Sorted, strictly increasing ids.
    fn sorted_ids(&mut self, max_len: u64) -> Vec<u32> {
        let len = self.below(max_len) as usize;
        let mut id = 0u32;
        (0..len)
            .map(|_| {
                id = id.saturating_add(self.below(9) as u32 + 1);
                id
            })
            .collect()
    }

    fn artifacts(&mut self) -> ArtifactsRecord {
        ArtifactsRecord {
            qgram3_ids: (self.below(2) == 0).then(|| {
                self.sorted_ids(12)
                    .into_iter()
                    .map(|id| (id, self.below(99) as f64 + 1.0))
                    .collect()
            }),
            value_ids: (self.below(2) == 0).then(|| self.sorted_ids(12)),
            numeric_summary: match self.below(3) {
                0 => None,
                1 => Some(None),
                _ => Some(Some((
                    self.finite_f64(),
                    self.finite_f64(),
                    self.finite_f64(),
                    self.finite_f64(),
                ))),
            },
            numeric_count: (self.below(2) == 0).then(|| self.below(1000)),
        }
    }

    fn condition(&mut self, depth: u64) -> Condition {
        match if depth == 0 { self.below(2) } else { self.below(4) } {
            0 => Condition::eq(self.word(), self.value()),
            1 => {
                let values: Vec<Value> = (0..self.below(4)).map(|_| self.value()).collect();
                Condition::is_in(self.word(), values)
            }
            2 => self.condition(depth - 1).and(self.condition(depth - 1)),
            _ => self.condition(depth - 1).or(self.condition(depth - 1)),
        }
    }

    fn table(&mut self, index: usize) -> Table {
        let attrs = 1 + self.below(3) as usize;
        let schema = TableSchema::new(
            format!("t{index}"),
            (0..attrs).map(|a| Attribute::text(format!("c{a}"))).collect::<Vec<_>>(),
        );
        let rows = (0..self.below(6))
            .map(|_| Tuple::new((0..attrs).map(|_| self.value()).collect()))
            .collect();
        Table::with_rows(schema, rows).expect("generated arity always matches")
    }

    fn warm_state(&mut self) -> WarmState {
        let catalog = (self.below(4) != 0).then(|| {
            let tables = self.below(3) as usize;
            (0..tables).fold(Database::new(self.word()), |db, i| db.with_table(self.table(i)))
        });
        WarmState {
            catalog,
            fingerprints: (self.below(4) != 0).then(|| {
                (0..self.below(3))
                    .map(|i| TableFingerprints {
                        table: format!("t{i}"),
                        table_fingerprint: self.next(),
                        columns: (0..self.below(4))
                            .map(|c| (format!("c{c}"), self.next()))
                            .collect(),
                    })
                    .collect()
            }),
            profiles: (self.below(4) != 0).then(|| {
                (0..self.below(4))
                    .map(|i| ColumnProfileRecord {
                        table: format!("t{}", i % 2),
                        attribute: format!("c{i}"),
                        fingerprint: self.next(),
                        artifacts: self.artifacts(),
                    })
                    .collect()
            }),
            restricted: (self.below(4) != 0).then(|| {
                (0..self.below(3))
                    .map(|_| RestrictedRecord {
                        column_fingerprint: self.next(),
                        condition: self.condition(2),
                        condition_fingerprint: self.next(),
                        version: self.below(9),
                        artifacts: self.artifacts(),
                    })
                    .collect()
            }),
        }
    }

    fn snapshot(&mut self) -> Snapshot {
        // Always include the interner dump: without it the decoder
        // (correctly) degrades the interner-dependent sections, which is
        // its own test, not a round-trip.
        let interner = Some((0..self.below(20)).map(|_| self.word()).collect());
        let tenants = (0..self.below(3))
            .map(|i| TenantEntry {
                label: if i == 0 { String::new() } else { format!("tenant-{i}") },
                meta: (self.below(2) == 0).then(|| TenantMeta {
                    score_threshold: (self.below(2) == 0).then(|| self.finite_f64()),
                    top_k: (self.below(2) == 0).then(|| self.below(50) as usize),
                    quotas: [
                        (self.below(2) == 0).then(|| self.below(100) as usize),
                        (self.below(2) == 0).then(|| self.below(100) as usize),
                        (self.below(2) == 0).then(|| self.below(100) as usize),
                        (self.below(2) == 0).then(|| self.below(100) as usize),
                    ],
                }),
                warm: self.warm_state(),
            })
            .collect();
        Snapshot { interner, tenants }
    }
}

proptest! {
    /// `decode ∘ encode` is the identity: the decoded snapshot equals the
    /// input field-for-field, the load report is clean, and re-encoding
    /// reproduces the original bytes bit-exactly.
    #[test]
    fn encode_decode_round_trips_identically(seed in any::<u64>()) {
        let snapshot = Lcg(seed).snapshot();
        let bytes = encode(&snapshot);
        let (decoded, report) = decode(&bytes).expect("well-formed snapshot decodes");
        prop_assert!(report.is_clean(), "clean input, degraded: {:?}", report.degraded);
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(encode(&decoded), bytes, "re-encode must be bit-identical");
    }

    /// Truncating a snapshot at *any* byte never panics the decoder, and a
    /// truncated file is never silently accepted as clean and different.
    #[test]
    fn decode_survives_truncation_at_any_byte(seed in any::<u64>(), cut in any::<u64>()) {
        let snapshot = Lcg(seed).snapshot();
        let bytes = encode(&snapshot);
        let cut = (cut % (bytes.len() as u64 + 1)) as usize;
        match decode(&bytes[..cut]) {
            Err(_) => {}
            Ok((decoded, report)) => {
                prop_assert!(
                    !report.is_clean() || decoded == snapshot,
                    "truncation at {cut} decoded clean but different"
                );
            }
        }
    }

    /// Flipping any single byte never panics the decoder and is never
    /// silently accepted: the result is a whole-file reject, a degraded
    /// section, or (only when the flip is provably immaterial) the original
    /// snapshot back.
    #[test]
    fn decode_survives_any_single_byte_flip(
        seed in any::<u64>(),
        position in any::<u64>(),
        flip in any::<u8>(),
    ) {
        let snapshot = Lcg(seed).snapshot();
        let mut bytes = encode(&snapshot);
        let position = (position % bytes.len() as u64) as usize;
        bytes[position] ^= flip.max(1);
        match decode(&bytes) {
            Err(_) => {}
            Ok((decoded, report)) => {
                prop_assert!(
                    !report.is_clean() || decoded == snapshot,
                    "flip {flip:#04x} at {position} decoded clean but different"
                );
            }
        }
    }

    /// Arbitrary byte soup — with and without a valid-looking magic — never
    /// panics the decoder.
    #[test]
    fn decode_survives_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        with_magic in any::<bool>(),
    ) {
        let mut bytes = bytes;
        if with_magic && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(b"CXMPSNAP");
        }
        let _ = decode(&bytes);
    }
}
