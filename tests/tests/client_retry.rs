//! Pins the client retry/backoff contract against a deliberately flaky
//! scripted server: `overloaded` rejects are retried honoring the server's
//! `retry_after_ms` hint, `shutting_down` rejects are retried a bounded
//! number of times, and a connection dropped mid-exchange triggers a
//! reconnect — all with an injected sleeper, so no test ever sleeps for
//! real and the backoff schedule is asserted exactly.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cxm_server::json::parse;
use cxm_server::{read_frame, write_frame, Json, RetryPolicy, RetryingClient, Sleeper};

/// Records every requested sleep instead of blocking.
#[derive(Clone, Default)]
struct RecordingSleeper {
    slept: Arc<Mutex<Vec<Duration>>>,
}

impl Sleeper for RecordingSleeper {
    fn sleep(&mut self, d: Duration) {
        self.slept.lock().unwrap().push(d);
    }
}

impl RecordingSleeper {
    fn slept(&self) -> Vec<Duration> {
        self.slept.lock().unwrap().clone()
    }
}

/// One scripted action per incoming request frame.
#[derive(Clone, Copy)]
enum Script {
    /// Reply `{ok:false, error:{code:"overloaded", retry_after_ms}}`.
    Overloaded { retry_after_ms: u64 },
    /// Reply `{ok:false, error:{code:"shutting_down"}}`.
    ShuttingDown,
    /// Reply `{ok:true, op:"stats"}`.
    Ok,
    /// Reply `{ok:false, error:{code:"unknown_tenant"}}` — not transient.
    UnknownTenant,
    /// Drop the connection without replying; the next request must arrive
    /// on a fresh connection.
    Hangup,
}

/// A single-threaded server that plays `script` one action per request,
/// accepting a new connection whenever the previous one ends.
fn spawn_scripted(script: Vec<Script>) -> (SocketAddr, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted server");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let mut steps = script.into_iter();
        'accepting: loop {
            let Ok((stream, _)) = listener.accept() else { return };
            stream.set_nodelay(true).expect("nodelay");
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut writer = stream;
            loop {
                let Ok(Some(payload)) = read_frame(&mut reader, 1 << 20) else {
                    // Client gave up or finished; wait for a reconnect if
                    // the script still has steps, else exit.
                    if steps.as_slice().is_empty() {
                        return;
                    }
                    continue 'accepting;
                };
                parse(&payload).expect("scripted server got valid JSON");
                let Some(step) = steps.next() else { return };
                let reply = match step {
                    Script::Overloaded { retry_after_ms } => Json::Object(vec![
                        ("ok".into(), Json::Bool(false)),
                        ("op".into(), Json::str("stats")),
                        (
                            "error".into(),
                            Json::Object(vec![
                                ("code".into(), Json::str("overloaded")),
                                ("retry_after_ms".into(), Json::Int(retry_after_ms as i64)),
                            ]),
                        ),
                    ]),
                    Script::ShuttingDown => Json::Object(vec![
                        ("ok".into(), Json::Bool(false)),
                        ("op".into(), Json::str("stats")),
                        (
                            "error".into(),
                            Json::Object(vec![("code".into(), Json::str("shutting_down"))]),
                        ),
                    ]),
                    Script::Ok => Json::Object(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("op".into(), Json::str("stats")),
                    ]),
                    Script::UnknownTenant => Json::Object(vec![
                        ("ok".into(), Json::Bool(false)),
                        ("op".into(), Json::str("stats")),
                        (
                            "error".into(),
                            Json::Object(vec![("code".into(), Json::str("unknown_tenant"))]),
                        ),
                    ]),
                    Script::Hangup => continue 'accepting,
                };
                write_frame(&mut writer, &reply.to_bytes()).expect("scripted reply");
            }
        }
    });
    (addr, handle)
}

fn policy() -> RetryPolicy {
    RetryPolicy { max_retries: 4, base_backoff_ms: 10, max_backoff_ms: 1_000, jitter_seed: 42 }
}

#[test]
fn overloaded_rejects_are_retried_honoring_the_retry_after_hint() {
    let (addr, server) = spawn_scripted(vec![
        Script::Overloaded { retry_after_ms: 77 },
        Script::Overloaded { retry_after_ms: 123 },
        Script::Ok,
    ]);
    let sleeper = RecordingSleeper::default();
    let mut client = RetryingClient::with_sleeper(addr.to_string(), policy(), sleeper.clone());
    let response = client.stats(None).expect("request succeeds after retries");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(client.retries(), 2, "two overloaded rejects, two retries");
    assert_eq!(client.reconnects(), 0, "the connection never dropped");
    let slept = sleeper.slept();
    assert_eq!(slept.len(), 2);
    assert!(
        slept[0] >= Duration::from_millis(77),
        "first wait {:?} must honor the 77 ms hint",
        slept[0]
    );
    assert!(
        slept[1] >= Duration::from_millis(123),
        "second wait {:?} must honor the 123 ms hint",
        slept[1]
    );
    drop(client);
    server.join().expect("scripted server exits");
}

#[test]
fn shutting_down_rejects_get_bounded_retries_then_the_final_frame() {
    let retries = 3;
    let (addr, server) = spawn_scripted(vec![Script::ShuttingDown; retries as usize + 1]);
    let sleeper = RecordingSleeper::default();
    let p = RetryPolicy { max_retries: retries, ..policy() };
    let mut client = RetryingClient::with_sleeper(addr.to_string(), p, sleeper.clone());
    let response = client.stats(None).expect("final reject frame is returned, not an error");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("shutting_down"),
    );
    assert_eq!(client.retries(), u64::from(retries), "retries stop at the policy bound");
    let slept = sleeper.slept();
    assert_eq!(slept.len(), retries as usize);
    // Exponential shape with ≤50% jitter: attempt n waits in
    // [base·2ⁿ, 1.5·base·2ⁿ].
    for (n, d) in slept.iter().enumerate() {
        let base = Duration::from_millis(10 * (1 << n));
        assert!(*d >= base && *d <= base * 3 / 2, "wait {n} = {d:?} outside [{base:?}, 1.5x]");
    }
    drop(client);
    server.join().expect("scripted server exits");
}

#[test]
fn a_dropped_connection_reconnects_and_replays_the_request() {
    let (addr, server) = spawn_scripted(vec![Script::Hangup, Script::Ok]);
    let sleeper = RecordingSleeper::default();
    let mut client = RetryingClient::with_sleeper(addr.to_string(), policy(), sleeper.clone());
    let response = client.stats(None).expect("request succeeds after reconnect");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(client.retries(), 1, "one transport failure, one retry");
    assert_eq!(client.reconnects(), 1, "the retry went out on a fresh connection");
    assert_eq!(sleeper.slept().len(), 1);
    drop(client);
    server.join().expect("scripted server exits");
}

#[test]
fn non_transient_errors_are_returned_without_any_retry() {
    // An unregistered tenant is a caller bug; retrying cannot fix it.
    let (addr, server) = spawn_scripted(vec![Script::UnknownTenant]);
    let sleeper = RecordingSleeper::default();
    let mut client = RetryingClient::with_sleeper(addr.to_string(), policy(), sleeper.clone());
    let response = client.stats(None).expect("error frame is a response, not an io error");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("unknown_tenant"),
    );
    assert_eq!(client.retries(), 0, "non-transient errors must not be retried");
    assert!(sleeper.slept().is_empty(), "no sleeps for a pass-through error");
    drop(client);
    server.join().expect("scripted server exits");
}

#[test]
fn deterministic_jitter_reproduces_the_same_schedule_for_the_same_seed() {
    let schedule = |seed: u64| {
        let (addr, server) = spawn_scripted(vec![Script::ShuttingDown; 4]);
        let sleeper = RecordingSleeper::default();
        let p = RetryPolicy { max_retries: 3, jitter_seed: seed, ..policy() };
        let mut client = RetryingClient::with_sleeper(addr.to_string(), p, sleeper.clone());
        client.stats(None).expect("final frame");
        drop(client);
        server.join().expect("server exits");
        sleeper.slept()
    };
    let a = schedule(7);
    let b = schedule(7);
    let c = schedule(8);
    assert_eq!(a, b, "same seed, same backoff schedule");
    assert_ne!(a, c, "different seed perturbs the jitter");
}
