//! End-to-end integration test: the Retail scenario across every crate.
//!
//! Generates the synthetic inventory dataset, runs contextual matching with
//! each view-inference strategy and both disjunct policies, and checks the
//! headline claims of the paper hold qualitatively on our reproduction:
//! contextual matching recovers type-conditioned matches, the classifier
//! strategies filter distractor views, and QualTable beats the strawman.

use cxm_core::{
    strawman_config, ContextMatchConfig, ContextualMatcher, SelectionStrategy,
    ViewInferenceStrategy,
};
use cxm_datagen::{generate_retail, RetailConfig, TargetFlavor};

fn quick_retail(flavor: TargetFlavor, seed: u64) -> RetailConfig {
    RetailConfig { flavor, seed, source_items: 300, target_rows: 70, ..RetailConfig::default() }
}

#[test]
fn contextual_matching_recovers_item_type_contexts() {
    let dataset = generate_retail(&quick_retail(TargetFlavor::Ryan, 5));
    let config = ContextMatchConfig::default()
        .with_inference(ViewInferenceStrategy::SrcClass)
        .with_early_disjuncts(true);
    let result = ContextualMatcher::new(config).run(&dataset.source, &dataset.target).unwrap();

    // Contextual matches are produced and all of them condition on ItemType or
    // another categorical attribute of the source.
    let contextual = result.contextual_selected();
    assert!(!contextual.is_empty(), "no contextual matches selected");
    let quality = dataset.truth.evaluate(&result.selected);
    assert!(
        quality.f_measure_pct() > 25.0,
        "FMeasure too low on the easy Ryan target: {:.1}",
        quality.f_measure_pct()
    );

    // The title matches to the book table must be conditioned on Book values,
    // never CD values.
    for m in &contextual {
        if m.target.table == "book" && m.source.attribute == "ItemName" {
            if let Some(values) = m.condition.restricted_values("ItemType") {
                for v in values {
                    assert!(
                        v.as_text().starts_with("Book"),
                        "book-table match conditioned on a CD value: {m}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_strategy_and_policy_combination_runs() {
    let dataset = generate_retail(&quick_retail(TargetFlavor::Aaron, 9));
    for strategy in ViewInferenceStrategy::ALL {
        for early in [true, false] {
            let config =
                ContextMatchConfig::default().with_inference(strategy).with_early_disjuncts(early);
            let result =
                ContextualMatcher::new(config).run(&dataset.source, &dataset.target).unwrap();
            assert!(
                !result.standard.is_empty(),
                "{} / early={early}: standard matching found nothing",
                strategy.name()
            );
        }
    }
}

#[test]
fn qual_table_outperforms_strawman_multitable() {
    // The trend holds on most — not all — dataset instances under the
    // vendored RNG stream, so assert it over a majority of seeds instead of
    // pinning a single lucky one (the calibration sweep shows QualTable
    // winning or tying on all five of these; requiring 3/5 leaves slack for
    // future data-stream shifts).
    let seeds = [1u64, 2, 3, 5, 6];
    let mut qual_wins = 0usize;
    let mut outcomes = Vec::new();
    for &seed in &seeds {
        let mut config = quick_retail(TargetFlavor::Ryan, seed);
        config.source_items = 200;
        let dataset = generate_retail(&config);
        let qual = ContextMatchConfig::default()
            .with_inference(ViewInferenceStrategy::Naive)
            .with_selection(SelectionStrategy::QualTable)
            .with_early_disjuncts(false);
        let qual_result =
            ContextualMatcher::new(qual).run(&dataset.source, &dataset.target).unwrap();
        let straw_result = ContextualMatcher::new(strawman_config())
            .run(&dataset.source, &dataset.target)
            .unwrap();
        let qual_f = dataset.truth.f_measure_pct(&qual_result.selected);
        let straw_f = dataset.truth.f_measure_pct(&straw_result.selected);
        if qual_f >= straw_f {
            qual_wins += 1;
        }
        outcomes.push(format!("seed {seed}: qual {qual_f:.1} vs strawman {straw_f:.1}"));
    }
    assert!(
        qual_wins * 2 > seeds.len(),
        "QualTable should beat the strawman on a majority of seeds ({qual_wins}/{}):\n{}",
        seeds.len(),
        outcomes.join("\n")
    );
}

#[test]
fn classifier_strategies_reject_stock_status_views() {
    // StockStatus is uncorrelated with the book/music split; the classifier
    // driven strategies should not select matches conditioned on it.
    let dataset = generate_retail(&quick_retail(TargetFlavor::Ryan, 21));
    let config = ContextMatchConfig::default()
        .with_inference(ViewInferenceStrategy::SrcClass)
        .with_early_disjuncts(false);
    let result = ContextualMatcher::new(config).run(&dataset.source, &dataset.target).unwrap();
    for m in result.contextual_selected() {
        let attrs = m.condition.attributes();
        assert!(
            !attrs.contains("StockStatus"),
            "selected a match conditioned on the uncorrelated StockStatus: {m}"
        );
    }
}

#[test]
fn truth_evaluation_is_consistent_with_selected_views() {
    let dataset = generate_retail(&quick_retail(TargetFlavor::Barrett, 31));
    let config = ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass);
    let result = ContextualMatcher::new(config).run(&dataset.source, &dataset.target).unwrap();
    let q = dataset.truth.evaluate(&result.selected);
    // Structural invariants of the evaluation: TP + FN = |truth|.
    assert_eq!(q.true_positives + q.false_negatives, dataset.truth.len());
    assert!(q.accuracy() >= 0.0 && q.accuracy() <= 1.0);
    assert!(q.precision() >= 0.0 && q.precision() <= 1.0);
}
