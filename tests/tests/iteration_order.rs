//! Iteration-order independence of `ContextMatchResult`.
//!
//! Rust's `HashMap`/`HashSet` use a per-instance random hasher seed, so any
//! hash-order iteration that reaches an output produces a *differently
//! ordered* result on every construction — within one process, across two
//! back-to-back runs. These tests pin the property the `cxm-lint` D001 rule
//! enforces statically: every collection whose visit order can reach a
//! score, a match list, or a view definition is ordered (`BTreeMap`) or
//! explicitly sorted, so repeated runs are **byte-identical**, not merely
//! set-equal.

use cxm_core::{ContextMatchConfig, ContextualMatcher, ViewInferenceStrategy};
use cxm_datagen::{generate_multi_table_retail, RetailConfig};
use cxm_matching::{MatchingConfig, StandardMatcher};

fn scenario() -> (cxm_relational::Database, cxm_relational::Database) {
    let base = RetailConfig { source_items: 100, target_rows: 40, ..RetailConfig::default() };
    generate_multi_table_retail(&base, 3)
}

/// Render every ordered surface of a result, in order. Two runs must agree
/// on this string byte for byte — `Debug` includes the f64 confidences with
/// full precision, so reordered float accumulation shows up too.
fn render(result: &cxm_core::ContextMatchResult) -> String {
    format!(
        "selected={:?}\nstandard={:?}\ncandidates={:?}\nviews={:?}\nfamilies={:?}",
        result.selected,
        result.standard,
        result.candidates,
        result.candidate_views,
        result.families,
    )
}

#[test]
fn context_match_result_is_iteration_order_independent() {
    let (source, target) = scenario();
    let config =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4);
    let matcher = ContextualMatcher::new(config);
    let reference = render(&matcher.run(&source, &target).unwrap());
    for round in 0..3 {
        // A fresh matcher per round: every internal HashMap is rebuilt with
        // a fresh random hasher state, so any order leak diverges here.
        let matcher = ContextualMatcher::new(
            ContextMatchConfig::default()
                .with_inference(ViewInferenceStrategy::SrcClass)
                .with_tau(0.4),
        );
        let again = render(&matcher.run(&source, &target).unwrap());
        assert_eq!(reference, again, "round {round} diverged from the reference run");
    }
}

#[test]
fn standard_match_outcome_is_iteration_order_independent() {
    let (source, target) = scenario();
    let reference = {
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.4));
        let outcome = matcher.match_databases(&source, &target);
        format!("{:?}\n{:?}", outcome.accepted, outcome.all_pairs)
    };
    for round in 0..3 {
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.4));
        let outcome = matcher.match_databases(&source, &target);
        let again = format!("{:?}\n{:?}", outcome.accepted, outcome.all_pairs);
        assert_eq!(reference, again, "round {round} diverged from the reference run");
    }
}
