//! Connection-governance contracts of the readiness-driven reactor:
//!
//! * **High-connection soak** — ≥1k mostly-idle connections on loopback are
//!   all served while resident threads stay `workers + O(1)`, independent
//!   of connection count (the tentpole claim: connections cost descriptors
//!   and buffers, not stacks).
//! * **Slow-loris isolation** — a byte-dribbling client must not delay a
//!   concurrent fast client past its deadline: dribblers park a connection,
//!   never a worker.
//! * **Idle timeout** — quiet connections (and dribbled partial frames,
//!   which do not count as progress) are reclaimed and counted.
//! * **Per-tenant in-flight cap** — one tenant's pile-up is rejected with
//!   an explicit `overloaded` frame carrying a retry hint, and the tenant's
//!   high-water mark is reported in `stats`.
//!
//! Timing discipline: this file reads no clocks (the workspace's D002
//! invariant). Latency assertions ride on server-side deadline semantics —
//! "the fast client's reply is not `deadline_exceeded`" — and thread counts
//! come from `/proc/self/status`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use cxm_datagen::{generate_retail, RetailConfig};
use cxm_relational::{tuple, Attribute, Database, Table, TableSchema};
use cxm_server::client::{error_code, is_ok, retry_after_ms};
use cxm_server::protocol::encode_database;
use cxm_server::{
    read_frame, serve, write_frame, Client, Json, ServerConfig, TenantPolicy, TenantQuotas,
};

#[test]
fn reactor_connection_governance() {
    high_connection_soak();
    slow_loris_does_not_delay_fast_clients();
    idle_timeout_reclaims_quiet_connections();
    per_tenant_inflight_cap_rejects_explicitly();
}

/// Resident threads of this process, from `/proc/self/status`. Linux-only;
/// elsewhere the soak still runs, minus the thread-count assertion.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|l| l.strip_prefix("Threads:")).and_then(|v| v.trim().parse().ok())
}

fn small_target() -> Database {
    Database::new("RT").with_table(
        Table::with_rows(
            TableSchema::new("book", vec![Attribute::text("title"), Attribute::text("binding")]),
            vec![tuple!["war and peace", "clothbound"], tuple!["middlemarch", "paperback"]],
        )
        .unwrap(),
    )
}

fn small_source(tag: usize) -> Database {
    Database::new("RS").with_table(
        Table::with_rows(
            TableSchema::new("inv", vec![Attribute::text("name"), Attribute::text("descr")]),
            vec![
                tuple![format!("leaves of grass {tag}"), format!("first edition {tag}")],
                tuple![format!("moby dick {tag}"), format!("paperback {tag}")],
            ],
        )
        .unwrap(),
    )
}

/// ≥1k concurrent connections, all answering, with threads bounded by
/// `workers + O(1)`.
fn high_connection_soak() {
    const CONNECTIONS: usize = 1_000;
    const WORKERS: usize = 2;
    let before = thread_count();
    let handle = serve(ServerConfig {
        workers: WORKERS,
        max_connections: CONNECTIONS + 64,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();

    let mut setup = Client::connect(addr).expect("connect");
    let ack = setup
        .register("t", &small_target(), &TenantPolicy::default(), &TenantQuotas::default())
        .expect("register");
    assert!(is_ok(&ack), "{ack:?}");

    // Open the fleet; every connection proves liveness with one request.
    let mut fleet: Vec<Client> = (0..CONNECTIONS)
        .map(|i| {
            let mut client = Client::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}"));
            let reply = client.stats(None).unwrap_or_else(|e| panic!("stats {i}: {e}"));
            assert!(is_ok(&reply), "connection {i}: {reply:?}");
            client
        })
        .collect();

    // The tentpole claim: the fleet added zero threads. Resident threads
    // are the workers plus the reactor (plus whatever the harness already
    // ran), never O(connections).
    if let (Some(before), Some(now)) = (before, thread_count()) {
        let added = now.saturating_sub(before);
        assert!(
            added <= WORKERS + 2,
            "{CONNECTIONS} connections grew threads by {added} (want <= workers + O(1))"
        );
    }

    // The match pipeline still works with a thousand idle peers attached.
    let reply = setup.submit("t", &small_source(1), None).expect("submit");
    assert!(is_ok(&reply), "{reply:?}");

    // Every idle connection still answers.
    for (i, client) in fleet.iter_mut().enumerate() {
        let reply = client.stats(None).unwrap_or_else(|e| panic!("re-stats {i}: {e}"));
        assert!(is_ok(&reply), "connection {i} second round: {reply:?}");
    }

    let stats = handle.stats();
    assert!(stats.peak_connections >= CONNECTIONS, "{stats}");
    assert!(stats.open_connections >= CONNECTIONS, "{stats}");
    assert_eq!(stats.connection_limit_rejects, 0, "{stats}");

    drop(fleet);
    let ack = setup.shutdown().expect("shutdown");
    assert!(is_ok(&ack), "{ack:?}");
    handle.join();
}

/// One byte-dribbling client, one fast client, one worker. The dribbler
/// must cost nothing but its own connection: the fast client's generous
/// deadline must not expire.
fn slow_loris_does_not_delay_fast_clients() {
    let handle = serve(ServerConfig { workers: 1, ..ServerConfig::default() }).expect("bind");
    let addr = handle.local_addr();
    let mut fast = Client::connect(addr).expect("connect");
    let ack = fast
        .register("t", &small_target(), &TenantPolicy::default(), &TenantQuotas::default())
        .expect("register");
    assert!(is_ok(&ack), "{ack:?}");

    // The dribbler: a valid submit frame fed one byte at a time with long
    // pauses, never completing while the fast client works.
    let loris_frame = {
        let mut members = vec![
            ("op".to_string(), Json::str("submit")),
            ("tenant".to_string(), Json::str("t")),
            ("source".to_string(), encode_database(&small_source(99))),
        ];
        members.push(("deadline_ms".to_string(), Json::Int(60_000)));
        Json::Object(members).to_bytes()
    };
    let loris = TcpStream::connect(addr).expect("connect");
    let dribble = {
        let mut stream = loris.try_clone().expect("clone");
        let header = (loris_frame.len() as u32).to_be_bytes();
        thread::spawn(move || {
            // Header, then a few payload bytes, 25 ms apart — a frame that
            // would take minutes to complete at this rate.
            for chunk in [&header[..2], &header[2..], &loris_frame[..1], &loris_frame[1..2]] {
                if stream.write_all(chunk).is_err() {
                    return;
                }
                thread::sleep(Duration::from_millis(25));
            }
        })
    };

    // Ten fast submissions under a 10-second deadline each, racing the
    // dribble. A reactor that let the dribbler capture the worker (or the
    // accept path) would blow these deadlines; explicit `deadline_exceeded`
    // is exactly the failure this asserts against.
    for i in 0..10 {
        let reply = fast.submit("t", &small_source(i), Some(10_000)).expect("fast reply");
        assert!(
            is_ok(&reply),
            "fast client delayed or failed while a slow-loris peer dribbled: {reply:?}"
        );
    }
    dribble.join().expect("dribbler thread");
    drop(loris);

    let ack = fast.shutdown().expect("shutdown");
    assert!(is_ok(&ack), "{ack:?}");
    handle.join();
}

/// With `idle_timeout_ms` set, quiet connections and mid-frame dribblers
/// are closed and counted; the close is an EOF, never a hang.
fn idle_timeout_reclaims_quiet_connections() {
    let handle =
        serve(ServerConfig { workers: 1, idle_timeout_ms: Some(80), ..ServerConfig::default() })
            .expect("bind");
    let addr = handle.local_addr();

    // A connection that completes one request and then goes quiet.
    let mut quiet = TcpStream::connect(addr).expect("connect");
    write_frame(&mut quiet, br#"{"op":"stats"}"#).expect("write");
    let reply = read_frame(&mut quiet, 1 << 20).expect("read").expect("frame");
    assert!(!reply.is_empty());
    // A connection stuck mid-frame (partial header is not progress).
    let mut stuck = TcpStream::connect(addr).expect("connect");
    stuck.write_all(&[0, 0]).expect("partial header");

    // Both must observe a server-side close. The read itself is the wait:
    // a 5 s read timeout bounds the test, the sweep fires within ~100 ms.
    for (name, stream) in [("quiet", &mut quiet), ("stuck", &mut stuck)] {
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = [0u8; 16];
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("{name} connection got {n} bytes instead of a close"),
        }
    }

    // A fresh connection confirms the server is healthy and counted both.
    let mut probe = Client::connect(addr).expect("connect");
    let stats = handle.stats();
    assert!(stats.idle_timeout_closes >= 2, "{stats}");
    let ack = probe.shutdown().expect("shutdown");
    assert!(is_ok(&ack), "{ack:?}");
    handle.join();
}

/// A tenant at its in-flight cap is rejected `overloaded` (with a retry
/// hint) while the queue still has room, and the tenant's stats record the
/// cap pressure: `inflight_rejects` and the `inflight_peak` high-water mark.
fn per_tenant_inflight_cap_rejects_explicitly() {
    let retail = generate_retail(&RetailConfig {
        source_items: 120,
        target_rows: 40,
        ..RetailConfig::default()
    });
    let handle = serve(ServerConfig {
        workers: 1,
        queue_capacity: 16,
        max_inflight_per_tenant: Some(1),
        retry_after_ms: 7,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();
    let mut setup = Client::connect(addr).expect("connect");
    let ack = setup
        .register("t", &retail.target, &TenantPolicy::default(), &TenantQuotas::default())
        .expect("register");
    assert!(is_ok(&ack), "{ack:?}");

    // Pipeline submissions from separate raw connections without reading,
    // so the second arrives while the first (a slow cold match) is still in
    // flight. Single-threaded admission makes the outcome deterministic:
    // the first is admitted, the second trips the cap.
    let frame = |tag: u64| {
        let source = generate_retail(&RetailConfig {
            seed: 500 + tag,
            source_items: 90,
            target_rows: 40,
            ..RetailConfig::default()
        })
        .source;
        Json::Object(vec![
            ("op".to_string(), Json::str("submit")),
            ("tenant".to_string(), Json::str("t")),
            ("source".to_string(), encode_database(&source)),
        ])
        .to_bytes()
    };
    let mut first = TcpStream::connect(addr).expect("connect");
    let mut second = TcpStream::connect(addr).expect("connect");
    write_frame(&mut first, &frame(1)).expect("write");
    // The reactor admits strictly in arrival order; the second submission
    // lands while the first is cold-matching on the only worker.
    let second_reply = {
        write_frame(&mut second, &frame(2)).expect("write");
        let payload = read_frame(&mut second, 1 << 24).expect("read").expect("frame");
        cxm_server::json::parse(&payload).expect("json")
    };
    assert_eq!(error_code(&second_reply), Some("overloaded"), "{second_reply:?}");
    assert!(
        second_reply
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("in-flight")),
        "the reject names the cap: {second_reply:?}"
    );
    assert!(retry_after_ms(&second_reply).is_some_and(|ms| ms >= 7), "{second_reply:?}");

    // The first submission completes untouched by its neighbor's reject.
    let payload = read_frame(&mut first, 1 << 24).expect("read").expect("frame");
    let first_reply = cxm_server::json::parse(&payload).expect("json");
    assert!(is_ok(&first_reply), "{first_reply:?}");

    let tenant = &handle.tenant_stats()[0];
    assert!(tenant.inflight_rejects >= 1, "{tenant}");
    assert_eq!(tenant.inflight_peak, 1, "{tenant}");
    assert_eq!(tenant.inflight, 0, "everything answered: {tenant}");

    // The wire-level stats op reports the same counters.
    let stats_frame = setup.stats(Some("t")).expect("stats");
    let tenants = stats_frame.get("tenants").and_then(Json::as_array).expect("tenants");
    assert!(
        tenants[0].get("inflight_rejects").and_then(Json::as_i64).is_some_and(|n| n >= 1),
        "{stats_frame:?}"
    );

    let ack = setup.shutdown().expect("shutdown");
    assert!(is_ok(&ack), "{ack:?}");
    handle.join();
}
