//! Integration-test package — the cross-crate tests live in `tests/tests/`.
//!
//! This library target exists only so Cargo has a compilation unit to attach
//! the integration tests to; it intentionally exposes nothing.
