//! The serving protocol from the client's side: deadlines, policy changes,
//! and the stats op.
//!
//! Connects to `CXM_SERVER_ADDR` if set (e.g. a server started by
//! `cargo run --example serve` in another terminal — add a long sleep — or
//! any other front-end); otherwise starts its own loopback server so the
//! example is self-contained. Then walks the client-visible contracts:
//!
//! * a `deadline_ms: 0` submission answers `deadline_exceeded` without
//!   doing any matching work;
//! * the same submission without a deadline succeeds, and its repeat is a
//!   whole-match result-cache hit;
//! * re-registering with a `top_k` policy shrinks `selected` while
//!   `standard` is untouched — the policy is a post-match projection
//!   applied at encode time, never baked into cached results.
//!
//! Run with:
//! ```text
//! cargo run --example client
//! ```

use cxm_datagen::{generate_retail, RetailConfig};
use cxm_server::client::{error_code, is_ok};
use cxm_server::{serve, Client, Json, ServerConfig, TenantPolicy, TenantQuotas};

fn list_len(reply: &Json, member: &str) -> usize {
    reply
        .get("result")
        .and_then(|r| r.get(member))
        .and_then(Json::as_array)
        .map_or(0, |matches| matches.len())
}

fn main() {
    // Self-contained by default; point CXM_SERVER_ADDR at a live server to
    // exercise a remote one instead.
    let (handle, addr) = match std::env::var("CXM_SERVER_ADDR") {
        Ok(addr) => (None, addr),
        Err(_) => {
            let handle = serve(ServerConfig::default()).expect("bind a loopback port");
            let addr = handle.local_addr().to_string();
            (Some(handle), addr)
        }
    };
    println!("Connecting to {addr}.");
    let mut client = Client::connect(&addr).expect("connect");

    let retail = generate_retail(&RetailConfig {
        source_items: 80,
        target_rows: 40,
        ..RetailConfig::default()
    });
    let ack = client
        .register("demo", &retail.target, &TenantPolicy::default(), &TenantQuotas::default())
        .expect("register");
    assert!(is_ok(&ack), "{ack:?}");

    // A spent budget is an explicit, cheap refusal.
    let reply = client.submit("demo", &retail.source, Some(0)).expect("submit");
    println!(
        "deadline_ms = 0   → error `{}` (no matching work was done)",
        error_code(&reply).unwrap_or("?"),
    );

    let reply = client.submit("demo", &retail.source, Some(30_000)).expect("submit");
    assert!(is_ok(&reply), "{reply:?}");
    println!(
        "no real deadline  → ok, {} selected / {} standard, result_cache_hit = {}",
        list_len(&reply, "selected"),
        list_len(&reply, "standard"),
        reply.get("result_cache_hit") == Some(&Json::Bool(true)),
    );

    let reply = client.submit("demo", &retail.source, None).expect("submit");
    println!(
        "identical repeat  → ok, result_cache_hit = {}",
        reply.get("result_cache_hit") == Some(&Json::Bool(true)),
    );

    // Policy is a post-match projection applied at encode time: after
    // re-registering with top-3, only `selected` shrinks — `standard` (and
    // everything the result cache stores) is byte-for-byte what it was.
    // (Re-registering bumps the catalog version, so the first submission
    // re-keys the cache; it recomputes from fully warm artifacts.)
    let ack = client
        .register(
            "demo",
            &retail.target,
            &TenantPolicy { top_k: Some(3), ..TenantPolicy::default() },
            &TenantQuotas::default(),
        )
        .expect("re-register");
    assert!(is_ok(&ack), "{ack:?}");
    let reply = client.submit("demo", &retail.source, None).expect("submit");
    println!(
        "after top_k = 3   → ok, {} selected / {} standard, result_cache_hit = {}",
        list_len(&reply, "selected"),
        list_len(&reply, "standard"),
        reply.get("result_cache_hit") == Some(&Json::Bool(true)),
    );

    let stats = client.stats(Some("demo")).expect("stats");
    if let Some(tenant) = stats.get("tenants").and_then(Json::as_array).and_then(|t| t.first()) {
        println!(
            "\ntenant stats      → {}",
            tenant.get("display").and_then(Json::as_str).unwrap_or("?"),
        );
    }

    if let Some(handle) = handle {
        let ack = client.shutdown().expect("shutdown");
        assert!(is_ok(&ack), "{ack:?}");
        handle.join();
        println!("Local server drained and joined cleanly.");
    }
}
