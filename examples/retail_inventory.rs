//! Retail inventory scenario: the paper's main evaluation workload.
//!
//! Generates the synthetic "Colin Bleckner → Ryan Eyers" retail dataset (a
//! combined items table with a γ-valued `ItemType` matched against split
//! book/music tables), runs contextual matching with each view-inference
//! strategy, and reports accuracy / precision / FMeasure against the known
//! ground truth.
//!
//! Run with:
//! ```text
//! cargo run -p cxm-examples --bin retail_inventory
//! ```

use cxm_core::{ContextMatchConfig, ContextualMatcher, ViewInferenceStrategy};
use cxm_datagen::{generate_retail, RetailConfig, TargetFlavor};

fn main() {
    let retail = RetailConfig {
        source_items: 600,
        target_rows: 120,
        gamma: 4,
        flavor: TargetFlavor::Ryan,
        ..RetailConfig::default()
    };
    let dataset = generate_retail(&retail);
    println!(
        "Generated {} source items and {} target rows (gamma = {}).",
        dataset.source.table("items").map(|t| t.len()).unwrap_or(0),
        dataset.target.total_rows(),
        retail.gamma
    );
    println!("Ground truth contains {} contextual match triples.\n", dataset.truth.len());

    for strategy in ViewInferenceStrategy::ALL {
        let config =
            ContextMatchConfig::default().with_inference(strategy).with_early_disjuncts(true);
        let result = ContextualMatcher::new(config)
            .run(&dataset.source, &dataset.target)
            .expect("generated schemas are well formed");
        let quality = dataset.truth.evaluate(&result.selected);
        println!(
            "{:<9} candidate views: {:>4}   selected contextual matches: {:>3}   \
             accuracy {:5.1}%  precision {:5.1}%  FMeasure {:5.1}%",
            strategy.name(),
            result.candidate_views.len(),
            result.contextual_selected().len(),
            100.0 * quality.accuracy(),
            100.0 * quality.precision(),
            quality.f_measure_pct(),
        );
    }

    // Show a few of the matches found by the default configuration.
    let result = ContextualMatcher::new(ContextMatchConfig::default())
        .run(&dataset.source, &dataset.target)
        .expect("generated schemas are well formed");
    println!("\nSample of selected contextual matches (default TgtClassInfer config):");
    for m in result.contextual_selected().into_iter().take(10) {
        println!("  {m}");
    }
}
