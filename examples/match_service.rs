//! The long-lived match service: register a target once, match many sources.
//!
//! An enterprise deployment matches a stream of source schemas against one
//! slowly-changing shared target. This example registers the retail target
//! in a [`cxm_service::MatchService`], submits the retail source three times
//! (cold, then a whole-match result-cache hit, then warm with memoization
//! aside), submits the unrelated grades source, replaces a single target
//! table, and finally edits a **single column** of one table — printing
//! per-request telemetry and the per-column `CatalogUpdate` delta counts so
//! the column-granular reuse and the fingerprint-keyed selective
//! invalidation are visible.
//!
//! Run with:
//! ```text
//! cargo run --example match_service
//! ```

use cxm_core::{ContextMatchConfig, ViewInferenceStrategy};
use cxm_datagen::{generate_grades, generate_retail, GradesConfig, RetailConfig};
use cxm_relational::{Table, Tuple, Value};
use cxm_service::{CatalogUpdate, MatchResponse, MatchService};

fn report(label: &str, response: &MatchResponse) {
    println!(
        "  {label}: {} selected matches ({} contextual)",
        response.result.selected.len(),
        response.result.contextual_selected().len(),
    );
    println!("    telemetry: {}", response.telemetry);
}

fn report_update(label: &str, update: &CatalogUpdate) {
    println!(
        "{label} (v{}): tables {} reused / {} rebuilt, columns {} reused / {} rebuilt.",
        update.version,
        update.reused,
        update.rebuilt,
        update.columns_reused,
        update.columns_rebuilt,
    );
}

/// A copy of `table` with one column's values textually perturbed — the
/// single-column drift the column-granular warm keys absorb.
fn edit_one_column(table: &Table, column: &str) -> Table {
    let index = table.schema().index_of(column).expect("column exists");
    let rows = table
        .rows()
        .iter()
        .map(|row| {
            Tuple::new(
                (0..table.schema().arity())
                    .map(|i| {
                        if i == index {
                            Value::str(format!("{} (rev)", row.at(i).as_text()))
                        } else {
                            row.at(i).clone()
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    Table::with_rows(table.schema().clone(), rows).expect("schema unchanged")
}

fn main() {
    let retail = generate_retail(&RetailConfig {
        source_items: 200,
        target_rows: 50,
        ..RetailConfig::default()
    });
    let grades = generate_grades(&GradesConfig { students: 80, ..GradesConfig::default() });

    let config =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4);
    let service = MatchService::new(config);

    // Register the shared target once. Every table gets a content
    // fingerprint; the column batch is hoisted into the catalog snapshot.
    let update = service.register_target(&retail.target);
    println!(
        "Registered retail target: {} tables (v{}), fingerprints {:?}.",
        update.tables,
        update.version,
        service
            .catalog()
            .snapshot()
            .fingerprints()
            .iter()
            .map(|(name, fp)| format!("{name}:{fp:08x}…"))
            .collect::<Vec<_>>(),
    );

    println!("\nRequests:");
    let cold = service.submit(&retail.source).expect("well-formed retail scenario");
    report("retail (cold)", &cold);

    // An identical repeat is a whole-match result-cache hit: no profile
    // builds, no selection scans, no classifier work — one lookup.
    let memoized = service.submit(&retail.source).expect("well-formed retail scenario");
    report("retail (repeat)", &memoized);

    let foreign = service.submit(&grades.source).expect("well-formed grades scenario");
    report("grades", &foreign);

    // Replace ONE target table: only that table's artifacts are rebuilt.
    let mut replacement = retail.target.tables().next().expect("retail target has tables").clone();
    let renamed = replacement.name().to_string();
    replacement = replacement.head(replacement.len().saturating_sub(1));
    let update = service.replace_table(replacement.clone()).expect("table is registered");
    report_update(&format!("\nReplaced target table `{renamed}`"), &update);
    let after = service.submit(&retail.source).expect("well-formed retail scenario");
    report("retail (after replace)", &after);

    // Edit a SINGLE COLUMN of that table: the catalog rebuilds exactly that
    // column — every sibling column keeps its values, memoized profiles and
    // cached selections — and the next request re-profiles exactly one
    // column.
    let column = replacement
        .schema()
        .attributes()
        .iter()
        .find(|a| a.data_type == cxm_relational::DataType::Text)
        .map(|a| a.name.clone())
        .expect("retail tables have text columns");
    let edited = edit_one_column(&replacement, &column);
    let update = service.replace_table(edited).expect("table is registered");
    report_update(&format!("\nEdited single column `{renamed}.{column}`"), &update);
    let after_column = service.submit(&retail.source).expect("well-formed retail scenario");
    report("retail (after column edit)", &after_column);
    println!(
        "    → the single-column edit re-profiled {} column(s); a full table rebuild would \
         have re-profiled {}",
        after_column.telemetry.qgram_profile_builds,
        replacement.schema().arity(),
    );

    // Restricted-column profiles are content-keyed, so the entries built at
    // catalog v1 are still serving requests at v3 — the version span makes
    // that longevity visible.
    let snapshot = service.catalog().snapshot();
    let cache = snapshot.restricted_profiles().lock().expect("no poisoned requests");
    if let Some((oldest, newest)) = cache.version_span() {
        println!(
            "    → {} restricted-column entries published at catalog v{oldest}–v{newest} \
             still live at v{}",
            cache.len(),
            snapshot.version(),
        );
    }
}
