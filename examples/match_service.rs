//! The long-lived match service: register a target once, match many sources.
//!
//! An enterprise deployment matches a stream of source schemas against one
//! slowly-changing shared target. This example registers the retail target
//! in a [`cxm_service::MatchService`], submits the retail source twice (cold
//! then warm), submits the unrelated grades source, then replaces a single
//! target table and submits again — printing per-request telemetry so the
//! warm-artifact reuse and the fingerprint-keyed selective invalidation are
//! visible.
//!
//! Run with:
//! ```text
//! cargo run --example match_service
//! ```

use cxm_core::{ContextMatchConfig, ViewInferenceStrategy};
use cxm_datagen::{generate_grades, generate_retail, GradesConfig, RetailConfig};
use cxm_service::{MatchResponse, MatchService};

fn report(label: &str, response: &MatchResponse) {
    println!(
        "  {label}: {} selected matches ({} contextual)",
        response.result.selected.len(),
        response.result.contextual_selected().len(),
    );
    println!("    telemetry: {}", response.telemetry);
}

fn main() {
    let retail = generate_retail(&RetailConfig {
        source_items: 200,
        target_rows: 50,
        ..RetailConfig::default()
    });
    let grades = generate_grades(&GradesConfig { students: 80, ..GradesConfig::default() });

    let config =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4);
    let service = MatchService::new(config);

    // Register the shared target once. Every table gets a content
    // fingerprint; the column batch is hoisted into the catalog snapshot.
    let update = service.register_target(&retail.target);
    println!(
        "Registered retail target: {} tables (v{}), fingerprints {:?}.",
        update.tables,
        update.version,
        service
            .catalog()
            .snapshot()
            .fingerprints()
            .iter()
            .map(|(name, fp)| format!("{name}:{fp:08x}…"))
            .collect::<Vec<_>>(),
    );

    println!("\nRequests:");
    let cold = service.submit(&retail.source).expect("well-formed retail scenario");
    report("retail (cold)", &cold);

    let warm = service.submit(&retail.source).expect("well-formed retail scenario");
    report("retail (warm)", &warm);
    println!(
        "    → warm repeat rebuilt {} of {} profiles and re-scanned {} selection atoms",
        warm.telemetry.qgram_profile_builds,
        cold.telemetry.qgram_profile_builds,
        warm.telemetry.selection_cache_misses,
    );

    let foreign = service.submit(&grades.source).expect("well-formed grades scenario");
    report("grades", &foreign);

    // Replace ONE target table: only that table's artifacts are rebuilt.
    let mut replacement = retail.target.tables().next().expect("retail target has tables").clone();
    let renamed = replacement.name().to_string();
    replacement = replacement.head(replacement.len().saturating_sub(1));
    let update = service.replace_table(replacement).expect("table is registered");
    println!(
        "\nReplaced target table `{renamed}` (v{}): {} reused, {} rebuilt.",
        update.version, update.reused, update.rebuilt,
    );
    let after = service.submit(&retail.source).expect("well-formed retail scenario");
    report("retail (after replace)", &after);
}
