//! Quickstart: contextual schema matching on the paper's running example.
//!
//! Builds the source inventory table and the book/music target tables of
//! Figure 1 (with enough synthetic rows for instance-based matching to have
//! signal), runs `ContextMatch`, and prints the discovered contextual matches
//! — the `type = 1` / `type = 2` conditions of Figure 3.
//!
//! Run with:
//! ```text
//! cargo run -p cxm-examples --bin quickstart
//! ```

use cxm_core::{ContextMatchConfig, ContextualMatcher, SelectionStrategy, ViewInferenceStrategy};
use cxm_datagen::RecordGenerator;
use cxm_relational::{Attribute, Database, Table, TableSchema, Tuple, Value};

fn build_source(n: usize) -> Database {
    let schema = TableSchema::new(
        "inv",
        vec![
            Attribute::int("id"),
            Attribute::text("name"),
            Attribute::int("type"),
            Attribute::bool("instock"),
            Attribute::text("code"),
            Attribute::text("descr"),
        ],
    );
    let mut gen = RecordGenerator::new(1);
    let mut rows = Vec::new();
    for i in 0..n {
        let is_book = i % 2 == 0;
        let (name, code, descr) = if is_book {
            let b = gen.book();
            (b.title, b.isbn, b.format)
        } else {
            let m = gen.music();
            (m.title, m.asin, m.label)
        };
        rows.push(Tuple::new(vec![
            Value::from(i),
            Value::Str(name),
            Value::from(if is_book { 1 } else { 2 }),
            Value::Bool(i % 3 != 0),
            Value::Str(code),
            Value::Str(descr),
        ]));
    }
    Database::new("RS").with_table(Table::with_rows(schema, rows).expect("rows match schema"))
}

fn build_target(n: usize) -> Database {
    let mut gen = RecordGenerator::new(2);
    let book_schema = TableSchema::new(
        "book",
        vec![
            Attribute::text("title"),
            Attribute::text("isbn"),
            Attribute::float("price"),
            Attribute::text("format"),
        ],
    );
    let mut book_rows = Vec::new();
    for _ in 0..n {
        let b = gen.book();
        book_rows.push(Tuple::new(vec![
            Value::Str(b.title),
            Value::Str(b.isbn),
            Value::Float(b.price),
            Value::Str(b.format),
        ]));
    }
    let music_schema = TableSchema::new(
        "music",
        vec![
            Attribute::text("title"),
            Attribute::text("asin"),
            Attribute::float("price"),
            Attribute::float("sale"),
            Attribute::text("label"),
        ],
    );
    let mut music_rows = Vec::new();
    for _ in 0..n {
        let m = gen.music();
        music_rows.push(Tuple::new(vec![
            Value::Str(m.title),
            Value::Str(m.asin),
            Value::Float(m.price),
            Value::Float(m.sale),
            Value::Str(m.label),
        ]));
    }
    Database::new("RT")
        .with_table(Table::with_rows(book_schema, book_rows).expect("rows match schema"))
        .with_table(Table::with_rows(music_schema, music_rows).expect("rows match schema"))
}

fn main() {
    let source = build_source(300);
    let target = build_target(80);
    println!("Source schema:\n{}\n", source.schema());
    println!("Target schema:\n{}\n", target.schema());

    let config = ContextMatchConfig::default()
        .with_inference(ViewInferenceStrategy::SrcClass)
        .with_selection(SelectionStrategy::QualTable)
        .with_early_disjuncts(true);
    let result = ContextualMatcher::new(config)
        .run(&source, &target)
        .expect("the example databases are well formed");

    println!("Standard (prototype) matches accepted at tau = {}:", config.tau());
    for m in &result.standard {
        println!("  {m}");
    }

    println!("\nSelected contextual matches:");
    for m in result.contextual_selected() {
        println!("  {m}");
    }

    println!("\nViews inferred by contextual matching (cf. Figure 3 of the paper):");
    for v in result.selected_view_defs() {
        println!("  {v}");
    }
}
