//! Attribute normalization with ClioQualTable (the Grades scenario, §4.3/§5.7).
//!
//! The narrow `grades(name, examNum, grade)` table must be mapped to a wide
//! `projs(name, grade1..grade5)` table. Contextual matching discovers the
//! per-exam views, constraint mining + propagation derive keys and contextual
//! foreign keys on them, the (join 1) rule joins the views on `name`, and the
//! generated mapping query materializes the wide table from the narrow sample.
//!
//! Run with:
//! ```text
//! cargo run -p cxm-examples --bin grades_normalization
//! ```

use cxm_core::{ContextMatchConfig, ViewInferenceStrategy};
use cxm_datagen::{generate_grades, GradesConfig};
use cxm_mapping::clio_qual_table;

fn main() {
    let grades =
        GradesConfig { students: 120, target_students: 120, sigma: 8.0, ..GradesConfig::default() };
    let dataset = generate_grades(&grades);
    println!(
        "Narrow source: {} rows; wide target schema: {}.",
        dataset.source.table("grades").map(|t| t.len()).unwrap_or(0),
        dataset.target.table("projs").map(|t| t.schema().to_string()).unwrap_or_default()
    );

    let config = ContextMatchConfig::default()
        .with_inference(ViewInferenceStrategy::SrcClass)
        .with_early_disjuncts(false)
        .with_omega(1.0)
        .with_tau(0.3);
    let mapping = clio_qual_table(&dataset.source, &dataset.target, config)
        .expect("generated schemas are well formed");

    println!("\nInferred views:");
    for v in &mapping.views {
        println!("  {v}");
    }

    println!("\nConstraints mined / propagated onto the views:");
    print!("{}", mapping.constraints);

    println!("\nMapping queries:");
    for q in &mapping.queries {
        print!("{q}");
    }

    println!("\nAccuracy against ground truth: {:.1}%", {
        dataset.truth.accuracy_pct(&mapping.match_result.selected)
    });

    if let Some(wide) = mapping.target_instance.table("projs") {
        println!("\nMaterialized wide table ({} rows); first rows:", wide.len());
        for row in wide.rows().iter().take(5) {
            println!("  {row}");
        }
    } else {
        println!("\nNo mapping query was generated for the wide table.");
    }
}
