//! Kill-and-restart smoke test for warm-state persistence.
//!
//! The parent process spawns a real server in a child process, warms a
//! tenant over the wire, snapshots via the `persist` op, then **SIGKILLs**
//! the child — no drain, no destructors. A second child restarts from the
//! snapshot file and must answer the same submission **byte-identically**,
//! with its warm state *restored* (not rebuilt) and zero degraded
//! sections. Exits non-zero on any divergence, so CI can run it as-is.
//!
//! Run with:
//! ```text
//! cargo run --example persist_smoke
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cxm::core::ContextMatchConfig;
use cxm::datagen::{generate_retail, RetailConfig};
use cxm::server::client::is_ok;
use cxm::server::{
    serve, Json, RetryPolicy, RetryingClient, ServerConfig, TenantPolicy, TenantQuotas,
};

fn work_dir() -> PathBuf {
    std::env::temp_dir().join(format!("cxm-persist-smoke-{}", std::process::id()))
}

/// Child mode: serve with a persist path, publish the bound address, park
/// until killed.
fn run_server(snap: PathBuf, addr_file: PathBuf) -> ! {
    let handle = serve(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        context: ContextMatchConfig::default().with_tau(0.4),
        persist_path: Some(snap),
        ..ServerConfig::default()
    })
    .expect("bind a loopback port");
    let staged = addr_file.with_extension("tmp");
    let mut f = std::fs::File::create(&staged).expect("stage addr file");
    writeln!(f, "{}", handle.local_addr()).expect("write addr");
    drop(f);
    std::fs::rename(&staged, &addr_file).expect("publish addr file");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn spawn_server(snap: &PathBuf, addr_file: &PathBuf) -> (Child, String) {
    let _ = std::fs::remove_file(addr_file);
    let mut child = Command::new(std::env::current_exe().expect("current exe"))
        .arg("server")
        .arg(snap)
        .arg(addr_file)
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn child server");
    for _ in 0..600 {
        if let Ok(addr) = std::fs::read_to_string(addr_file) {
            return (child, addr.trim().to_string());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("child server never published its address");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("server") {
        run_server(PathBuf::from(&args[2]), PathBuf::from(&args[3]));
    }

    let dir = work_dir();
    std::fs::create_dir_all(&dir).expect("create work dir");
    let snap = dir.join("warm.snap");
    let addr_file = dir.join("addr.txt");
    let _ = std::fs::remove_file(&snap);

    let retail = generate_retail(&RetailConfig {
        source_items: 60,
        target_rows: 25,
        ..RetailConfig::default()
    });

    // Life 1: warm the tenant over the wire, snapshot, then SIGKILL.
    let (mut first, addr) = spawn_server(&snap, &addr_file);
    let mut client = RetryingClient::new(addr, RetryPolicy::default());
    let ack = client
        .register("shop", &retail.target, &TenantPolicy::default(), &TenantQuotas::default())
        .expect("register");
    assert!(is_ok(&ack), "register failed: {ack:?}");
    let warm = client.submit("shop", &retail.source, None).expect("warm submit");
    assert!(is_ok(&warm), "submit failed: {warm:?}");
    let expected = warm.get("result").expect("result member").to_text();
    let persisted = client.persist().expect("persist op");
    assert!(is_ok(&persisted), "persist failed: {persisted:?}");
    println!(
        "life 1: warmed tenant, snapshot = {} bytes",
        persisted.get("bytes").and_then(Json::as_u64).unwrap_or(0)
    );
    first.kill().expect("SIGKILL the server");
    let _ = first.wait();
    println!("life 1: killed without drain");

    // Life 2: restart from the snapshot; no registration at all.
    let (mut second, addr) = spawn_server(&snap, &addr_file);
    let mut client = RetryingClient::new(addr, RetryPolicy::default());
    let reply = client.submit("shop", &retail.source, None).expect("post-restart submit");
    assert!(is_ok(&reply), "post-restart submit failed: {reply:?}");
    let got = reply.get("result").expect("result member").to_text();
    assert_eq!(got, expected, "restarted server must answer byte-identically");

    let stats = client.stats(Some("shop")).expect("stats");
    let tenant = stats
        .get("tenants")
        .and_then(Json::as_array)
        .and_then(|t| t.first())
        .expect("tenant stats");
    let restored = tenant.get("restored_columns").and_then(Json::as_u64).unwrap_or(0);
    let rebuilt = tenant.get("rebuilt_columns").and_then(Json::as_u64).unwrap_or(u64::MAX);
    let degraded = tenant.get("degraded_sections").and_then(Json::as_u64).unwrap_or(u64::MAX);
    assert!(restored > 0, "warm state must be restored, not rebuilt: {tenant:?}");
    assert_eq!(rebuilt, 0, "no column may need a rebuild after a clean snapshot: {tenant:?}");
    assert_eq!(degraded, 0, "no section may degrade after a clean snapshot: {tenant:?}");
    println!(
        "life 2: byte-identical answer, {restored} columns restored, {rebuilt} rebuilt, \
         {degraded} degraded"
    );

    second.kill().expect("stop second server");
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&dir);
    println!("persist smoke: OK");
}
