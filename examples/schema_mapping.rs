//! Constraint propagation and the contextual join rules on the paper's
//! student/project example (§4.1–4.3, Examples 4.1–4.5).
//!
//! Builds the `student` / `project` schema, defines the per-assignment views
//! `Vi = select name, grade from project where assignt = i`, and shows how
//! the system derives keys, contextual foreign keys, and join-1 edges — ending
//! with a mapping that pivots the project table into a wide `projs` table.
//!
//! Run with:
//! ```text
//! cargo run -p cxm-examples --bin schema_mapping
//! ```

use cxm_mapping::{
    associate, execute_mapping, mine_constraints, mine_view_constraints, propagate_constraints,
    MappingQuery, MiningConfig, ValueCorrespondence,
};
use cxm_relational::{tuple, AttrRef, Attribute, Condition, Database, Table, TableSchema, ViewDef};

fn school_db() -> Database {
    let student = Table::with_rows(
        TableSchema::new(
            "student",
            vec![Attribute::text("name"), Attribute::text("email"), Attribute::text("address")],
        ),
        vec![
            tuple!["ann", "ann@u.edu", "1 elm st"],
            tuple!["bob", "bob@u.edu", "2 oak ave"],
            tuple!["carol", "carol@u.edu", "3 pine rd"],
            tuple!["dave", "dave@u.edu", "4 birch ln"],
        ],
    )
    .expect("rows match schema");
    let mut project_rows = Vec::new();
    for (i, name) in ["ann", "bob", "carol", "dave"].iter().enumerate() {
        for assignt in 0..3i64 {
            let grade = ["A", "B", "C", "A", "B"][(i + assignt as usize) % 5];
            let instructor = if assignt == 0 { "smith" } else { "jones" };
            project_rows.push(tuple![*name, assignt, grade, instructor]);
        }
    }
    let project = Table::with_rows(
        TableSchema::new(
            "project",
            vec![
                Attribute::text("name"),
                Attribute::int("assignt"),
                Attribute::text("grade"),
                Attribute::text("instructor"),
            ],
        ),
        project_rows,
    )
    .expect("rows match schema");
    Database::new("RS").with_table(student).with_table(project)
}

fn main() {
    let source = school_db();
    println!("Source schema:\n{}\n", source.schema());

    // The views of Example 4.1.
    let views: Vec<ViewDef> = (0..3)
        .map(|i| {
            ViewDef::select_project(
                format!("V{i}"),
                "project",
                Condition::eq("assignt", i),
                vec!["name".into(), "grade".into()],
            )
        })
        .collect();
    for v in &views {
        println!("{v}");
    }

    // Mine base constraints, then mine + propagate constraints on the views.
    let mining = MiningConfig::default();
    let mut constraints = mine_constraints(&source, &mining);
    constraints.extend(mine_view_constraints(&source, &views, &constraints, &mining));
    constraints.extend(propagate_constraints(&source, &views, &constraints));
    println!("\nConstraints (declared-on-sample, mined and propagated):");
    print!("{constraints}");

    // Associate the views into a logical table (join 1 fires here).
    let names: Vec<String> = views.iter().map(|v| v.name.clone()).collect();
    let logical = associate(&names, &views, &constraints);
    println!("\nLogical table joins:");
    for e in &logical.edges {
        println!("  {e}");
    }

    // The target of Example 4.3: one row per student, one grade column per assignment.
    let target_schema = TableSchema::new(
        "projs",
        vec![
            Attribute::text("name"),
            Attribute::text("grade0"),
            Attribute::text("grade1"),
            Attribute::text("grade2"),
        ],
    );
    let mut correspondences =
        vec![ValueCorrespondence::new(AttrRef::new("V0", "name"), AttrRef::new("projs", "name"))];
    for i in 0..3 {
        correspondences.push(ValueCorrespondence::new(
            AttrRef::new(format!("V{i}"), "grade"),
            AttrRef::new("projs", format!("grade{i}")),
        ));
    }
    let query = MappingQuery::new("projs", logical, correspondences);
    let wide = execute_mapping(&source, &views, &query, &target_schema)
        .expect("mapping over the example instance succeeds");

    println!("\nMaterialized target instance:");
    println!("{wide}");
}
