//! The multi-tenant serving layer, end to end on a loopback socket.
//!
//! Starts a `cxm_server` front-end in-process, registers **two tenants**
//! over different retail catalogs — one driven cold (a fresh source every
//! round), one driven warm (the same source re-submitted, so after round
//! one every answer is a whole-match result-cache hit) — then prints the
//! per-tenant serving telemetry: submits, result-cache hits, quota
//! evictions, and the warm-artifact store totals. The tenants are fully
//! isolated (separate catalogs, caches, and policies) yet share one gram
//! interner, which is what keeps cross-tenant memory cost sane.
//!
//! Run with:
//! ```text
//! cargo run --example serve
//! ```

use cxm_core::{ContextMatchConfig, ViewInferenceStrategy};
use cxm_datagen::{generate_retail, RetailConfig};
use cxm_server::client::is_ok;
use cxm_server::{serve, Client, Json, ServerConfig, TenantPolicy, TenantQuotas};

fn selected_count(reply: &Json) -> usize {
    reply
        .get("result")
        .and_then(|r| r.get("selected"))
        .and_then(Json::as_array)
        .map_or(0, |selected| selected.len())
}

fn main() {
    let context =
        ContextMatchConfig::default().with_inference(ViewInferenceStrategy::SrcClass).with_tau(0.4);
    let handle = serve(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        context,
        default_deadline_ms: Some(5_000),
        ..ServerConfig::default()
    })
    .expect("bind a loopback port");
    println!("Serving on {} (2 workers, queue bound 16).\n", handle.local_addr());

    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Two tenants, two catalogs. `warmshop` asks for a top-5 policy — a
    // post-match projection that leaves its cached results untouched.
    let cold_target = generate_retail(&RetailConfig {
        source_items: 50,
        target_rows: 40,
        ..RetailConfig::default()
    })
    .target;
    let warm_retail = generate_retail(&RetailConfig {
        seed: 23,
        source_items: 150,
        target_rows: 50,
        ..RetailConfig::default()
    });
    for (tenant, target, policy) in [
        ("coldshop", &cold_target, TenantPolicy::default()),
        (
            "warmshop",
            &warm_retail.target,
            TenantPolicy { top_k: Some(5), ..TenantPolicy::default() },
        ),
    ] {
        let ack =
            client.register(tenant, target, &policy, &TenantQuotas::default()).expect("register");
        assert!(is_ok(&ack), "{ack:?}");
        println!(
            "Registered tenant `{tenant}`: catalog v{}, {} tables.",
            ack.get("version").and_then(Json::as_i64).unwrap_or(0),
            ack.get("tables").and_then(Json::as_i64).unwrap_or(0),
        );
    }

    println!("\nRounds (coldshop: fresh source each time; warmshop: the same source):");
    for round in 1..=3 {
        let cold_source = generate_retail(&RetailConfig {
            seed: 100 + round,
            source_items: 40,
            target_rows: 40,
            ..RetailConfig::default()
        })
        .source;
        for (tenant, source) in [("coldshop", &cold_source), ("warmshop", &warm_retail.source)] {
            let reply = client.submit(tenant, source, None).expect("submit");
            assert!(is_ok(&reply), "{reply:?}");
            println!(
                "  round {round} {tenant:9}: {} selected, result_cache_hit = {}",
                selected_count(&reply),
                reply.get("result_cache_hit") == Some(&Json::Bool(true)),
            );
        }
    }

    println!("\nPer-tenant serving telemetry:");
    for tenant in handle.tenant_stats() {
        println!("  {tenant}");
    }
    println!("\nServer: {}", handle.stats());

    let ack = client.shutdown().expect("shutdown");
    assert!(is_ok(&ack), "{ack:?}");
    handle.join();
    println!("Drained and joined cleanly.");
}
