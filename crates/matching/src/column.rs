//! Column data handed to matchers.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

use cxm_relational::{AttrRef, ColumnSlice, DataType, Database, Table, Value};

use crate::intern::{GramInterner, InternedProfile, InternedValueSet};

/// Process-wide instrumentation counting the expensive, memoized profile
/// builds. The sharded `StandardMatch` pipeline promises that a column shared
/// across shards is profiled exactly once per run; the integration tests hold
/// it to that with these counters.
pub mod telemetry {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static QGRAM_PROFILE_BUILDS: AtomicUsize = AtomicUsize::new(0);

    /// Total q-gram profiles built by this process so far.
    pub fn qgram_profile_builds() -> usize {
        QGRAM_PROFILE_BUILDS.load(Ordering::Relaxed)
    }

    pub(crate) fn record_qgram_profile_build() {
        QGRAM_PROFILE_BUILDS.fetch_add(1, Ordering::Relaxed);
    }
}

/// One attribute's worth of sample data: its qualified name, declared type and
/// the bag of non-NULL values drawn from the sample instance.
///
/// This is the only thing a [`crate::Matcher`] ever sees, which keeps the
/// matchers reusable for base tables *and* inferred views: a view-restricted
/// column is just another `ColumnData` with fewer values.
///
/// Storage is **borrowed** (references into the base [`Table`]'s tuples — the
/// zero-copy path used when scoring candidate views), **owned** (for
/// hand-built columns, e.g. in tests), or **shared** (`Arc`-backed owned
/// values — the `'static` flavour a long-lived service keeps in its target
/// catalog, where cloning a column must not copy its values). Matchers are
/// agnostic: they consume values through [`ColumnData::iter`],
/// [`ColumnData::texts`] and [`ColumnData::numbers`].
///
/// Derived artifacts the matchers need repeatedly — the 3-gram frequency
/// profile, the normalized distinct-value set, the numeric summary — are
/// memoized lazily and thread-safely inside the column. `ScoreMatch` rescoring
/// hits the *same* target column once per candidate view, and `StandardMatch`
/// hits the same source column once per target attribute; memoization turns
/// those repeated O(values) profile builds into one build per column.
#[derive(Debug, Clone)]
pub struct ColumnData<'a> {
    /// Qualified attribute reference (`table.attribute`).
    pub attr: AttrRef,
    /// Declared data type of the attribute.
    pub data_type: DataType,
    /// Non-NULL sample values (owned or borrowed from a base table).
    values: ColumnValues<'a>,
    /// The interner the column's flat artifacts are built against. Defaults
    /// to [`GramInterner::global`]; interned kernels apply only to column
    /// pairs sharing an interner (`Arc::ptr_eq`).
    interner: Arc<GramInterner>,
    /// Content fingerprint of the base column this instance was extracted
    /// from ([`cxm_relational::Table::column_fingerprint`]), when the caller
    /// provided one. This is the column-granular warm key: a catalog carries
    /// a column's memoized artifacts forward exactly when the fingerprint of
    /// the same-named column in the next instance is equal. `None` for
    /// ad-hoc columns (hand-built, view-restricted), which are never keyed.
    fingerprint: Option<u64>,
    /// Lazily memoized derived artifacts (cheap to clone: `Arc`s inside).
    caches: ColumnCaches,
}

/// Thread-safe, lazily filled caches of matcher-facing derived data.
#[derive(Debug, Clone, Default)]
struct ColumnCaches {
    /// Interned sparse-vector 3-gram profile (the hot-path kernel input).
    qgram3_ids: OnceLock<Arc<InternedProfile>>,
    /// Interned distinct-value id set (the hot-path kernel input).
    value_ids: OnceLock<Arc<InternedValueSet>>,
    /// Normalized 3-gram frequency profile (the legacy `QGramMatcher`
    /// kernel; only built when a legacy matcher or explicit caller asks).
    qgram3: OnceLock<Arc<BTreeMap<String, f64>>>,
    /// Trimmed, lowercased distinct value set (legacy `ValueOverlapMatcher`).
    value_set: OnceLock<Arc<BTreeSet<String>>>,
    /// `(mean, population std dev, min, max)` over the numeric values
    /// (`NumericMatcher`); `None` when the column has no numeric values.
    numeric_summary: OnceLock<Option<(f64, f64, f64, f64)>>,
    /// How many values parse as numbers (drives `looks_numeric`, which the
    /// matchers consult once per pair — memoized so the parse pass runs
    /// once per column, not once per pair).
    numeric_count: OnceLock<usize>,
    /// Lowercased attribute name plus its identifier token set (the
    /// `NameMatcher` inputs, built once per column instead of once per pair).
    name_key: OnceLock<Arc<NameKey>>,
}

/// The `NameMatcher`-facing derived data of a column's attribute name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameKey {
    /// ASCII-lowercased attribute name.
    pub lowered: String,
    /// `lowered` pre-split into chars: the Levenshtein DP operates on char
    /// sequences, and splitting per scored pair would dominate the matcher.
    pub chars: Vec<char>,
    /// Lowercased identifier tokens (camelCase / snake_case word splits).
    pub tokens: BTreeSet<String>,
}

/// The memoized derived artifacts of one column, detached from its values —
/// what a cross-request restricted-profile cache stores and re-seeds. Every
/// field is `None` until (unless) the corresponding artifact was actually
/// built; seeding a column with a partial set simply leaves the missing
/// artifacts lazy.
#[derive(Debug, Clone, Default)]
pub struct ColumnArtifacts {
    /// Interned 3-gram profile.
    pub qgram3_ids: Option<Arc<InternedProfile>>,
    /// Interned distinct-value set.
    pub value_ids: Option<Arc<InternedValueSet>>,
    /// Legacy normalized 3-gram profile.
    pub qgram3: Option<Arc<BTreeMap<String, f64>>>,
    /// Legacy distinct value set.
    pub value_set: Option<Arc<BTreeSet<String>>>,
    /// Numeric summary (outer `None` = never built; inner `None` = built,
    /// column has no numeric values).
    pub numeric_summary: Option<Option<(f64, f64, f64, f64)>>,
    /// Number of values that parse as numbers (drives `looks_numeric`).
    pub numeric_count: Option<usize>,
    /// The attribute name's `NameMatcher` inputs (lowered form + identifier
    /// token set). Only interchangeable between columns of the same
    /// attribute name — which holds for every fingerprint-keyed reuse, since
    /// the column fingerprint covers the attribute name.
    pub name_key: Option<Arc<NameKey>>,
}

impl ColumnArtifacts {
    /// True when no artifact has been captured.
    pub fn is_empty(&self) -> bool {
        self.qgram3_ids.is_none()
            && self.value_ids.is_none()
            && self.qgram3.is_none()
            && self.value_set.is_none()
            && self.numeric_summary.is_none()
            && self.numeric_count.is_none()
            && self.name_key.is_none()
    }
}

#[derive(Debug, Clone)]
enum ColumnValues<'a> {
    Owned(Vec<Value>),
    /// Owned values behind an `Arc`: clones share storage, so a catalog
    /// snapshot can hand the same column to many concurrent requests.
    Shared(Arc<Vec<Value>>),
    Borrowed(Vec<&'a Value>),
}

impl<'a> ColumnData<'a> {
    /// Build a column from owned values (no NULL filtering is applied; the
    /// caller provides exactly the bag the matchers should see).
    pub fn owned(attr: AttrRef, data_type: DataType, values: Vec<Value>) -> ColumnData<'static> {
        ColumnData {
            attr,
            data_type,
            values: ColumnValues::Owned(values),
            interner: GramInterner::global(),
            fingerprint: None,
            caches: ColumnCaches::default(),
        }
    }

    /// Rebind the column to another [`GramInterner`]. Must be called before
    /// any interned artifact is built (the memoized artifacts are not
    /// re-interned); intended for catalog-scoped interners and for tests
    /// that want a private id space.
    pub fn with_interner(mut self, interner: Arc<GramInterner>) -> Self {
        debug_assert!(
            self.caches.qgram3_ids.get().is_none() && self.caches.value_ids.get().is_none(),
            "with_interner must precede interned artifact builds"
        );
        self.interner = interner;
        self
    }

    /// The interner the column's flat artifacts are built against.
    pub fn interner(&self) -> &Arc<GramInterner> {
        &self.interner
    }

    /// Tag the column with the content fingerprint of the base column it was
    /// extracted from ([`cxm_relational::Table::column_fingerprint`]). The
    /// caller asserts the fingerprint covers exactly this column's value bag;
    /// warm caches then treat two equal fingerprints as "identical content,
    /// artifacts interchangeable".
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }

    /// The content fingerprint this column was tagged with, if any — the
    /// column-granular warm key (`None` for ad-hoc columns).
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Extract a column from a table instance into `'static`, `Arc`-shared
    /// storage (NULLs skipped, values cloned **once**). Clones of the result
    /// share both the values and the memoized profile `Arc`s, which is what
    /// lets a long-lived catalog snapshot outlive the [`Database`] it was
    /// registered from while staying cheap to hand out per request.
    ///
    /// Matcher-observable behaviour is identical to
    /// [`ColumnData::from_table`] on the same instance: same attribute
    /// reference, same declared type, same value bag in the same order.
    pub fn shared_from_table(
        table: &Table,
        attribute: &str,
    ) -> cxm_relational::Result<ColumnData<'static>> {
        let data_type = table.schema().type_of(attribute).unwrap_or(DataType::Unknown);
        let values: Vec<Value> =
            table.column_iter(attribute)?.filter(|v| !v.is_null()).cloned().collect();
        Ok(ColumnData {
            attr: AttrRef::new(table.name(), attribute),
            data_type,
            values: ColumnValues::Shared(Arc::new(values)),
            interner: GramInterner::global(),
            fingerprint: None,
            caches: ColumnCaches::default(),
        })
    }

    /// All columns of every table of a database in (table, schema) order —
    /// the same batch as [`ColumnData::all_from_database`], but in `'static`,
    /// `Arc`-shared storage for long-lived holders (see
    /// [`ColumnData::shared_from_table`]).
    pub fn shared_from_database(db: &Database) -> Vec<ColumnData<'static>> {
        db.tables()
            .flat_map(|table| {
                table.schema().attributes().iter().map(|a| {
                    ColumnData::shared_from_table(table, &a.name)
                        .expect("attribute comes from the table's own schema")
                })
            })
            .collect()
    }

    /// Extract a column from a table instance, borrowing the values in place
    /// (NULLs skipped). No value is cloned.
    pub fn from_table(table: &'a Table, attribute: &str) -> cxm_relational::Result<ColumnData<'a>> {
        let data_type = table.schema().type_of(attribute).unwrap_or(DataType::Unknown);
        let values: Vec<&Value> = table.column_iter(attribute)?.filter(|v| !v.is_null()).collect();
        Ok(ColumnData {
            attr: AttrRef::new(table.name(), attribute),
            data_type,
            values: ColumnValues::Borrowed(values),
            interner: GramInterner::global(),
            fingerprint: None,
            caches: ColumnCaches::default(),
        })
    }

    /// Build a column from a zero-copy [`ColumnSlice`] (a view-restricted
    /// column), borrowing the selected non-NULL values in place. `table_name`
    /// is the name the column should report (conventionally the view's name,
    /// so that rescoring matches the legacy materializing path byte for byte).
    pub fn from_slice(slice: &ColumnSlice<'a>, table_name: impl Into<String>) -> ColumnData<'a> {
        ColumnData {
            attr: AttrRef::new(table_name, slice.name()),
            data_type: slice.data_type(),
            values: ColumnValues::Borrowed(slice.non_null_values().collect()),
            interner: GramInterner::global(),
            fingerprint: None,
            caches: ColumnCaches::default(),
        }
    }

    /// All columns of a table instance, in schema order.
    pub fn all_from_table(table: &'a Table) -> Vec<ColumnData<'a>> {
        table
            .schema()
            .attributes()
            .iter()
            .map(|a| {
                ColumnData::from_table(table, &a.name)
                    .expect("attribute comes from the table's own schema")
            })
            .collect()
    }

    /// All columns of every table of a database, in (table, schema) order —
    /// the target-side batch `StandardMatch` scores against. Building the
    /// batch once per run (instead of once per source table) is what lets the
    /// memoized profiles below amortize across sharded matching.
    pub fn all_from_database(db: &Database) -> Vec<ColumnData<'_>> {
        db.tables().flat_map(ColumnData::all_from_table).collect()
    }

    /// Number of sample values.
    pub fn len(&self) -> usize {
        match &self.values {
            ColumnValues::Owned(v) => v.len(),
            ColumnValues::Shared(v) => v.len(),
            ColumnValues::Borrowed(v) => v.len(),
        }
    }

    /// True when no sample values are available.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the sample values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> + '_ {
        // Arms with distinct iterator types; box-free via either-style enum
        // (owned and shared storage both walk a `&[Value]`).
        ColumnIter {
            owned: match &self.values {
                ColumnValues::Owned(v) => Some(v.iter()),
                ColumnValues::Shared(v) => Some(v.iter()),
                ColumnValues::Borrowed(_) => None,
            },
            borrowed: match &self.values {
                ColumnValues::Owned(_) | ColumnValues::Shared(_) => None,
                ColumnValues::Borrowed(v) => Some(v.iter()),
            },
        }
    }

    /// The values rendered as text (what the textual matchers consume).
    pub fn texts(&self) -> Vec<String> {
        self.iter().map(|v| v.as_text()).collect()
    }

    /// The numeric interpretations of the values (non-numeric values skipped).
    pub fn numbers(&self) -> Vec<f64> {
        self.iter().filter_map(|v| v.as_f64()).collect()
    }

    /// The column's interned 3-gram count profile — the flat sparse vector
    /// the hot-path cosine kernel merge-joins — built on first use against
    /// [`ColumnData::interner`] and memoized for the column's lifetime.
    pub fn qgram3_ids(&self) -> Arc<InternedProfile> {
        Arc::clone(self.caches.qgram3_ids.get_or_init(|| {
            telemetry::record_qgram_profile_build();
            Arc::new(self.interner.qgram_profile(self.iter().map(|v| v.as_text_cow()), 3))
        }))
    }

    /// The column's interned distinct-value id set (trimmed, ASCII
    /// lowercased, like [`ColumnData::value_set`]), built on first use and
    /// memoized for the column's lifetime.
    pub fn value_ids(&self) -> Arc<InternedValueSet> {
        Arc::clone(self.caches.value_ids.get_or_init(|| {
            Arc::new(self.interner.value_set(self.iter().map(normalized_value_text)))
        }))
    }

    /// The attribute name's lowered form and identifier token set (the
    /// `NameMatcher` inputs), built once per column and memoized.
    pub fn name_key(&self) -> Arc<NameKey> {
        Arc::clone(self.caches.name_key.get_or_init(|| {
            let lowered = self.attr.attribute.to_ascii_lowercase();
            let chars = lowered.chars().collect();
            let tokens = crate::name::identifier_tokens(&lowered).into_iter().collect();
            Arc::new(NameKey { lowered, chars, tokens })
        }))
    }

    /// Capture whichever memoized artifacts this column has built so far.
    /// The artifacts are owned (`'static`), so they may outlive a borrowed
    /// column — which is what lets a service cache view-restricted profiles
    /// across requests.
    pub fn harvest_artifacts(&self) -> ColumnArtifacts {
        ColumnArtifacts {
            qgram3_ids: self.caches.qgram3_ids.get().cloned(),
            value_ids: self.caches.value_ids.get().cloned(),
            qgram3: self.caches.qgram3.get().cloned(),
            value_set: self.caches.value_set.get().cloned(),
            numeric_summary: self.caches.numeric_summary.get().copied(),
            numeric_count: self.caches.numeric_count.get().copied(),
            name_key: self.caches.name_key.get().cloned(),
        }
    }

    /// Pre-fill this column's memoized artifacts from a previously harvested
    /// set. Artifacts already built (or absent from `artifacts`) are left
    /// untouched; the caller is responsible for only seeding artifacts
    /// derived from an **identical value bag** (and, for the interned ones,
    /// the same interner), otherwise scores would silently diverge.
    pub fn seed_artifacts(&self, artifacts: &ColumnArtifacts) {
        if let Some(p) = &artifacts.qgram3_ids {
            let _ = self.caches.qgram3_ids.set(Arc::clone(p));
        }
        if let Some(v) = &artifacts.value_ids {
            let _ = self.caches.value_ids.set(Arc::clone(v));
        }
        if let Some(p) = &artifacts.qgram3 {
            let _ = self.caches.qgram3.set(Arc::clone(p));
        }
        if let Some(v) = &artifacts.value_set {
            let _ = self.caches.value_set.set(Arc::clone(v));
        }
        if let Some(n) = artifacts.numeric_summary {
            let _ = self.caches.numeric_summary.set(n);
        }
        if let Some(n) = artifacts.numeric_count {
            let _ = self.caches.numeric_count.set(n);
        }
        if let Some(k) = &artifacts.name_key {
            let _ = self.caches.name_key.set(Arc::clone(k));
        }
    }

    /// The column's normalized 3-gram frequency profile, built on first use
    /// and memoized for the column's lifetime. This is the **legacy** kernel
    /// input — the scoring hot path runs on [`ColumnData::qgram3_ids`]; the
    /// map profile is only built for legacy matchers, explicit callers and
    /// equivalence tests.
    pub fn qgram3_profile(&self) -> Arc<BTreeMap<String, f64>> {
        Arc::clone(self.caches.qgram3.get_or_init(|| {
            telemetry::record_qgram_profile_build();
            Arc::new(build_qgram_profile(self.iter().map(|v| v.as_text()), 3))
        }))
    }

    /// The trimmed, ASCII-lowercased distinct value set, built on first use
    /// and memoized for the column's lifetime.
    pub fn value_set(&self) -> Arc<BTreeSet<String>> {
        Arc::clone(self.caches.value_set.get_or_init(|| {
            Arc::new(self.iter().map(|v| v.as_text().trim().to_ascii_lowercase()).collect())
        }))
    }

    /// `(mean, population std dev, min, max)` of the numeric values, memoized;
    /// `None` when no value parses as a number.
    pub fn numeric_summary(&self) -> Option<(f64, f64, f64, f64)> {
        *self.caches.numeric_summary.get_or_init(|| {
            let numbers = self.numbers();
            if numbers.is_empty() {
                return None;
            }
            let m = cxm_stats::Moments::from_samples(numbers.iter().copied());
            let min = numbers.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = numbers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            Some((m.mean(), m.population_std_dev(), min, max))
        })
    }

    /// True when the column is numeric either by declared type or because a
    /// clear majority (> 80 %) of its values parse as numbers. The parse
    /// count is memoized: the matchers ask this once per scored pair, the
    /// values are parsed once per column.
    pub fn looks_numeric(&self) -> bool {
        if self.data_type.is_numeric() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        let numeric = *self.caches.numeric_count.get_or_init(|| self.numbers().len());
        numeric as f64 >= 0.8 * self.len() as f64
    }
}

/// Trim and ASCII-lowercase one value's text — the `ValueOverlapMatcher`
/// normalization — borrowing whenever the value already is normalized text
/// (the common case in scraped sample data). Semantically identical to
/// `v.as_text().trim().to_ascii_lowercase()`.
fn normalized_value_text(v: &Value) -> std::borrow::Cow<'_, str> {
    use std::borrow::Cow;
    match v.as_text_cow() {
        Cow::Borrowed(s) => {
            let trimmed = s.trim();
            if trimmed.bytes().any(|b| b.is_ascii_uppercase()) {
                Cow::Owned(trimmed.to_ascii_lowercase())
            } else {
                Cow::Borrowed(trimmed)
            }
        }
        Cow::Owned(s) => Cow::Owned(s.trim().to_ascii_lowercase()),
    }
}

/// Build an L2-normalized q-gram frequency profile over a bag of texts. The
/// single implementation behind both the memoized 3-gram profile and
/// `QGramMatcher`'s non-default widths.
pub fn build_qgram_profile(texts: impl Iterator<Item = String>, q: usize) -> BTreeMap<String, f64> {
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for text in texts {
        for g in cxm_classify::qgrams(&text, q) {
            *counts.entry(g).or_insert(0.0) += 1.0;
        }
    }
    let norm: f64 = counts.values().map(|c| c * c).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in counts.values_mut() {
            *v /= norm;
        }
    }
    counts
}

/// Iterator over a column's values regardless of storage flavour.
struct ColumnIter<'s, 'a> {
    owned: Option<std::slice::Iter<'s, Value>>,
    borrowed: Option<std::slice::Iter<'s, &'a Value>>,
}

impl<'s, 'a: 's> Iterator for ColumnIter<'s, 'a> {
    type Item = &'s Value;

    fn next(&mut self) -> Option<&'s Value> {
        if let Some(it) = &mut self.owned {
            return it.next();
        }
        self.borrowed.as_mut().and_then(|it| it.next().map(|v| &**v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if let Some(it) = &self.owned {
            it.size_hint()
        } else if let Some(it) = &self.borrowed {
            it.size_hint()
        } else {
            (0, Some(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{
        tuple, Attribute, Condition, RowSelection, Table, TableSchema, TableSlice,
    };

    fn table() -> Table {
        Table::with_rows(
            TableSchema::new(
                "inv",
                vec![Attribute::int("id"), Attribute::text("name"), Attribute::text("code")],
            ),
            vec![
                tuple![0, "leaves of grass", "0195128"],
                tuple![1, "the white album", "B002UAX"],
                tuple![2, "heart of darkness", "0486611"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_table_extracts_values_and_type() {
        let t = table();
        let col = ColumnData::from_table(&t, "name").unwrap();
        assert_eq!(col.attr, AttrRef::new("inv", "name"));
        assert_eq!(col.data_type, DataType::Text);
        assert_eq!(col.len(), 3);
        assert!(!col.is_empty());
        assert!(ColumnData::from_table(&t, "missing").is_err());
    }

    #[test]
    fn from_table_borrows_not_clones() {
        let t = table();
        let col = ColumnData::from_table(&t, "name").unwrap();
        let first = col.iter().next().unwrap();
        assert!(std::ptr::eq(first, t.rows()[0].at(1)), "values must alias the base table");
    }

    #[test]
    fn from_slice_restricts_and_renames() {
        let t = table();
        let sel = RowSelection::of_condition(&t, &Condition::is_in("id", [0i64, 2]));
        let slice = TableSlice::new(&t, &sel);
        let col = ColumnData::from_slice(&slice.column("code").unwrap(), "inv[id in (0, 2)]");
        assert_eq!(col.attr, AttrRef::new("inv[id in (0, 2)]", "code"));
        assert_eq!(col.len(), 2);
        assert_eq!(col.texts(), vec!["0195128", "0486611"]);
        let first = col.iter().next().unwrap();
        assert!(std::ptr::eq(first, t.rows()[0].at(2)), "sliced values must alias the base table");
    }

    #[test]
    fn from_slice_skips_nulls_like_from_table() {
        let schema = TableSchema::new("t", vec![Attribute::text("x")]);
        let t = Table::with_rows(
            schema,
            vec![tuple!["a"], cxm_relational::Tuple::new(vec![cxm_relational::Value::Null])],
        )
        .unwrap();
        let sel = RowSelection::full(t.len());
        let slice = TableSlice::new(&t, &sel);
        let col = ColumnData::from_slice(&slice.column("x").unwrap(), "t");
        assert_eq!(col.len(), 1);
        let direct = ColumnData::from_table(&t, "x").unwrap();
        assert_eq!(col.texts(), direct.texts());
    }

    #[test]
    fn all_from_table_is_in_schema_order() {
        let t = table();
        let cols = ColumnData::all_from_table(&t);
        let names: Vec<&str> = cols.iter().map(|c| c.attr.attribute.as_str()).collect();
        assert_eq!(names, vec!["id", "name", "code"]);
    }

    #[test]
    fn texts_and_numbers() {
        let t = table();
        let id = ColumnData::from_table(&t, "id").unwrap();
        assert_eq!(id.numbers(), vec![0.0, 1.0, 2.0]);
        assert!(id.looks_numeric());
        let name = ColumnData::from_table(&t, "name").unwrap();
        assert_eq!(name.texts()[0], "leaves of grass");
        assert!(!name.looks_numeric());
    }

    #[test]
    fn mostly_numeric_text_column_looks_numeric() {
        let t = Table::with_rows(
            TableSchema::new("t", vec![Attribute::text("mixed")]),
            vec![tuple!["10"], tuple!["20"], tuple!["30"], tuple!["40"], tuple!["oops"]],
        )
        .unwrap();
        let col = ColumnData::from_table(&t, "mixed").unwrap();
        assert!(col.looks_numeric());
    }

    #[test]
    fn empty_column_is_not_numeric() {
        let t = Table::new(TableSchema::new("t", vec![Attribute::text("x")]));
        let col = ColumnData::from_table(&t, "x").unwrap();
        assert!(col.is_empty());
        assert!(!col.looks_numeric());
    }

    #[test]
    fn shared_columns_match_borrowed_extraction() {
        let t = table();
        let shared = ColumnData::shared_from_table(&t, "name").unwrap();
        let borrowed = ColumnData::from_table(&t, "name").unwrap();
        assert_eq!(shared.attr, borrowed.attr);
        assert_eq!(shared.data_type, borrowed.data_type);
        assert_eq!(shared.texts(), borrowed.texts());
        assert_eq!(*shared.qgram3_profile(), *borrowed.qgram3_profile());
        assert!(ColumnData::shared_from_table(&t, "missing").is_err());
        // The batch mirrors all_from_database order.
        let db = cxm_relational::Database::new("RT").with_table(t.clone());
        let shared_batch = ColumnData::shared_from_database(&db);
        let borrowed_batch = ColumnData::all_from_database(&db);
        assert_eq!(shared_batch.len(), borrowed_batch.len());
        for (s, b) in shared_batch.iter().zip(&borrowed_batch) {
            assert_eq!(s.attr, b.attr);
            assert_eq!(s.texts(), b.texts());
        }
    }

    #[test]
    fn shared_column_clones_share_values_and_profiles() {
        let t = table();
        let col = ColumnData::shared_from_table(&t, "name").unwrap();
        let profile = col.qgram3_profile();
        let copy = col.clone();
        // Values alias the same allocation across clones.
        let a = col.iter().next().unwrap() as *const Value;
        let b = copy.iter().next().unwrap() as *const Value;
        assert_eq!(a, b, "clones must share the Arc'd value storage");
        // The memoized profile survives the clone (no rebuild).
        assert!(Arc::ptr_eq(&profile, &copy.qgram3_profile()));
    }

    #[test]
    fn shared_from_table_skips_nulls() {
        let schema = TableSchema::new("t", vec![Attribute::text("x")]);
        let t = Table::with_rows(
            schema,
            vec![tuple!["a"], cxm_relational::Tuple::new(vec![cxm_relational::Value::Null])],
        )
        .unwrap();
        let col = ColumnData::shared_from_table(&t, "x").unwrap();
        assert_eq!(col.len(), 1);
        assert_eq!(col.texts(), ColumnData::from_table(&t, "x").unwrap().texts());
    }

    #[test]
    fn interned_profile_is_memoized_and_counted() {
        let t = table();
        let col = ColumnData::from_table(&t, "name").unwrap();
        let before = telemetry::qgram_profile_builds();
        let first = col.qgram3_ids();
        let second = col.qgram3_ids();
        assert!(Arc::ptr_eq(&first, &second), "interned profile must be memoized");
        assert_eq!(telemetry::qgram_profile_builds() - before, 1, "exactly one counted build");
        assert!(!first.is_empty());
        // The value id set is memoized too, and matches the legacy set's size.
        assert!(Arc::ptr_eq(&col.value_ids(), &col.value_ids()));
        assert_eq!(col.value_ids().len(), col.value_set().len());
    }

    #[test]
    fn artifacts_harvest_and_seed_across_columns() {
        let t = table();
        let built = ColumnData::from_table(&t, "name").unwrap();
        assert!(built.harvest_artifacts().is_empty(), "nothing harvested before builds");
        let profile = built.qgram3_ids();
        let values = built.value_ids();
        let numeric = built.numeric_summary();
        let artifacts = built.harvest_artifacts();
        assert!(!artifacts.is_empty());
        assert!(artifacts.qgram3.is_none(), "legacy profile was never built");

        // Seeding a fresh column over the same value bag: no rebuilds, the
        // exact same Arcs are served.
        let seeded = ColumnData::from_table(&t, "name").unwrap();
        seeded.seed_artifacts(&artifacts);
        let before = telemetry::qgram_profile_builds();
        assert!(Arc::ptr_eq(&seeded.qgram3_ids(), &profile));
        assert!(Arc::ptr_eq(&seeded.value_ids(), &values));
        assert_eq!(seeded.numeric_summary(), numeric);
        assert_eq!(telemetry::qgram_profile_builds(), before, "seeded column must not rebuild");
    }

    #[test]
    fn owned_columns_behave_like_borrowed_ones() {
        let col = ColumnData::owned(
            AttrRef::new("t", "x"),
            DataType::Text,
            vec![cxm_relational::Value::str("a"), cxm_relational::Value::str("b")],
        );
        assert_eq!(col.len(), 2);
        assert_eq!(col.texts(), vec!["a", "b"]);
    }
}
