//! Column data handed to matchers.

use cxm_relational::{AttrRef, DataType, Table, Value};

/// One attribute's worth of sample data: its qualified name, declared type and
/// the bag of non-NULL values drawn from the sample instance.
///
/// This is the only thing a [`crate::Matcher`] ever sees, which keeps the
/// matchers reusable for base tables *and* inferred views: a view-restricted
/// column is just another `ColumnData` with fewer values.
#[derive(Debug, Clone)]
pub struct ColumnData {
    /// Qualified attribute reference (`table.attribute`).
    pub attr: AttrRef,
    /// Declared data type of the attribute.
    pub data_type: DataType,
    /// Non-NULL sample values.
    pub values: Vec<Value>,
}

impl ColumnData {
    /// Extract a column from a table instance.
    pub fn from_table(table: &Table, attribute: &str) -> cxm_relational::Result<ColumnData> {
        let data_type =
            table.schema().type_of(attribute).unwrap_or(DataType::Unknown);
        Ok(ColumnData {
            attr: AttrRef::new(table.name(), attribute),
            data_type,
            values: table.column_non_null(attribute)?,
        })
    }

    /// All columns of a table instance, in schema order.
    pub fn all_from_table(table: &Table) -> Vec<ColumnData> {
        table
            .schema()
            .attributes()
            .iter()
            .map(|a| {
                ColumnData::from_table(table, &a.name)
                    .expect("attribute comes from the table's own schema")
            })
            .collect()
    }

    /// Number of sample values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no sample values are available.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values rendered as text (what the textual matchers consume).
    pub fn texts(&self) -> Vec<String> {
        self.values.iter().map(|v| v.as_text()).collect()
    }

    /// The numeric interpretations of the values (non-numeric values skipped).
    pub fn numbers(&self) -> Vec<f64> {
        self.values.iter().filter_map(|v| v.as_f64()).collect()
    }

    /// True when the column is numeric either by declared type or because a
    /// clear majority (> 80 %) of its values parse as numbers.
    pub fn looks_numeric(&self) -> bool {
        if self.data_type.is_numeric() {
            return true;
        }
        if self.values.is_empty() {
            return false;
        }
        self.numbers().len() as f64 >= 0.8 * self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{tuple, Attribute, Table, TableSchema};

    fn table() -> Table {
        Table::with_rows(
            TableSchema::new(
                "inv",
                vec![Attribute::int("id"), Attribute::text("name"), Attribute::text("code")],
            ),
            vec![
                tuple![0, "leaves of grass", "0195128"],
                tuple![1, "the white album", "B002UAX"],
                tuple![2, "heart of darkness", "0486611"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_table_extracts_values_and_type() {
        let t = table();
        let col = ColumnData::from_table(&t, "name").unwrap();
        assert_eq!(col.attr, AttrRef::new("inv", "name"));
        assert_eq!(col.data_type, DataType::Text);
        assert_eq!(col.len(), 3);
        assert!(!col.is_empty());
        assert!(ColumnData::from_table(&t, "missing").is_err());
    }

    #[test]
    fn all_from_table_is_in_schema_order() {
        let cols = ColumnData::all_from_table(&table());
        let names: Vec<&str> = cols.iter().map(|c| c.attr.attribute.as_str()).collect();
        assert_eq!(names, vec!["id", "name", "code"]);
    }

    #[test]
    fn texts_and_numbers() {
        let t = table();
        let id = ColumnData::from_table(&t, "id").unwrap();
        assert_eq!(id.numbers(), vec![0.0, 1.0, 2.0]);
        assert!(id.looks_numeric());
        let name = ColumnData::from_table(&t, "name").unwrap();
        assert_eq!(name.texts()[0], "leaves of grass");
        assert!(!name.looks_numeric());
    }

    #[test]
    fn mostly_numeric_text_column_looks_numeric() {
        let t = Table::with_rows(
            TableSchema::new("t", vec![Attribute::text("mixed")]),
            vec![tuple!["10"], tuple!["20"], tuple!["30"], tuple!["40"], tuple!["oops"]],
        )
        .unwrap();
        let col = ColumnData::from_table(&t, "mixed").unwrap();
        assert!(col.looks_numeric());
    }

    #[test]
    fn empty_column_is_not_numeric() {
        let t = Table::new(TableSchema::new("t", vec![Attribute::text("x")]));
        let col = ColumnData::from_table(&t, "x").unwrap();
        assert!(col.is_empty());
        assert!(!col.looks_numeric());
    }
}
