//! Match triples and match lists.
//!
//! §2.1: "A match is a triple (RS.s, RT.t, c), where … c is a Boolean
//! condition. … A match is referred to as a standard match if c is a constant
//! expression 'true' and RS and RT are base tables; otherwise it is a context
//! match."

use std::fmt;

use cxm_relational::{AttrRef, Condition};

/// A (possibly contextual) match between a source attribute and a target
/// attribute, with its raw combined score and confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Source attribute `RS.s`. For contextual matches the table component
    /// names the inferred view; [`Match::base_table`] keeps the underlying base
    /// table.
    pub source: AttrRef,
    /// The base table of the source attribute (equals `source.table` for
    /// standard matches).
    pub base_table: String,
    /// Target attribute `RT.t`.
    pub target: AttrRef,
    /// The context condition `c` (`Condition::True` for standard matches).
    pub condition: Condition,
    /// Raw combined matcher score (average of applicable matchers' raw scores).
    pub score: f64,
    /// Confidence in `[0, 1]` after per-attribute normalization and combination.
    pub confidence: f64,
}

impl Match {
    /// Create a standard (unconditioned) match.
    pub fn standard(source: AttrRef, target: AttrRef, score: f64, confidence: f64) -> Match {
        let base_table = source.table.clone();
        Match { source, base_table, target, condition: Condition::True, score, confidence }
    }

    /// Derive a contextual version of this match: the source table is replaced
    /// by the named view and the condition recorded; score/confidence are the
    /// re-evaluated values supplied by the caller.
    pub fn with_context(
        &self,
        view_name: impl Into<String>,
        condition: Condition,
        score: f64,
        confidence: f64,
    ) -> Match {
        Match {
            source: AttrRef::new(view_name, self.source.attribute.clone()),
            base_table: self.base_table.clone(),
            target: self.target.clone(),
            condition,
            score,
            confidence,
        }
    }

    /// True when this is a standard match (condition is the constant `true`).
    pub fn is_standard(&self) -> bool {
        self.condition.is_true()
    }

    /// True when this is a context match.
    pub fn is_contextual(&self) -> bool {
        !self.is_standard()
    }

    /// A canonical, order-independent string form used by the evaluation
    /// harness to compare found match sets against ground truth.
    pub fn canonical(&self) -> String {
        format!(
            "{}.{} -> {} [{}]",
            self.base_table,
            self.source.attribute,
            self.target,
            self.condition.to_sql()
        )
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({} -> {}, {}) score={:.3} conf={:.3}",
            self.source, self.target, self.condition, self.score, self.confidence
        )
    }
}

/// A list of accepted matches — `L` in the paper.
pub type MatchList = Vec<Match>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_match_roundtrip() {
        let m =
            Match::standard(AttrRef::new("inv", "name"), AttrRef::new("book", "title"), 0.8, 0.9);
        assert!(m.is_standard());
        assert!(!m.is_contextual());
        assert_eq!(m.base_table, "inv");
        assert_eq!(m.canonical(), "inv.name -> book.title [true]");
        assert!(m.to_string().contains("inv.name"));
    }

    #[test]
    fn contextual_derivation_keeps_base_table() {
        let m =
            Match::standard(AttrRef::new("inv", "name"), AttrRef::new("book", "title"), 0.8, 0.9);
        let c = m.with_context("inv[type = 1]", Condition::eq("type", 1), 0.85, 0.97);
        assert!(c.is_contextual());
        assert_eq!(c.base_table, "inv");
        assert_eq!(c.source.table, "inv[type = 1]");
        assert_eq!(c.source.attribute, "name");
        assert_eq!(c.target, m.target);
        assert_eq!(c.canonical(), "inv.name -> book.title [type = 1]");
        assert!(c.confidence > m.confidence);
    }
}
