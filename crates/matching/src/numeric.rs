//! Numeric-distribution matcher.
//!
//! For numeric columns (prices, counts, grades) q-grams of digit strings are
//! meaningless; instead the matcher compares the two value distributions. The
//! score combines the overlap of the two ranges with the closeness of their
//! means and standard deviations — crude, but exactly the kind of "statistical
//! classifier" evidence the paper relies on for numeric attributes, and enough
//! to tell 10–100 prices apart from 0–5 grades.

use crate::column::ColumnData;
use crate::matcher::Matcher;

/// Matcher comparing numeric value distributions.
#[derive(Debug, Clone, Default)]
pub struct NumericMatcher;

impl NumericMatcher {
    /// Create a numeric matcher.
    pub fn new() -> Self {
        NumericMatcher
    }

    /// Overlap of two closed intervals as a fraction of their union length.
    fn range_overlap(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
        let inter = (a_max.min(b_max) - a_min.max(b_min)).max(0.0);
        let union = (a_max.max(b_max) - a_min.min(b_min)).max(0.0);
        if union == 0.0 {
            // Both ranges are single identical points (or degenerate): treat
            // identical points as full overlap, distinct points as none.
            if (a_min - b_min).abs() < f64::EPSILON {
                1.0
            } else {
                0.0
            }
        } else {
            inter / union
        }
    }

    /// Similarity of two scalars on a relative scale: `1 − |a−b| / max(|a|,|b|)`.
    fn relative_similarity(a: f64, b: f64) -> f64 {
        let scale = a.abs().max(b.abs());
        if scale == 0.0 {
            1.0
        } else {
            (1.0 - (a - b).abs() / scale).max(0.0)
        }
    }
}

impl Matcher for NumericMatcher {
    fn name(&self) -> &'static str {
        "numeric"
    }

    fn score(&self, source: &ColumnData, target: &ColumnData) -> f64 {
        let s = source.numeric_summary();
        let t = target.numeric_summary();
        match (s, t) {
            (Some((s_mean, s_std, s_min, s_max)), Some((t_mean, t_std, t_min, t_max))) => {
                let overlap = Self::range_overlap(s_min, s_max, t_min, t_max);
                let mean_sim = Self::relative_similarity(s_mean, t_mean);
                let std_sim = Self::relative_similarity(s_std, t_std);
                (0.5 * overlap + 0.3 * mean_sim + 0.2 * std_sim).clamp(0.0, 1.0)
            }
            _ => 0.0,
        }
    }

    fn applicable(&self, source: &ColumnData, target: &ColumnData) -> bool {
        source.looks_numeric() && target.looks_numeric()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{AttrRef, DataType, Value};

    fn col(name: &str, values: Vec<f64>) -> ColumnData<'static> {
        ColumnData::owned(
            AttrRef::new("t", name),
            DataType::Float,
            values.into_iter().map(Value::Float).collect(),
        )
    }

    #[test]
    fn identical_distributions_score_high() {
        let m = NumericMatcher::new();
        let a = col("price", vec![10.0, 12.0, 14.0, 16.0]);
        let b = col("cost", vec![10.0, 12.0, 14.0, 16.0]);
        assert!(m.score(&a, &b) > 0.95);
    }

    #[test]
    fn disjoint_ranges_score_low() {
        let m = NumericMatcher::new();
        let prices = col("price", vec![9.99, 15.57, 13.29, 24.99]);
        let grades = col("grade", vec![55.0, 61.0, 72.0, 88.0]);
        let same = m.score(&prices, &prices);
        let diff = m.score(&prices, &grades);
        assert!(same > diff);
        assert!(diff < 0.5, "diff={diff}");
    }

    #[test]
    fn similar_but_shifted_ranges_are_intermediate() {
        let m = NumericMatcher::new();
        let price = col("price", vec![10.0, 20.0, 30.0]);
        let sale = col("sale", vec![8.0, 17.0, 26.0]);
        let s = m.score(&price, &sale);
        assert!(s > 0.5 && s < 1.0, "s={s}");
    }

    #[test]
    fn empty_or_non_numeric_scores_zero() {
        let m = NumericMatcher::new();
        let a = col("x", vec![]);
        let b = col("y", vec![1.0]);
        assert_eq!(m.score(&a, &b), 0.0);
        let text =
            ColumnData::owned(AttrRef::new("t", "name"), DataType::Text, vec![Value::str("abc")]);
        assert_eq!(m.score(&text, &b), 0.0);
        assert!(!m.applicable(&text, &b));
        assert!(m.applicable(&b, &b));
    }

    #[test]
    fn range_overlap_cases() {
        assert!((NumericMatcher::range_overlap(0.0, 10.0, 5.0, 15.0) - (5.0 / 15.0)).abs() < 1e-12);
        assert_eq!(NumericMatcher::range_overlap(0.0, 1.0, 2.0, 3.0), 0.0);
        assert_eq!(NumericMatcher::range_overlap(5.0, 5.0, 5.0, 5.0), 1.0);
        assert_eq!(NumericMatcher::range_overlap(5.0, 5.0, 6.0, 6.0), 0.0);
    }

    #[test]
    fn relative_similarity_cases() {
        assert_eq!(NumericMatcher::relative_similarity(0.0, 0.0), 1.0);
        assert!((NumericMatcher::relative_similarity(10.0, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(NumericMatcher::relative_similarity(1.0, -10.0), 0.0);
    }
}
