//! Instance-based matchers over textual value profiles.
//!
//! Two matchers live here:
//!
//! * [`QGramMatcher`] — builds a 3-gram frequency profile of each column's
//!   values and scores the cosine similarity of the two profiles. This is the
//!   workhorse matcher: it recognizes that book titles look like book titles
//!   and catalogue codes look like catalogue codes, regardless of exact value
//!   overlap.
//! * [`ValueOverlapMatcher`] — Jaccard similarity of the *distinct value sets*,
//!   which captures columns that literally share values (e.g. `format` on both
//!   sides holding "hardcover"/"paperback").
//!
//! Both matchers score through the **interned flat kernels** of
//! [`crate::intern`] whenever the two columns share a
//! [`GramInterner`](crate::intern::GramInterner) (which every column does by
//! default): sorted `u32` id vectors,
//! merge-join inner loops, no string comparison on the hot path. The legacy
//! `BTreeMap`/`BTreeSet` kernels are retained behind the
//! [`QGramMatcher::legacy`] / [`ValueOverlapMatcher::legacy`] constructors
//! for equivalence tests and benchmarking, and
//! [`crate::intern::telemetry`] counts which generation served each score.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::column::ColumnData;
use crate::intern::telemetry as kernel_telemetry;
use crate::matcher::{Matcher, PairHint};

fn same_interner(a: &ColumnData, b: &ColumnData) -> bool {
    Arc::ptr_eq(a.interner(), b.interner())
}

/// Cosine-similarity matcher over q-gram frequency profiles.
#[derive(Debug, Clone)]
pub struct QGramMatcher {
    q: usize,
    use_legacy_kernel: bool,
}

impl QGramMatcher {
    /// Create a matcher using 3-grams (the paper's tokenization).
    pub fn new() -> Self {
        QGramMatcher { q: 3, use_legacy_kernel: false }
    }

    /// Create a matcher using q-grams of the given width.
    pub fn with_q(q: usize) -> Self {
        QGramMatcher { q: q.max(1), use_legacy_kernel: false }
    }

    /// The reference 3-gram matcher scoring through the legacy
    /// `BTreeMap<String, f64>` kernel (per-gram string comparisons). Kept
    /// for the kernel-equivalence property tests and the
    /// `interned_kernels` bench; agrees with the interned kernel to within
    /// 1e-12 (see [`crate::intern`] for why the rounding differs).
    pub fn legacy() -> Self {
        QGramMatcher { q: 3, use_legacy_kernel: true }
    }

    /// Whether this matcher is pinned to the legacy kernel.
    pub fn is_legacy(&self) -> bool {
        self.use_legacy_kernel
    }

    /// Build the normalized q-gram frequency profile of a column. For the
    /// default width (3) this is served from the column's memoized profile, so
    /// repeated scoring of the same column costs one build total.
    pub fn profile(&self, column: &ColumnData) -> std::sync::Arc<BTreeMap<String, f64>> {
        if self.q == 3 {
            return column.qgram3_profile();
        }
        std::sync::Arc::new(crate::column::build_qgram_profile(column.texts().into_iter(), self.q))
    }

    /// Cosine similarity of two normalized profiles.
    fn cosine(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        // Iterate over the smaller profile for the dot product.
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small
            .iter()
            .filter_map(|(g, &w)| large.get(g).map(|&w2| w * w2))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }
}

impl Default for QGramMatcher {
    fn default() -> Self {
        QGramMatcher::new()
    }
}

impl Matcher for QGramMatcher {
    fn name(&self) -> &'static str {
        "qgram"
    }

    fn score(&self, source: &ColumnData, target: &ColumnData) -> f64 {
        if self.q == 3 && !self.use_legacy_kernel && same_interner(source, target) {
            kernel_telemetry::record_interned_score();
            return source.qgram3_ids().cosine(&target.qgram3_ids());
        }
        kernel_telemetry::record_legacy_score();
        Self::cosine(&self.profile(source), &self.profile(target))
    }

    fn score_with_hint(&self, source: &ColumnData, target: &ColumnData, hint: PairHint) -> f64 {
        // Serve the score from the scan's exact TAAT dot — but only when the
        // exact path would have taken the interned kernel; on any other path
        // the hint's id space does not apply. The dot is bit-equal to the
        // merge-join's (exact integer products and sums, so the grouping
        // order is immaterial); dividing by the same memoized norms
        // reproduces the kernel's result bit for bit, and a zero dot skips
        // even the division, matching the kernel's early-out literal `0.0`.
        if let Some(dot) = hint.qgram_dot {
            if self.q == 3 && !self.use_legacy_kernel && same_interner(source, target) {
                kernel_telemetry::record_pruned_score();
                if dot == 0.0 {
                    return 0.0;
                }
                let (a, b) = (source.qgram3_ids(), target.qgram3_ids());
                return (dot / (a.norm() * b.norm())).clamp(0.0, 1.0);
            }
        }
        self.score(source, target)
    }

    fn applicable(&self, source: &ColumnData, target: &ColumnData) -> bool {
        // Purely numeric columns are better served by the numeric matcher;
        // comparing digit 3-grams of unrelated numbers produces noise.
        (!source.looks_numeric() || !target.looks_numeric())
            && !source.is_empty()
            && !target.is_empty()
    }
}

/// Jaccard similarity of distinct (case-normalized) value sets.
#[derive(Debug, Clone, Default)]
pub struct ValueOverlapMatcher {
    use_legacy_kernel: bool,
}

impl ValueOverlapMatcher {
    /// Create a value-overlap matcher.
    pub fn new() -> Self {
        ValueOverlapMatcher { use_legacy_kernel: false }
    }

    /// The reference matcher scoring through the legacy
    /// `BTreeSet<String>` kernel. Bit-identical to the interned kernel
    /// (both divide the same two intersection/union counts); kept for the
    /// equivalence property tests and the `interned_kernels` bench.
    pub fn legacy() -> Self {
        ValueOverlapMatcher { use_legacy_kernel: true }
    }

    /// Whether this matcher is pinned to the legacy kernel.
    pub fn is_legacy(&self) -> bool {
        self.use_legacy_kernel
    }
}

impl Matcher for ValueOverlapMatcher {
    fn name(&self) -> &'static str {
        "overlap"
    }

    fn score(&self, source: &ColumnData, target: &ColumnData) -> f64 {
        if !self.use_legacy_kernel && same_interner(source, target) {
            kernel_telemetry::record_interned_score();
            return source.value_ids().jaccard(&target.value_ids());
        }
        kernel_telemetry::record_legacy_score();
        let a = source.value_set();
        let b = target.value_set();
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        inter / union
    }

    fn score_with_hint(&self, source: &ColumnData, target: &ColumnData, hint: PairHint) -> f64 {
        // Disjoint interned sets make the exact kernel return 0/union == +0.0;
        // substitute the same bit pattern without walking the id vectors.
        if hint.overlap_zero && !self.use_legacy_kernel && same_interner(source, target) {
            kernel_telemetry::record_pruned_score();
            return 0.0;
        }
        self.score(source, target)
    }

    fn applicable(&self, source: &ColumnData, target: &ColumnData) -> bool {
        !source.is_empty() && !target.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{AttrRef, DataType, Value};

    fn col(name: &str, values: Vec<&str>) -> ColumnData<'static> {
        ColumnData::owned(
            AttrRef::new("t", name),
            DataType::Text,
            values.into_iter().map(Value::str).collect(),
        )
    }

    fn num_col(name: &str, values: Vec<f64>) -> ColumnData<'static> {
        ColumnData::owned(
            AttrRef::new("t", name),
            DataType::Float,
            values.into_iter().map(Value::Float).collect(),
        )
    }

    #[test]
    fn qgram_identical_columns_score_one() {
        let m = QGramMatcher::new();
        let a = col("x", vec!["hardcover", "paperback"]);
        let b = col("y", vec!["hardcover", "paperback"]);
        assert!((m.score(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qgram_similar_beats_dissimilar() {
        let m = QGramMatcher::new();
        let titles_a = col("name", vec!["leaves of grass", "heart of darkness", "wasteland"]);
        let titles_b = col("title", vec!["the historian", "lance armstrong's war", "middlemarch"]);
        let codes = col("isbn", vec!["0316011770", "0486400611", "0393995001"]);
        let t_vs_t = m.score(&titles_a, &titles_b);
        let t_vs_c = m.score(&titles_a, &codes);
        assert!(t_vs_t > t_vs_c, "titles-vs-titles {t_vs_t} should beat titles-vs-codes {t_vs_c}");
    }

    #[test]
    fn qgram_empty_columns_score_zero() {
        let m = QGramMatcher::new();
        let a = col("x", vec![]);
        let b = col("y", vec!["something"]);
        assert_eq!(m.score(&a, &b), 0.0);
        assert!(!m.applicable(&a, &b));
    }

    #[test]
    fn qgram_not_applicable_to_numeric_pairs() {
        let m = QGramMatcher::new();
        let a = num_col("price", vec![9.99, 12.5]);
        let b = num_col("sale", vec![7.99, 10.0]);
        assert!(!m.applicable(&a, &b));
        // Mixed numeric/text pair is still applicable.
        let t = col("format", vec!["hardcover"]);
        assert!(m.applicable(&a, &t));
    }

    #[test]
    fn qgram_profile_is_normalized() {
        let m = QGramMatcher::new();
        let p = m.profile(&col("x", vec!["abc", "abd"]));
        let norm: f64 = p.values().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_counts_shared_distinct_values() {
        let m = ValueOverlapMatcher::new();
        let a = col("format", vec!["hardcover", "paperback", "paperback"]);
        let b = col("format", vec!["Hardcover", "audio cd"]);
        // distinct a = {hardcover, paperback}, b = {hardcover, audio cd}
        // intersection 1, union 3.
        assert!((m.score(&a, &b) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_disjoint_is_zero_identical_is_one() {
        let m = ValueOverlapMatcher::new();
        let a = col("x", vec!["a", "b"]);
        let b = col("y", vec!["c", "d"]);
        assert_eq!(m.score(&a, &b), 0.0);
        assert_eq!(m.score(&a, &a), 1.0);
        let empty = col("z", vec![]);
        assert_eq!(m.score(&a, &empty), 0.0);
        assert!(!m.applicable(&a, &empty));
    }

    #[test]
    fn interned_and_legacy_kernels_agree() {
        let fast = QGramMatcher::new();
        let slow = QGramMatcher::legacy();
        assert!(!fast.is_legacy() && slow.is_legacy());
        let a = col("name", vec!["leaves of grass", "heart of darkness", "wasteland"]);
        let b = col("title", vec!["the historian", "middlemarch", "heart of darkness"]);
        assert!((fast.score(&a, &b) - slow.score(&a, &b)).abs() < 1e-12);
        // Jaccard is bit-identical between kernels.
        let fo = ValueOverlapMatcher::new();
        let so = ValueOverlapMatcher::legacy();
        assert!(!fo.is_legacy() && so.is_legacy());
        assert_eq!(fo.score(&a, &b).to_bits(), so.score(&a, &b).to_bits());
    }

    #[test]
    fn mismatched_interners_fall_back_to_the_legacy_kernel() {
        use crate::intern::{telemetry, GramInterner};
        let private = std::sync::Arc::new(GramInterner::new());
        let a = col("x", vec!["hardcover", "paperback"]);
        let b = col("y", vec!["hardcover", "paperback"]).with_interner(private);
        let m = QGramMatcher::new();
        let legacy_before = telemetry::legacy_kernel_scores();
        let score = m.score(&a, &b);
        assert!((score - 1.0).abs() < 1e-9, "fallback must still score correctly");
        assert!(telemetry::legacy_kernel_scores() > legacy_before);
        // Same interner on both sides takes the interned kernel.
        let c = col("z", vec!["hardcover", "paperback"]);
        let interned_before = telemetry::interned_kernel_scores();
        assert!((m.score(&a, &c) - 1.0).abs() < 1e-9);
        assert!(telemetry::interned_kernel_scores() > interned_before);
    }

    #[test]
    fn hinted_scores_are_bit_identical_to_exact_zeros() {
        use crate::intern::telemetry;
        let qgram = QGramMatcher::new();
        let overlap = ValueOverlapMatcher::new();
        let a = col("x", vec!["hardcover", "paperback"]);
        let b = col("y", vec!["0316011770", "0486400611"]);
        // The pair shares no gram and no value: exact kernels return 0.0.
        assert_eq!(qgram.score(&a, &b).to_bits(), 0.0f64.to_bits());
        assert_eq!(overlap.score(&a, &b).to_bits(), 0.0f64.to_bits());
        let hint = PairHint { qgram_dot: Some(0.0), overlap_zero: true };
        let pruned_before = telemetry::pruned_kernel_scores();
        assert_eq!(qgram.score_with_hint(&a, &b, hint).to_bits(), 0.0f64.to_bits());
        assert_eq!(overlap.score_with_hint(&a, &b, hint).to_bits(), 0.0f64.to_bits());
        assert_eq!(telemetry::pruned_kernel_scores() - pruned_before, 2);
        // A hint that proves nothing falls through to the exact kernels.
        let c = col("z", vec!["hardcover first edition"]);
        assert_eq!(
            qgram.score_with_hint(&a, &c, PairHint::default()).to_bits(),
            qgram.score(&a, &c).to_bits()
        );
        // Legacy matchers never consult hints (different kernel, different
        // rounding — the proof does not transfer).
        let legacy = QGramMatcher::legacy();
        let exact = legacy.score(&a, &b);
        assert_eq!(legacy.score_with_hint(&a, &b, hint).to_bits(), exact.to_bits());
    }

    #[test]
    fn custom_q_width() {
        let m = QGramMatcher::with_q(2);
        let a = col("x", vec!["ab"]);
        assert!(m.profile(&a).contains_key("ab"));
        // Width is clamped to at least 1.
        let m0 = QGramMatcher::with_q(0);
        assert!(!m0.profile(&a).is_empty());
    }
}
