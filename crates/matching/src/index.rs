//! An incrementally-maintained **inverted gram index** over a target column
//! batch, with admissible zero-overlap pruning for the interned instance
//! kernels.
//!
//! The standard matcher scores every source×target column pair, so a wide
//! catalog pays O(S·T) merge-joins even though most pairs share no gram at
//! all (a merge-join over disjoint sorted vectors still walks both vectors).
//! This module inverts the target side once: for every interned 3-gram id,
//! the **posting list** of target columns containing it (with raw counts),
//! and for every interned distinct-value id, the posting list of target
//! columns holding that value. One term-at-a-time (TAAT) pass over a source
//! column's profile then touches only the postings of grams the source
//! actually has — cost proportional to the number of (source gram, target
//! column) coincidences, not to S·T — and yields, per target column, the
//! **exact** q-gram dot product and distinct-value intersection size.
//!
//! ## Admissibility (why pruning cannot change any output bit)
//!
//! *Cosine.* [`crate::InternedProfile::cosine`] computes
//! `dot(a, b) / (‖a‖·‖b‖)` where every profile entry is a small exact
//! integer count: each product and partial sum is an integer far below 2⁵³,
//! so floating-point addition is **exact and order-independent**. The TAAT
//! accumulation in [`GramIndex::scan`] adds exactly the same set of
//! `count·count` products (grouped by gram instead of by pair), hence
//! reproduces the merge-join dot product *bit for bit*. The derived
//! `dot / (‖a‖·‖b‖)` is therefore not an estimate but the **exact cosine**
//! — trivially an admissible upper bound at any threshold τ. Because the
//! dot is bit-exact, the hint can go beyond pruning: at `dot == 0` the
//! scored pair skips the kernel and substitutes the literal `0.0` of the
//! kernel's early-out (see [`crate::InternedProfile::cosine`]); at
//! `dot > 0` the hinted matcher divides the scan's dot by the same two
//! memoized norms the kernel would use — the identical quotient of
//! identical operands — so *every* covered pair is served from the scan,
//! and no rounding question ever arises.
//!
//! *Jaccard.* The value-id posting pass counts the exact intersection size.
//! [`crate::InternedValueSet::jaccard`] returns `inter / union`; at
//! `inter == 0` that is `0.0 / union == +0.0`, bit-identical to the pruned
//! substitute. Empty columns are never indexed and never pruned (the
//! matchers' applicability gates already skip them).
//!
//! *Ensemble.* The ensemble combines per-matcher raw scores into
//! distributions, confidences and weighted means. Pruning replaces
//! individual raw scores with the bit-identical values the exact kernels
//! would have produced and leaves every applicability decision untouched, so
//! the raw score vectors — and everything derived from them downstream
//! (distribution fits, confidences, combined scores, accepted sets, selected
//! contextual matches) — are byte-identical to the unpruned run. The
//! property tests in `tests/tests/property_based.rs` pin both halves: bound
//! admissibility and whole-output equivalence.
//!
//! ## Incremental maintenance
//!
//! Posting lists are `Arc`-shared between index generations.
//! [`GramIndex::update_from`] compares per-slot column fingerprints (the
//! same column-granular warm key the target catalog uses) and rebuilds only
//! the posting lists that mention a changed column — every untouched list is
//! carried forward as the same allocation, which
//! [`GramIndex::postings_reused`] / [`GramIndex::postings_rebuilt`] make
//! observable. A batch whose attribute sequence changed (table added,
//! dropped or reordered) falls back to a full rebuild: slot ids are
//! positional, and remapping every posting would cost as much as rebuilding.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use cxm_relational::AttrRef;

/// Process-global counters of index-driven candidate generation, following
/// the snapshot/delta pattern of [`crate::intern::telemetry`]: monotonic,
/// never reset; per-run figures are differences of two reads (see
/// [`crate::intern::telemetry::KernelCounters`] for the kernel-side handle).
pub mod telemetry {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static PAIRS_SCANNED: AtomicUsize = AtomicUsize::new(0);
    static PAIRS_SURVIVING: AtomicUsize = AtomicUsize::new(0);

    /// Candidate pairs covered by TAAT scans since process start.
    pub fn candidate_pairs_scanned() -> usize {
        PAIRS_SCANNED.load(Ordering::Relaxed)
    }

    /// Scanned pairs that shared at least one gram or value and therefore
    /// required exact re-scoring.
    pub fn candidate_pairs_surviving() -> usize {
        PAIRS_SURVIVING.load(Ordering::Relaxed)
    }

    /// Record one scan's coverage. Public so the scoring layers that apply a
    /// [`super::CandidateScan`] across a pair grid (in this crate and in
    /// `cxm-core`) can attribute the counts; not meant for other callers.
    pub fn record_scan(scanned: usize, surviving: usize) {
        PAIRS_SCANNED.fetch_add(scanned, Ordering::Relaxed);
        PAIRS_SURVIVING.fetch_add(surviving, Ordering::Relaxed);
    }
}

use crate::column::ColumnData;
use crate::intern::{InternedProfile, InternedValueSet};
use crate::matcher::PairHint;

/// One indexed target column: its identity plus the interned artifacts whose
/// entries were posted. Slots are positional — slot `i` describes the `i`-th
/// column of the batch the index was built from.
#[derive(Debug, Clone)]
struct Slot {
    attr: AttrRef,
    fingerprint: Option<u64>,
    /// `None` for empty columns, which are never profiled (forcing a profile
    /// the matchers would never build would skew the build accounting the
    /// equivalence tests pin) and never pruned.
    profile: Option<Arc<InternedProfile>>,
    values: Option<Arc<InternedValueSet>>,
}

/// The inverted index of one target column batch: gram id → id-sorted posting
/// list of `(slot, raw count)`, value id → id-sorted posting list of slots.
///
/// Consumers validate the index against the batch they score
/// ([`GramIndex::matches_batch`]) and against the source column's interner
/// ([`GramIndex::interner_token`]) before trusting any hint; on mismatch they
/// simply score unhinted, which is always correct.
#[derive(Debug)]
pub struct GramIndex {
    /// [`crate::GramInterner::token`] of the interner every indexed column is
    /// bound to; hints only apply to source columns sharing it.
    interner_token: u64,
    slots: Vec<Slot>,
    slot_by_attr: HashMap<AttrRef, usize>,
    /// 3-gram id → `(slot, raw count)` entries, ascending by slot.
    gram_postings: HashMap<u32, Arc<Vec<(u32, f64)>>>,
    /// Distinct-value id → slots containing the value, ascending.
    value_postings: HashMap<u32, Arc<Vec<u32>>>,
    /// Posting lists carried from the previous generation as the same
    /// allocation (0 for a cold build).
    postings_reused: usize,
    /// Posting lists (re)built by this generation.
    postings_rebuilt: usize,
}

impl GramIndex {
    /// Build the index of a column batch from scratch. Forces the interned
    /// q-gram profile and value set of every **non-empty** column (memoized
    /// on the columns, so a warm batch posts without rebuilding anything).
    pub fn build(columns: &[ColumnData]) -> GramIndex {
        let token = columns.first().map(|c| c.interner().token()).unwrap_or(0);
        debug_assert!(
            columns.iter().all(|c| c.interner().token() == token),
            "an index spans exactly one interner id space"
        );
        // Ordered maps: `into_iter` below feeds the posting tables, and the
        // reused/rebuilt accounting compares generations — keep the build
        // order independent of hasher state (D001).
        let mut gram: BTreeMap<u32, Vec<(u32, f64)>> = BTreeMap::new();
        let mut value: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut slots = Vec::with_capacity(columns.len());
        for (i, column) in columns.iter().enumerate() {
            let slot = i as u32;
            let (profile, values) = if column.is_empty() {
                (None, None)
            } else {
                let profile = column.qgram3_ids();
                let values = column.value_ids();
                for &(g, count) in profile.entries() {
                    gram.entry(g).or_default().push((slot, count));
                }
                for &id in values.ids() {
                    value.entry(id).or_default().push(slot);
                }
                (Some(profile), Some(values))
            };
            slots.push(Slot {
                attr: column.attr.clone(),
                fingerprint: column.fingerprint(),
                profile,
                values,
            });
        }
        let rebuilt = gram.len() + value.len();
        GramIndex {
            interner_token: token,
            slot_by_attr: slots.iter().enumerate().map(|(i, s)| (s.attr.clone(), i)).collect(),
            slots,
            gram_postings: gram.into_iter().map(|(k, v)| (k, Arc::new(v))).collect(),
            value_postings: value.into_iter().map(|(k, v)| (k, Arc::new(v))).collect(),
            postings_reused: 0,
            postings_rebuilt: rebuilt,
        }
    }

    /// Derive the index of the next batch generation from `prev`, rebuilding
    /// only the posting lists that mention a column whose fingerprint
    /// changed; every other list is carried forward `Arc`-shared. Falls back
    /// to [`GramIndex::build`] when the attribute sequence or interner
    /// changed (slot ids are positional). Columns without fingerprints are
    /// conservatively treated as changed.
    pub fn update_from(prev: &GramIndex, columns: &[ColumnData]) -> GramIndex {
        if !prev.same_shape(columns) {
            return GramIndex::build(columns);
        }
        let changed: BTreeSet<usize> = columns
            .iter()
            .enumerate()
            .filter(|(i, c)| {
                let carried = prev.slots[*i].fingerprint.is_some()
                    && prev.slots[*i].fingerprint == c.fingerprint();
                !carried
            })
            .map(|(i, _)| i)
            .collect();
        let total = prev.gram_postings.len() + prev.value_postings.len();
        if changed.is_empty() {
            return GramIndex {
                interner_token: prev.interner_token,
                slots: prev.slots.clone(),
                slot_by_attr: prev.slot_by_attr.clone(),
                gram_postings: prev.gram_postings.clone(),
                value_postings: prev.value_postings.clone(),
                postings_reused: total,
                postings_rebuilt: 0,
            };
        }

        // New slots: changed columns re-post their (possibly new) artifacts.
        let mut slots = prev.slots.clone();
        let mut touched_grams: BTreeSet<u32> = BTreeSet::new();
        let mut touched_values: BTreeSet<u32> = BTreeSet::new();
        for &i in &changed {
            if let Some(profile) = &prev.slots[i].profile {
                touched_grams.extend(profile.entries().iter().map(|&(g, _)| g));
            }
            if let Some(values) = &prev.slots[i].values {
                touched_values.extend(values.ids().iter().copied());
            }
            let column = &columns[i];
            let (profile, values) = if column.is_empty() {
                (None, None)
            } else {
                let profile = column.qgram3_ids();
                let values = column.value_ids();
                touched_grams.extend(profile.entries().iter().map(|&(g, _)| g));
                touched_values.extend(values.ids().iter().copied());
                (Some(profile), Some(values))
            };
            slots[i] = Slot {
                attr: column.attr.clone(),
                fingerprint: column.fingerprint(),
                profile,
                values,
            };
        }

        // Copy-on-write: clone the Arc maps, then rebuild only touched lists
        // (old changed-slot entries dropped, new ones merged in slot order).
        let mut gram_postings = prev.gram_postings.clone();
        for &g in &touched_grams {
            let mut list: Vec<(u32, f64)> = gram_postings
                .remove(&g)
                .map(|old| {
                    old.iter().filter(|(s, _)| !changed.contains(&(*s as usize))).copied().collect()
                })
                .unwrap_or_default();
            for &i in &changed {
                if let Some(profile) = &slots[i].profile {
                    if let Ok(pos) = profile.entries().binary_search_by_key(&g, |&(id, _)| id) {
                        list.push((i as u32, profile.entries()[pos].1));
                    }
                }
            }
            if !list.is_empty() {
                list.sort_unstable_by_key(|&(s, _)| s);
                gram_postings.insert(g, Arc::new(list));
            }
        }
        let mut value_postings = prev.value_postings.clone();
        for &id in &touched_values {
            let mut list: Vec<u32> = value_postings
                .remove(&id)
                .map(|old| {
                    old.iter().filter(|&&s| !changed.contains(&(s as usize))).copied().collect()
                })
                .unwrap_or_default();
            for &i in &changed {
                if let Some(values) = &slots[i].values {
                    if values.ids().binary_search(&id).is_ok() {
                        list.push(i as u32);
                    }
                }
            }
            if !list.is_empty() {
                list.sort_unstable();
                value_postings.insert(id, Arc::new(list));
            }
        }

        let rebuilt = touched_grams.iter().filter(|g| gram_postings.contains_key(g)).count()
            + touched_values.iter().filter(|v| value_postings.contains_key(v)).count();
        let reused = (gram_postings.len() + value_postings.len()) - rebuilt;
        GramIndex {
            interner_token: prev.interner_token,
            slot_by_attr: prev.slot_by_attr.clone(),
            slots,
            gram_postings,
            value_postings,
            postings_reused: reused,
            postings_rebuilt: rebuilt,
        }
    }

    /// Identity token of the interner the indexed artifacts live in.
    pub fn interner_token(&self) -> u64 {
        self.interner_token
    }

    /// Number of indexed columns (slots).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no column is indexed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total live posting lists (gram + value).
    pub fn posting_lists(&self) -> usize {
        self.gram_postings.len() + self.value_postings.len()
    }

    /// Posting lists carried `Arc`-shared from the previous generation.
    pub fn postings_reused(&self) -> usize {
        self.postings_reused
    }

    /// Posting lists (re)built by this generation.
    pub fn postings_rebuilt(&self) -> usize {
        self.postings_rebuilt
    }

    /// The slot of a target attribute, if indexed.
    pub fn slot_of(&self, attr: &AttrRef) -> Option<usize> {
        self.slot_by_attr.get(attr).copied()
    }

    /// One gram's posting list (test hook for the `Arc`-sharing contract).
    pub fn gram_posting(&self, gram: u32) -> Option<&Arc<Vec<(u32, f64)>>> {
        self.gram_postings.get(&gram)
    }

    /// True when this index's slot layout matches `columns` positionally —
    /// same length, same attribute sequence, same interner. This is the
    /// precondition for an incremental [`GramIndex::update_from`] (slot ids
    /// are positional); on a mismatch the update falls back to a full
    /// rebuild.
    pub fn same_shape(&self, columns: &[ColumnData]) -> bool {
        columns.first().map(|c| c.interner().token()).unwrap_or(0) == self.interner_token
            && self.slots.len() == columns.len()
            && self.slots.iter().zip(columns).all(|(s, c)| s.attr == c.attr)
    }

    /// Number of `columns` whose posting contributions an incremental
    /// [`GramIndex::update_from`] would carry forward unchanged (same slot,
    /// same per-column content fingerprint). Callers must have checked
    /// [`GramIndex::same_shape`] first; this is the column-granular reuse
    /// prediction a catalog update can surface *before* any request has
    /// forced the next generation's (lazy) build.
    pub fn columns_carried(&self, columns: &[ColumnData]) -> usize {
        debug_assert!(self.same_shape(columns));
        self.slots
            .iter()
            .zip(columns)
            .filter(|(s, c)| s.fingerprint.is_some() && s.fingerprint == c.fingerprint())
            .count()
    }

    /// True when slot `i` of this index describes `columns[i]` for every `i`
    /// — same attribute, same content fingerprint, same interner. Callers
    /// must still pass the batch the index was actually built over (the
    /// check pins shape and identity, not value bags; fingerprint-less
    /// ad-hoc columns compare equal on `None`).
    pub fn matches_batch(&self, columns: &[ColumnData]) -> bool {
        self.slots.len() == columns.len()
            && self.slots.iter().zip(columns).all(|(s, c)| {
                s.attr == c.attr
                    && s.fingerprint == c.fingerprint()
                    && c.interner().token() == self.interner_token
            })
    }

    /// One TAAT pass of a source column's artifacts over the postings: per
    /// slot, the **exact** q-gram dot product and distinct-value intersection
    /// size (see the module docs for why the dot is bit-exact). Cost is the
    /// number of posting coincidences, independent of how many indexed
    /// columns share nothing with the source.
    pub fn scan(&self, profile: &InternedProfile, values: &InternedValueSet) -> CandidateScan {
        let mut qgram_dots = vec![0.0; self.slots.len()];
        for &(g, count) in profile.entries() {
            if let Some(list) = self.gram_postings.get(&g) {
                for &(slot, target_count) in list.iter() {
                    qgram_dots[slot as usize] += count * target_count;
                }
            }
        }
        let mut value_overlaps = vec![0usize; self.slots.len()];
        for id in values.ids() {
            if let Some(list) = self.value_postings.get(id) {
                for &slot in list.iter() {
                    value_overlaps[slot as usize] += 1;
                }
            }
        }
        CandidateScan { qgram_dots, value_overlaps }
    }

    /// The cosine upper bound of `profile` against every slot — since the
    /// TAAT dot is exact, this *is* the exact cosine (and hence admissible at
    /// any threshold); slots without a profile bound at 0. Exposed for the
    /// admissibility property tests.
    pub fn cosine_upper_bounds(&self, profile: &InternedProfile) -> Vec<f64> {
        let scan = self.scan(profile, &EMPTY_VALUES);
        self.slots
            .iter()
            .enumerate()
            .map(|(i, slot)| match &slot.profile {
                Some(target) if !target.is_empty() && !profile.is_empty() => {
                    let dot = scan.qgram_dots[i];
                    if dot == 0.0 {
                        0.0
                    } else {
                        (dot / (profile.norm() * target.norm())).clamp(0.0, 1.0)
                    }
                }
                _ => 0.0,
            })
            .collect()
    }
}

static EMPTY_VALUES: InternedValueSet = InternedValueSet::empty();

/// The per-slot result of one [`GramIndex::scan`]: exact dot products and
/// intersection sizes, queried per pair as a [`PairHint`].
#[derive(Debug, Clone)]
pub struct CandidateScan {
    qgram_dots: Vec<f64>,
    value_overlaps: Vec<usize>,
}

impl CandidateScan {
    /// The hint for one slot: the pair's exact TAAT dot product (zero means
    /// prunable) and whether the value sets are proven disjoint.
    pub fn hint(&self, slot: usize) -> PairHint {
        PairHint {
            qgram_dot: Some(self.qgram_dots[slot]),
            overlap_zero: self.value_overlaps[slot] == 0,
        }
    }

    /// Slots sharing at least one gram or one value with the scanned source
    /// column — the candidates an exact re-score cannot skip.
    pub fn surviving(&self) -> usize {
        self.qgram_dots
            .iter()
            .zip(&self.value_overlaps)
            .filter(|&(&dot, &inter)| dot != 0.0 || inter != 0)
            .count()
    }

    /// Number of scanned slots.
    pub fn len(&self) -> usize {
        self.qgram_dots.len()
    }

    /// True when the scan covered no slots.
    pub fn is_empty(&self) -> bool {
        self.qgram_dots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{tuple, Attribute, Table, TableSchema};

    fn batch(tables: &[(&str, &[&str])]) -> (Vec<Table>, Vec<ColumnData<'static>>) {
        let tables: Vec<Table> = tables
            .iter()
            .map(|(name, values)| {
                Table::with_rows(
                    TableSchema::new(*name, vec![Attribute::text("v")]),
                    values.iter().map(|v| tuple![*v]).collect(),
                )
                .unwrap()
            })
            .collect();
        let columns = tables
            .iter()
            .map(|t| {
                let fp = t.column_fingerprint("v").unwrap();
                ColumnData::shared_from_table(t, "v").unwrap().with_fingerprint(fp)
            })
            .collect();
        (tables, columns)
    }

    #[test]
    fn scan_reproduces_exact_cosine_dots() {
        let (_tables, columns) = batch(&[
            ("a", &["hardcover", "paperback"]),
            ("b", &["hardcover first edition"]),
            ("c", &["0195128881", "0486611817"]),
        ]);
        let index = GramIndex::build(&columns);
        assert_eq!(index.len(), 3);
        let source = ColumnData::owned(
            AttrRef::new("s", "x"),
            cxm_relational::DataType::Text,
            vec![cxm_relational::Value::str("hardcover reprint")],
        );
        let profile = source.qgram3_ids();
        let bounds = index.cosine_upper_bounds(&profile);
        for (i, column) in columns.iter().enumerate() {
            let exact = profile.cosine(&column.qgram3_ids());
            assert_eq!(bounds[i].to_bits(), exact.to_bits(), "slot {i} bound must BE the cosine");
        }
        let scan = index.scan(&profile, &source.value_ids());
        // "hardcover reprint" shares grams with slots 0 and 1, nothing with
        // the ISBN column.
        assert!(!scan.hint(0).qgram_zero());
        assert!(!scan.hint(1).qgram_zero());
        assert!(scan.hint(2).qgram_zero());
        assert_eq!(scan.surviving(), 2);
        assert_eq!(scan.len(), 3);
        assert!(!scan.is_empty());
    }

    #[test]
    fn value_postings_prove_disjoint_sets() {
        let (_tables, columns) =
            batch(&[("a", &["hardcover", "paperback"]), ("b", &["audio cd", "paperback"])]);
        let index = GramIndex::build(&columns);
        let source = ColumnData::owned(
            AttrRef::new("s", "x"),
            cxm_relational::DataType::Text,
            vec![cxm_relational::Value::str("Paperback")],
        );
        let scan = index.scan(&source.qgram3_ids(), &source.value_ids());
        // Case-normalized "paperback" is in both columns' value sets.
        assert!(!scan.hint(0).overlap_zero);
        assert!(!scan.hint(1).overlap_zero);
        let other = ColumnData::owned(
            AttrRef::new("s", "y"),
            cxm_relational::DataType::Text,
            vec![cxm_relational::Value::str("vinyl")],
        );
        let scan = index.scan(&other.qgram3_ids(), &other.value_ids());
        assert!(scan.hint(0).overlap_zero && scan.hint(1).overlap_zero);
    }

    #[test]
    fn update_shares_untouched_posting_lists() {
        let (_tables, columns) = batch(&[
            ("a", &["hardcover", "paperback"]),
            ("b", &["audio cd"]),
            ("c", &["columbia records"]),
        ]);
        let index = GramIndex::build(&columns);
        assert_eq!(index.postings_reused(), 0);
        assert_eq!(index.postings_rebuilt(), index.posting_lists());

        // Replace only column b's content.
        let (_t2, mut next) = batch(&[
            ("a", &["hardcover", "paperback"]),
            ("b", &["remastered audio cd"]),
            ("c", &["columbia records"]),
        ]);
        // Carry a and c (same fingerprints by content), b differs.
        let updated = GramIndex::update_from(&index, &next);
        assert!(updated.postings_reused() > 0, "untouched lists must carry");
        assert!(updated.postings_rebuilt() > 0, "b's lists must rebuild");
        // A gram unique to column a keeps its exact allocation.
        let interner = columns[0].interner();
        let pap = interner.lookup("pap").expect("'pap' was interned by column a");
        let (before, after) =
            (index.gram_posting(pap).unwrap(), updated.gram_posting(pap).unwrap());
        assert!(Arc::ptr_eq(before, after), "posting list of an untouched gram is shared");
        // Scans over the updated index see the new content.
        let probe = ColumnData::owned(
            AttrRef::new("s", "x"),
            cxm_relational::DataType::Text,
            vec![cxm_relational::Value::str("remastered")],
        );
        let scan = updated.scan(&probe.qgram3_ids(), &probe.value_ids());
        assert!(!scan.hint(1).qgram_zero());
        assert!(scan.hint(2).qgram_zero());

        // An unchanged batch carries everything.
        let again = GramIndex::update_from(&updated, &next);
        assert_eq!(again.postings_rebuilt(), 0);
        assert_eq!(again.postings_reused(), updated.posting_lists());

        // Shape changes (a dropped column) fall back to a full rebuild.
        next.pop();
        let rebuilt = GramIndex::update_from(&updated, &next);
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt.postings_reused(), 0);
    }

    #[test]
    fn matches_batch_guards_shape_fingerprints_and_interner() {
        let (_tables, columns) = batch(&[("a", &["hardcover"]), ("b", &["audio cd"])]);
        let index = GramIndex::build(&columns);
        assert!(index.matches_batch(&columns));
        assert!(!index.matches_batch(&columns[..1]));
        let (_t2, edited) = batch(&[("a", &["hardcover"]), ("b", &["vinyl"])]);
        assert!(!index.matches_batch(&edited), "changed fingerprint must fail the guard");
        assert_eq!(index.slot_of(&AttrRef::new("b", "v")), Some(1));
        assert_eq!(index.slot_of(&AttrRef::new("zz", "v")), None);
        assert_eq!(index.interner_token(), columns[0].interner().token());
        assert!(!index.is_empty());
    }

    #[test]
    fn empty_columns_are_slotted_but_never_posted() {
        let empty =
            ColumnData::owned(AttrRef::new("e", "v"), cxm_relational::DataType::Text, vec![]);
        let full = ColumnData::owned(
            AttrRef::new("f", "v"),
            cxm_relational::DataType::Text,
            vec![cxm_relational::Value::str("hardcover")],
        );
        let before = crate::column::telemetry::qgram_profile_builds();
        let index = GramIndex::build(&[empty, full]);
        assert_eq!(index.len(), 2);
        assert_eq!(
            crate::column::telemetry::qgram_profile_builds() - before,
            1,
            "only the non-empty column is profiled"
        );
        let probe = ColumnData::owned(
            AttrRef::new("s", "x"),
            cxm_relational::DataType::Text,
            vec![cxm_relational::Value::str("hardcover")],
        );
        let scan = index.scan(&probe.qgram3_ids(), &probe.value_ids());
        assert!(scan.hint(0).qgram_zero() && scan.hint(0).overlap_zero);
        assert!(!scan.hint(1).qgram_zero());
        let bounds = index.cosine_upper_bounds(&probe.qgram3_ids());
        assert_eq!(bounds[0], 0.0);
    }
}
