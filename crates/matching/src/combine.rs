//! The matcher ensemble and confidence combination.
//!
//! §2.3: "our base schema matching system employs a variety of matching
//! algorithms, referred to as matchers, to compute similarity scores between a
//! pair of attributes. These scores are weighted … For a particular pair of
//! attributes a and b, the confidences of all matchers are combined to compute
//! the confidence of the match."

use crate::column::ColumnData;
use crate::instance::{QGramMatcher, ValueOverlapMatcher};
use crate::matcher::{Matcher, PairHint};
use crate::name::NameMatcher;
use crate::numeric::NumericMatcher;

/// A weighted collection of matchers.
pub struct MatcherEnsemble {
    matchers: Vec<(Box<dyn Matcher>, f64)>,
}

impl MatcherEnsemble {
    /// The default ensemble: name, q-gram instance, value overlap and numeric
    /// matchers. The instance matchers carry the most weight because the
    /// paper's pipeline is explicitly instance-based.
    pub fn standard() -> Self {
        MatcherEnsemble {
            matchers: vec![
                (Box::new(NameMatcher::new()) as Box<dyn Matcher>, 0.75),
                (Box::new(QGramMatcher::new()), 1.0),
                (Box::new(ValueOverlapMatcher::new()), 0.9),
                (Box::new(NumericMatcher::new()), 1.0),
            ],
        }
    }

    /// The standard ensemble with the instance matchers pinned to the
    /// **legacy** `BTreeMap`/`BTreeSet` kernels instead of the interned
    /// merge-join kernels — the reference path for kernel-equivalence tests
    /// and the `interned_kernels` bench. Same matchers, same weights.
    pub fn standard_legacy() -> Self {
        MatcherEnsemble {
            matchers: vec![
                (Box::new(NameMatcher::new()) as Box<dyn Matcher>, 0.75),
                (Box::new(QGramMatcher::legacy()), 1.0),
                (Box::new(ValueOverlapMatcher::legacy()), 0.9),
                (Box::new(NumericMatcher::new()), 1.0),
            ],
        }
    }

    /// An instance-only ensemble (no attribute-name evidence). Useful for
    /// experiments that want to isolate the data-driven behaviour.
    pub fn instance_only() -> Self {
        MatcherEnsemble {
            matchers: vec![
                (Box::new(QGramMatcher::new()) as Box<dyn Matcher>, 1.0),
                (Box::new(ValueOverlapMatcher::new()), 0.9),
                (Box::new(NumericMatcher::new()), 1.0),
            ],
        }
    }

    /// Build an empty ensemble to be populated with [`MatcherEnsemble::push`].
    pub fn empty() -> Self {
        MatcherEnsemble { matchers: Vec::new() }
    }

    /// Add a matcher with the given weight.
    pub fn push(&mut self, matcher: Box<dyn Matcher>, weight: f64) {
        self.matchers.push((matcher, weight.max(0.0)));
    }

    /// Number of matchers in the ensemble.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// True when the ensemble has no matchers.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }

    /// Names of the matchers, in ensemble order.
    pub fn names(&self) -> Vec<&'static str> {
        self.matchers.iter().map(|(m, _)| m.name()).collect()
    }

    /// Weight of the i-th matcher.
    pub fn weight(&self, idx: usize) -> f64 {
        self.matchers[idx].1
    }

    /// Raw scores of every matcher for a pair; inapplicable matchers report
    /// `None`.
    pub fn raw_scores(&self, source: &ColumnData, target: &ColumnData) -> Vec<Option<f64>> {
        let mut out = Vec::with_capacity(self.matchers.len());
        self.raw_scores_into(source, target, None, &mut out);
        out
    }

    /// [`MatcherEnsemble::raw_scores`] with index-provided exact scan
    /// quantities for the pair (see [`PairHint`]). Applicability is decided
    /// exactly as in the unhinted path; kernel evaluations are only replaced
    /// by their bit-identical hint-served values, so the returned vector is
    /// bit-identical to `raw_scores` on the same pair.
    pub fn raw_scores_hinted(
        &self,
        source: &ColumnData,
        target: &ColumnData,
        hint: PairHint,
    ) -> Vec<Option<f64>> {
        let mut out = Vec::with_capacity(self.matchers.len());
        self.raw_scores_into(source, target, Some(hint), &mut out);
        out
    }

    /// Append one pair's raw scores (ensemble order, `None` for inapplicable
    /// matchers) to `out` — the single implementation behind
    /// [`MatcherEnsemble::raw_scores`] / [`MatcherEnsemble::raw_scores_hinted`]
    /// and the allocation-free flat score matrix of the pair-grid hot loop.
    pub fn raw_scores_into(
        &self,
        source: &ColumnData,
        target: &ColumnData,
        hint: Option<PairHint>,
        out: &mut Vec<Option<f64>>,
    ) {
        for (m, _) in &self.matchers {
            out.push(if m.applicable(source, target) {
                let score = match hint {
                    Some(hint) => m.score_with_hint(source, target, hint),
                    None => m.score(source, target),
                };
                Some(score.clamp(0.0, 1.0))
            } else {
                None
            });
        }
    }

    /// Weighted combination of per-matcher confidences. `confidences[i]` is the
    /// i-th matcher's confidence, `None` where the matcher was inapplicable;
    /// the result is the weighted mean over applicable matchers (0 when none
    /// apply).
    pub fn combine(&self, confidences: &[Option<f64>]) -> f64 {
        debug_assert_eq!(confidences.len(), self.matchers.len());
        let mut total = 0.0;
        let mut weight_sum = 0.0;
        for (i, conf) in confidences.iter().enumerate() {
            if let Some(c) = conf {
                let w = self.matchers[i].1;
                total += w * c;
                weight_sum += w;
            }
        }
        if weight_sum == 0.0 {
            0.0
        } else {
            total / weight_sum
        }
    }

    /// Unweighted mean of the applicable raw scores (the paper's "average
    /// matcher score s_i" for a match).
    pub fn average_raw(&self, raw: &[Option<f64>]) -> f64 {
        let (mut sum, mut count) = (0.0f64, 0usize);
        for v in raw.iter().flatten() {
            sum += v;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

impl std::fmt::Debug for MatcherEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatcherEnsemble").field("matchers", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{AttrRef, DataType, Value};

    fn text_col(name: &str, values: Vec<&str>) -> ColumnData<'static> {
        ColumnData::owned(
            AttrRef::new("t", name),
            DataType::Text,
            values.into_iter().map(Value::str).collect(),
        )
    }

    #[test]
    fn standard_ensemble_has_four_matchers() {
        let e = MatcherEnsemble::standard();
        assert_eq!(e.len(), 4);
        assert_eq!(e.names(), vec!["name", "qgram", "overlap", "numeric"]);
        assert!(!e.is_empty());
        assert!(e.weight(1) > 0.0);
    }

    #[test]
    fn raw_scores_mark_inapplicable_matchers() {
        let e = MatcherEnsemble::standard();
        let a = text_col("title", vec!["heart of darkness"]);
        let b = text_col("name", vec!["the historian"]);
        let raw = e.raw_scores(&a, &b);
        assert_eq!(raw.len(), 4);
        // Numeric matcher inapplicable for text columns.
        assert!(raw[3].is_none());
        assert!(raw[1].is_some());
    }

    #[test]
    fn combine_is_weighted_mean_over_applicable() {
        let e = MatcherEnsemble::standard();
        let conf = vec![Some(1.0), Some(0.0), None, None];
        // Weighted mean of 1.0 (w=0.75) and 0.0 (w=1.0) = 0.75/1.75.
        assert!((e.combine(&conf) - 0.75 / 1.75).abs() < 1e-12);
        // All inapplicable → 0.
        assert_eq!(e.combine(&[None; 4]), 0.0);
    }

    #[test]
    fn average_raw_ignores_none() {
        let e = MatcherEnsemble::standard();
        assert!((e.average_raw(&[Some(0.2), None, Some(0.6), None]) - 0.4).abs() < 1e-12);
        assert_eq!(e.average_raw(&[None, None, None, None]), 0.0);
    }

    #[test]
    fn custom_ensemble_construction() {
        let mut e = MatcherEnsemble::empty();
        assert!(e.is_empty());
        e.push(Box::new(NameMatcher::new()), 1.0);
        e.push(Box::new(QGramMatcher::new()), -3.0); // negative weights clamp to 0
        assert_eq!(e.len(), 2);
        assert_eq!(e.weight(1), 0.0);
        let instance = MatcherEnsemble::instance_only();
        assert!(!instance.names().contains(&"name"));
    }
}
