//! Interned, flat-profile scoring kernels.
//!
//! The instance matchers originally scored every pair through
//! `BTreeMap<String, f64>` q-gram profiles and `BTreeSet<String>` value sets:
//! per-gram `String` comparisons inside tree walks, in the single hottest
//! loop of the system (`ScoreMatch` rescoring and `StandardMatch`). This
//! module replaces those derived artifacts with **flat, interned, cache
//! friendly** representations:
//!
//! * [`GramInterner`] — maps gram / normalized-value strings to dense `u32`
//!   ids. One interner is shared (behind an `Arc`) by every column that will
//!   ever be scored against another: ids are only comparable within one
//!   interner. Reads go through a **frozen snapshot** (one brief lock to
//!   clone the `Arc`, then every lookup is lock-free on the immutable map);
//!   growth appends under a mutex and publishes a new snapshot. After
//!   warm-up the gram vocabulary stops growing and builds never touch the
//!   growth lock.
//! * [`InternedProfile`] — a q-gram frequency profile as a sorted
//!   `Vec<(u32, f64)>` sparse vector of **raw counts** plus its L2 norm.
//!   [`InternedProfile::cosine`] is a linear merge-join over the two id
//!   vectors — no string comparison, no tree walk, no hashing in the hot
//!   loop.
//! * [`InternedValueSet`] — a distinct-value set as a sorted `Vec<u32>`;
//!   [`InternedValueSet::jaccard`] is the same merge-join shape.
//!
//! ## Numerical contract
//!
//! Counts are small exact integers, so every partial sum inside the cosine
//! dot product and the squared norm is an integer far below 2⁵³: the
//! additions are **exact** and therefore order-independent. The kernel's
//! result does not depend on which ids the interner happened to assign, so
//! scores are deterministic across runs, threads and interners. The legacy
//! kernels normalize each profile before the dot product and accumulate in
//! gram order, which rounds differently in the last ulps; the property tests
//! in `tests/tests/property_based.rs` pin the two kernels to within 1e-12
//! (Jaccard is bit-identical: both kernels divide the same two integers).
//!
//! The legacy `BTreeMap`/`BTreeSet` path is retained — construct matchers
//! with [`crate::instance::QGramMatcher::legacy`] /
//! [`crate::instance::ValueOverlapMatcher::legacy`] (or a
//! [`crate::MatcherEnsemble::standard_legacy`] ensemble) — and the
//! [`telemetry`] counters make visible which kernel generation actually
//! served each score.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

/// Process-wide instrumentation distinguishing the kernel generations: every
/// q-gram cosine / value-overlap Jaccard evaluation records whether it ran on
/// the interned merge-join kernels or fell back to the legacy
/// `BTreeMap`/`BTreeSet` path (mismatched interners, non-default gram width,
/// or an explicitly legacy matcher).
pub mod telemetry {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static INTERNED_KERNEL_SCORES: AtomicUsize = AtomicUsize::new(0);
    static LEGACY_KERNEL_SCORES: AtomicUsize = AtomicUsize::new(0);
    static PRUNED_KERNEL_SCORES: AtomicUsize = AtomicUsize::new(0);

    /// Scores served by the interned merge-join kernels so far.
    pub fn interned_kernel_scores() -> usize {
        INTERNED_KERNEL_SCORES.load(Ordering::Relaxed)
    }

    /// Scores served by the legacy `BTreeMap`/`BTreeSet` kernels so far.
    pub fn legacy_kernel_scores() -> usize {
        LEGACY_KERNEL_SCORES.load(Ordering::Relaxed)
    }

    /// Scores answered from an inverted-index pruning hint (the merge-join
    /// was skipped because the gram index proved the pair shares nothing).
    pub fn pruned_kernel_scores() -> usize {
        PRUNED_KERNEL_SCORES.load(Ordering::Relaxed)
    }

    pub(crate) fn record_interned_score() {
        INTERNED_KERNEL_SCORES.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_legacy_score() {
        LEGACY_KERNEL_SCORES.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_pruned_score() {
        PRUNED_KERNEL_SCORES.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the process-global kernel counters, for scoped
    /// before/after accounting. The counters themselves are monotonic for
    /// the life of the process (many subsystems diff them concurrently);
    /// benchmarks and tests that need *per-run* numbers take a snapshot
    /// before the run and read [`KernelCounters::delta`] after, instead of
    /// resetting state other measurements may be mid-flight over.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct KernelCounters {
        /// Interned merge-join scores at snapshot time.
        pub interned: usize,
        /// Legacy `BTreeMap`/`BTreeSet` scores at snapshot time.
        pub legacy: usize,
        /// Index-pruned (merge-join skipped) scores at snapshot time.
        pub pruned: usize,
    }

    impl KernelCounters {
        /// The current values of all three kernel counters.
        pub fn snapshot() -> Self {
            KernelCounters {
                interned: interned_kernel_scores(),
                legacy: legacy_kernel_scores(),
                pruned: pruned_kernel_scores(),
            }
        }

        /// Counter growth since this snapshot was taken. Meaningful only
        /// while no other thread is scoring (the same sequential-attribution
        /// contract as the service's per-request telemetry).
        pub fn delta(&self) -> Self {
            let now = KernelCounters::snapshot();
            KernelCounters {
                interned: now.interned - self.interned,
                legacy: now.legacy - self.legacy,
                pruned: now.pruned - self.pruned,
            }
        }
    }
}

/// The immutable lookup state a reader works against: gram → id and id →
/// gram, `Arc`-shared so publishing a new generation is one pointer swap.
///
/// Both sides are **persistent** structures, so publishing generation *n+1*
/// costs O(batch), not O(vocabulary): the id → gram side is a chunked
/// append-only store ([`ChunkedIds`]) whose full chunks are `Arc`-shared
/// between generations, and the gram → id side is a path-copying hash trie
/// ([`PersistentMap`]) whose untouched subtrees are shared wholesale.
#[derive(Debug, Default, Clone)]
struct Frozen {
    by_text: PersistentMap,
    by_id: ChunkedIds,
}

/// Log₂ of the chunk size of the append-only id store.
const CHUNK_BITS: usize = 10;
/// Strings per chunk (1024): small enough that cloning the trailing partial
/// chunk is cheap, large enough that the chunk directory stays tiny.
const CHUNK: usize = 1 << CHUNK_BITS;

/// Append-only id → string store in fixed-size chunks. Every **full** chunk
/// is frozen behind an `Arc` and shared by all later generations; growth
/// clones only the chunk directory (one pointer per chunk) and the trailing
/// partial chunk, so cloning costs O(batch + vocabulary / CHUNK) instead of
/// O(vocabulary).
#[derive(Debug, Default, Clone)]
struct ChunkedIds {
    /// Completed, immutable chunks of exactly [`CHUNK`] strings each.
    full: Vec<Arc<[Arc<str>]>>,
    /// The growing tail (fewer than [`CHUNK`] strings).
    tail: Vec<Arc<str>>,
}

impl ChunkedIds {
    fn len(&self) -> usize {
        (self.full.len() << CHUNK_BITS) + self.tail.len()
    }

    fn get(&self, id: usize) -> Option<&Arc<str>> {
        let (chunk, offset) = (id >> CHUNK_BITS, id & (CHUNK - 1));
        match chunk.cmp(&self.full.len()) {
            std::cmp::Ordering::Less => self.full[chunk].get(offset),
            std::cmp::Ordering::Equal => self.tail.get(offset),
            std::cmp::Ordering::Greater => None,
        }
    }

    fn push(&mut self, text: Arc<str>) {
        self.tail.push(text);
        if self.tail.len() == CHUNK {
            self.full.push(std::mem::take(&mut self.tail).into());
        }
    }
}

/// Bits of hash consumed per trie level (32-way branching).
const TRIE_BITS: u32 = 5;
const TRIE_MASK: u64 = (1 << TRIE_BITS) - 1;
/// Deepest shift a split can reach: two distinct 64-bit hashes always differ
/// in some 5-bit window at or before this shift, so traversal never shifts a
/// `u64` by its full width.
const TRIE_MAX_SHIFT: u32 = 60;

/// One node of the persistent gram → id trie.
#[derive(Debug)]
enum MapNode {
    /// Interior node: a bitmap-compressed array of up to 32 children,
    /// indexed by the next [`TRIE_BITS`] bits of the key hash.
    Branch { bitmap: u32, children: Vec<Arc<MapNode>> },
    /// Terminal node: the entries whose key hash equals `hash` (normally
    /// exactly one; more only on a full 64-bit hash collision).
    Leaf { hash: u64, entries: Vec<(Arc<str>, u32)> },
}

/// A persistent (immutable, path-copying) hash trie from interned string to
/// id. `clone` is O(1) (one root `Arc`); `insert` copies only the O(log n)
/// nodes on the key's path and shares every other subtree with the previous
/// generation — which is what makes publishing a grown interner snapshot
/// O(batch). Lookups walk at most 13 levels (64 hash bits / 5 per level).
#[derive(Debug, Default, Clone)]
struct PersistentMap {
    root: Option<Arc<MapNode>>,
    len: usize,
}

/// Hash of a trie key — the workspace's deterministic FNV-1a
/// ([`cxm_relational::Fnv64`]), fixed (not `RandomState`) so trie shapes are
/// reproducible within a process; nothing is persisted across processes.
fn trie_hash(key: &str) -> u64 {
    let mut h = cxm_relational::Fnv64::new();
    h.write_bytes(key.as_bytes());
    h.finish()
}

impl PersistentMap {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: &str) -> Option<u32> {
        let hash = trie_hash(key);
        let mut node = self.root.as_deref()?;
        let mut shift = 0u32;
        loop {
            match node {
                MapNode::Leaf { hash: leaf_hash, entries } => {
                    if *leaf_hash != hash {
                        return None;
                    }
                    return entries.iter().find(|(k, _)| &**k == key).map(|&(_, id)| id);
                }
                MapNode::Branch { bitmap, children } => {
                    let bit = 1u32 << ((hash >> shift) & TRIE_MASK);
                    if bitmap & bit == 0 {
                        return None;
                    }
                    node = &children[(bitmap & (bit - 1)).count_ones() as usize];
                    shift += TRIE_BITS;
                }
            }
        }
    }

    /// Insert a key that is **not present** (the interner always checks
    /// first), path-copying the nodes along its hash.
    fn insert(&mut self, key: Arc<str>, id: u32) {
        let hash = trie_hash(&key);
        self.root = Some(match self.root.take() {
            None => Arc::new(MapNode::Leaf { hash, entries: vec![(key, id)] }),
            Some(root) => insert_node(&root, 0, hash, key, id),
        });
        self.len += 1;
    }
}

fn insert_node(node: &Arc<MapNode>, shift: u32, hash: u64, key: Arc<str>, id: u32) -> Arc<MapNode> {
    match &**node {
        MapNode::Leaf { hash: leaf_hash, entries } => {
            if *leaf_hash == hash {
                // Full 64-bit collision: extend the collision bucket.
                let mut entries = entries.clone();
                entries.push((key, id));
                return Arc::new(MapNode::Leaf { hash, entries });
            }
            // Split: push the existing leaf down until the two hashes
            // diverge in a 5-bit window (guaranteed by `shift ≤ 60`).
            split_leaves(Arc::clone(node), *leaf_hash, hash, shift, key, id)
        }
        MapNode::Branch { bitmap, children } => {
            let index = ((hash >> shift) & TRIE_MASK) as u32;
            let bit = 1u32 << index;
            let pos = (bitmap & (bit - 1)).count_ones() as usize;
            let mut children = children.clone();
            if bitmap & bit != 0 {
                children[pos] = insert_node(&children[pos], shift + TRIE_BITS, hash, key, id);
                Arc::new(MapNode::Branch { bitmap: *bitmap, children })
            } else {
                children.insert(pos, Arc::new(MapNode::Leaf { hash, entries: vec![(key, id)] }));
                Arc::new(MapNode::Branch { bitmap: bitmap | bit, children })
            }
        }
    }
}

/// Build the minimal branch chain separating an existing leaf (hash
/// `old_hash`) from a new entry (hash `new_hash`), both arriving at `shift`.
fn split_leaves(
    old: Arc<MapNode>,
    old_hash: u64,
    new_hash: u64,
    shift: u32,
    key: Arc<str>,
    id: u32,
) -> Arc<MapNode> {
    debug_assert!(shift <= TRIE_MAX_SHIFT, "distinct hashes split before the bits run out");
    let old_index = ((old_hash >> shift) & TRIE_MASK) as u32;
    let new_index = ((new_hash >> shift) & TRIE_MASK) as u32;
    if old_index == new_index {
        let child = split_leaves(old, old_hash, new_hash, shift + TRIE_BITS, key, id);
        return Arc::new(MapNode::Branch { bitmap: 1 << old_index, children: vec![child] });
    }
    let new_leaf = Arc::new(MapNode::Leaf { hash: new_hash, entries: vec![(key, id)] });
    let (bitmap, children) = if old_index < new_index {
        ((1u32 << old_index) | (1u32 << new_index), vec![old, new_leaf])
    } else {
        ((1u32 << old_index) | (1u32 << new_index), vec![new_leaf, old])
    };
    Arc::new(MapNode::Branch { bitmap, children })
}

/// A string interner scoped to one matching universe (typically a target
/// catalog plus every source scored against it; [`GramInterner::global`] is
/// the process-wide default every [`crate::ColumnData`] starts with).
///
/// Ids are dense, assigned in first-intern order, and stable for the
/// interner's lifetime. Ids from *different* interners are not comparable —
/// the matchers check interner identity (`Arc::ptr_eq`) before using the
/// interned kernels and fall back to the legacy string kernels otherwise.
///
/// Concurrency: readers clone the current frozen snapshot (one brief
/// read-lock) and then perform every lookup lock-free on the immutable
/// structures; writers take the growth mutex, derive the next generation and
/// publish it. Growth is rare by construction — the 3-gram vocabulary over
/// normalized text is small and saturates quickly — and **cheap even when it
/// is not**: the frozen state is persistent (chunked append-only id store +
/// path-copying hash trie), so each publication costs O(batch), not
/// O(vocabulary). A long-lived process fed unbounded novel values pays
/// linear total growth cost.
#[derive(Debug)]
pub struct GramInterner {
    /// Process-unique identity of this interner (see [`GramInterner::token`]).
    token: u64,
    frozen: RwLock<Arc<Frozen>>,
    growth: Mutex<()>,
}

impl Default for GramInterner {
    fn default() -> Self {
        GramInterner::new()
    }
}

impl GramInterner {
    /// An empty interner.
    pub fn new() -> Self {
        static NEXT_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        GramInterner {
            token: NEXT_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            frozen: RwLock::default(),
            growth: Mutex::default(),
        }
    }

    /// A process-unique identity token for this interner instance. Ids are
    /// only comparable within one interner, so caches keying interned
    /// artifacts (e.g. the restricted-profile cache) fold this token into
    /// their keys — artifacts built against one interner can then never be
    /// served to columns bound to another.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The process-wide default interner. Every column that does not opt
    /// into a private interner shares this one, which is what makes the
    /// interned kernels applicable to any (source, target) pair by default.
    pub fn global() -> Arc<GramInterner> {
        static GLOBAL: OnceLock<Arc<GramInterner>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(GramInterner::new())))
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.snapshot().by_id.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn snapshot(&self) -> Arc<Frozen> {
        Arc::clone(&self.frozen.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The id of `text`, if it has been interned.
    pub fn lookup(&self, text: &str) -> Option<u32> {
        self.snapshot().by_text.get(text)
    }

    /// Intern one string, assigning a fresh id on first sight.
    pub fn intern(&self, text: &str) -> u32 {
        if let Some(id) = self.lookup(text) {
            return id;
        }
        self.grow(std::iter::once(text.to_string()).collect::<Vec<_>>())[0]
    }

    /// The string behind an id (`None` for ids this interner never issued).
    /// Ids round-trip: `resolve(intern(s)) == Some(s)`.
    pub fn resolve(&self, id: u32) -> Option<Arc<str>> {
        self.snapshot().by_id.get(id as usize).cloned()
    }

    /// Turn a batch of per-occurrence known ids plus a miss map (string →
    /// count) into the final id-sorted sparse count vector: run-length
    /// encode the sorted hit ids (no hashing anywhere on the hit path) and
    /// merge in the freshly grown miss ids.
    fn finish_counts(
        &self,
        mut known_ids: Vec<u32>,
        unknown: BTreeMap<String, f64>,
    ) -> Vec<(u32, f64)> {
        known_ids.sort_unstable();
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for id in known_ids {
            match entries.last_mut() {
                Some((last, count)) if *last == id => *count += 1.0,
                _ => entries.push((id, 1.0)),
            }
        }
        if !unknown.is_empty() {
            // The miss map is a BTreeMap, so this batch is already sorted —
            // id assignment within one batch is deterministic (D001).
            let pending: Vec<(String, f64)> = unknown.into_iter().collect();
            let ids = self.grow(pending.iter().map(|(s, _)| s.clone()).collect());
            for ((_, count), id) in pending.into_iter().zip(ids) {
                entries.push((id, count));
            }
            entries.sort_unstable_by_key(|&(id, _)| id);
            // A raced id (another thread interned our "miss" first) can
            // coincide with a hit id; merge defensively.
            entries.dedup_by(|next, prev| {
                if prev.0 == next.0 {
                    prev.1 += next.1;
                    true
                } else {
                    false
                }
            });
        }
        entries
    }

    /// Assign ids to `texts` (in order), reusing existing ids for strings a
    /// concurrent writer interned since our snapshot, and publish the new
    /// frozen generation.
    ///
    /// Publication is **O(batch)**, not O(vocabulary): both sides of the
    /// frozen state are persistent structures ([`ChunkedIds`] /
    /// [`PersistentMap`]), so deriving the next generation copies only the
    /// chunk directory, the partial tail chunk, and the trie paths of the
    /// freshly interned strings — every untouched chunk and subtree is
    /// `Arc`-shared with the previous generation. A process fed a long
    /// stream of novel values therefore pays linear total growth cost
    /// instead of the quadratic clone-the-world behaviour this replaced.
    fn grow(&self, texts: Vec<String>) -> Vec<u32> {
        let _guard = self.growth.lock().unwrap_or_else(PoisonError::into_inner);
        // Re-read under the growth lock: writers are serialized, so this is
        // the latest generation and re-checks races lost before the lock.
        let current = self.snapshot();
        let mut next = (*current).clone();
        let ids = texts
            .into_iter()
            .map(|text| match next.by_text.get(text.as_str()) {
                Some(id) => id,
                None => {
                    let id =
                        u32::try_from(next.by_id.len()).expect("interner exceeded u32 id space");
                    let shared: Arc<str> = text.into();
                    next.by_text.insert(Arc::clone(&shared), id);
                    next.by_id.push(shared);
                    id
                }
            })
            .collect();
        debug_assert_eq!(next.by_text.len(), next.by_id.len());
        *self.frozen.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(next);
        ids
    }

    /// Every interned string in **dense id order** (the string behind id 0
    /// first). Re-interning this dump, in order, into a *fresh* interner via
    /// [`GramInterner::preload`] reproduces the exact same id assignment —
    /// the property warm-state persistence relies on to make persisted
    /// interned artifacts meaningful after a restart.
    pub fn dump(&self) -> Vec<String> {
        let snap = self.snapshot();
        (0..snap.by_id.len())
            .map(|id| snap.by_id.get(id).map(|s| s.to_string()).unwrap_or_default())
            .collect()
    }

    /// Intern a batch of strings in order, returning their ids. On a fresh
    /// interner fed a [`GramInterner::dump`], the returned ids are exactly
    /// `0..texts.len()` — dense first-intern order is reproduced. Publication
    /// cost is O(batch) (one growth-lock acquisition for the whole batch).
    pub fn preload(&self, texts: Vec<String>) -> Vec<u32> {
        if texts.is_empty() {
            return Vec::new();
        }
        self.grow(texts)
    }

    /// Build the interned q-gram count profile of a bag of texts — the flat
    /// counterpart of [`crate::column::build_qgram_profile`] (which
    /// normalizes eagerly; this kernel keeps raw counts and the norm so the
    /// dot product stays exact-integer arithmetic).
    ///
    /// Grams are visited in a reused scratch buffer
    /// ([`cxm_classify::for_each_qgram`]) and looked up in the frozen
    /// snapshot by `&str`: a warm vocabulary builds the whole profile
    /// without a single per-gram allocation.
    pub fn qgram_profile<T: AsRef<str>>(
        &self,
        texts: impl Iterator<Item = T>,
        q: usize,
    ) -> InternedProfile {
        let snap = self.snapshot();
        let mut known_ids: Vec<u32> = Vec::new();
        let mut unknown: BTreeMap<String, f64> = BTreeMap::new();
        for text in texts {
            cxm_classify::for_each_qgram(text.as_ref(), q, |gram| match snap.by_text.get(gram) {
                Some(id) => known_ids.push(id),
                None => match unknown.get_mut(gram) {
                    Some(count) => *count += 1.0,
                    None => {
                        unknown.insert(gram.to_string(), 1.0);
                    }
                },
            });
        }
        InternedProfile::from_counts(self.finish_counts(known_ids, unknown))
    }

    /// Build the interned distinct-value set of a bag of already-normalized
    /// texts (the flat counterpart of [`crate::ColumnData::value_set`]).
    pub fn value_set<T: AsRef<str>>(&self, texts: impl Iterator<Item = T>) -> InternedValueSet {
        let snap = self.snapshot();
        let mut known_ids: Vec<u32> = Vec::new();
        let mut unknown: BTreeMap<String, f64> = BTreeMap::new();
        for text in texts {
            let text = text.as_ref();
            match snap.by_text.get(text) {
                Some(id) => known_ids.push(id),
                None => match unknown.get_mut(text) {
                    Some(count) => *count += 1.0,
                    None => {
                        unknown.insert(text.to_string(), 1.0);
                    }
                },
            }
        }
        let mut ids: Vec<u32> =
            self.finish_counts(known_ids, unknown).into_iter().map(|(id, _)| id).collect();
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        ids.shrink_to_fit();
        InternedValueSet { ids }
    }
}

/// A q-gram frequency profile in interned sparse-vector form: `(gram id, raw
/// count)` sorted by id, plus the L2 norm of the count vector. Counts are
/// exact small integers, which makes [`InternedProfile::cosine`]
/// order-independent and deterministic (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct InternedProfile {
    entries: Vec<(u32, f64)>,
    norm: f64,
}

impl InternedProfile {
    /// Assemble a profile from id-sorted `(id, count)` entries.
    pub fn from_counts(entries: Vec<(u32, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries must be id-sorted");
        let norm = entries.iter().map(|&(_, c)| c * c).sum::<f64>().sqrt();
        InternedProfile { entries, norm }
    }

    /// The sorted `(gram id, raw count)` entries.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// L2 norm of the raw count vector.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Number of distinct grams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the profile has no grams.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cosine similarity of two profiles — a single linear merge-join over
    /// the sorted id vectors. Both profiles must come from the same
    /// interner; the matchers guarantee that by checking interner identity.
    pub fn cosine(&self, other: &InternedProfile) -> f64 {
        if self.entries.is_empty() || other.entries.is_empty() {
            return 0.0;
        }
        let mut dot = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() && j < b.len() {
            let (ia, ca) = a[i];
            let (ib, cb) = b[j];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += ca * cb;
                    i += 1;
                    j += 1;
                }
            }
        }
        if dot == 0.0 {
            return 0.0;
        }
        (dot / (self.norm * other.norm)).clamp(0.0, 1.0)
    }
}

/// A distinct-value set in interned form: sorted unique `u32` ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedValueSet {
    ids: Vec<u32>,
}

impl InternedValueSet {
    /// The empty set, usable in `const`/`static` position (no interner
    /// involved — an empty set is valid against any id space).
    pub const fn empty() -> InternedValueSet {
        InternedValueSet { ids: Vec::new() }
    }

    /// Assemble a set from ids that must already be strictly increasing
    /// (sorted, no duplicates) — `None` otherwise. This is the decode-side
    /// constructor used by warm-state persistence; rejecting unsorted input
    /// here keeps the merge-join kernels' precondition intact no matter what
    /// bytes a snapshot file held.
    pub fn from_sorted_ids(ids: Vec<u32>) -> Option<InternedValueSet> {
        if ids.windows(2).all(|w| w[0] < w[1]) {
            Some(InternedValueSet { ids })
        } else {
            None
        }
    }

    /// The sorted distinct value ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Jaccard similarity of two sets — intersection by merge-join, union by
    /// inclusion–exclusion. Divides the same two integers as the legacy
    /// `BTreeSet` kernel, so the result is bit-identical to it.
    pub fn jaccard(&self, other: &InternedValueSet) -> f64 {
        if self.ids.is_empty() || other.ids.is_empty() {
            return 0.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = self.ids.len() + other.ids.len() - inter;
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_round_tripping_ids() {
        let interner = GramInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern("har");
        let b = interner.intern("ard");
        assert_ne!(a, b);
        assert_eq!(interner.intern("har"), a, "re-interning is stable");
        assert_eq!(interner.lookup("ard"), Some(b));
        assert_eq!(interner.lookup("xyz"), None);
        assert_eq!(interner.resolve(a).as_deref(), Some("har"));
        assert_eq!(interner.resolve(999), None);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn qgram_profile_counts_and_normalizes() {
        let interner = GramInterner::new();
        // "ab" with q=1 → grams a, b (padding is empty for q=1).
        let p = interner.qgram_profile(["ab".to_string(), "a".to_string()].into_iter(), 1);
        // counts: a → 2, b → 1; norm = sqrt(4 + 1).
        assert_eq!(p.len(), 2);
        assert!((p.norm() - 5.0f64.sqrt()).abs() < 1e-12);
        let a_id = interner.lookup("a").unwrap();
        let entry = p.entries().iter().find(|&&(id, _)| id == a_id).unwrap();
        assert_eq!(entry.1, 2.0);
    }

    #[test]
    fn cosine_matches_hand_computation() {
        let interner = GramInterner::new();
        let p1 = InternedProfile::from_counts(vec![(0, 1.0), (1, 2.0)]);
        let p2 = InternedProfile::from_counts(vec![(1, 1.0), (2, 3.0)]);
        // dot = 2, norms = sqrt(5), sqrt(10).
        let expected = 2.0 / (5.0f64.sqrt() * 10.0f64.sqrt());
        assert!((p1.cosine(&p2) - expected).abs() < 1e-15);
        assert_eq!(p1.cosine(&InternedProfile::from_counts(vec![])), 0.0);
        assert!((p1.cosine(&p1) - 1.0).abs() < 1e-12, "self-cosine is 1");
        let _ = interner;
    }

    #[test]
    fn cosine_is_order_independent_exact() {
        // Same multiset of shared grams under two different id assignments
        // must give bit-identical cosines (the determinism contract).
        let a1 = InternedProfile::from_counts(vec![(0, 3.0), (1, 5.0), (2, 7.0)]);
        let b1 = InternedProfile::from_counts(vec![(0, 2.0), (1, 11.0), (2, 1.0)]);
        let a2 = InternedProfile::from_counts(vec![(4, 7.0), (9, 3.0), (12, 5.0)]);
        let b2 = InternedProfile::from_counts(vec![(4, 1.0), (9, 2.0), (12, 11.0)]);
        assert_eq!(a1.cosine(&b1).to_bits(), a2.cosine(&b2).to_bits());
    }

    #[test]
    fn value_set_jaccard() {
        let interner = GramInterner::new();
        let a = interner.value_set(["x".to_string(), "y".to_string(), "x".to_string()].into_iter());
        let b = interner.value_set(["y".to_string(), "z".to_string()].into_iter());
        assert_eq!(a.len(), 2);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(a.jaccard(&interner.value_set(std::iter::empty::<&str>())), 0.0);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.ids().len(), 2);
    }

    #[test]
    fn growth_publishes_new_snapshots_under_concurrency() {
        let interner = Arc::new(GramInterner::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let interner = Arc::clone(&interner);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..50 {
                    // Half shared strings, half thread-unique.
                    let s = if i % 2 == 0 { format!("shared-{i}") } else { format!("t{t}-{i}") };
                    ids.push((s.clone(), interner.intern(&s)));
                }
                ids
            }));
        }
        let all: Vec<(String, u32)> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        for (s, id) in &all {
            assert_eq!(interner.lookup(s), Some(*id), "{s} must keep its first id");
            assert_eq!(interner.resolve(*id).as_deref(), Some(s.as_str()));
        }
    }

    #[test]
    fn global_interner_is_shared() {
        assert!(Arc::ptr_eq(&GramInterner::global(), &GramInterner::global()));
    }

    #[test]
    fn snapshots_stay_stable_across_growth_batches() {
        // Intern enough strings, in many batches, to roll over several id
        // chunks; every previously issued id must keep resolving to its
        // string (and every string to its id) in every later generation.
        let interner = GramInterner::new();
        let total = 2 * CHUNK + CHUNK / 2;
        let mut issued: Vec<(String, u32)> = Vec::new();
        for batch_start in (0..total).step_by(97) {
            let batch: Vec<String> =
                (batch_start..(batch_start + 97).min(total)).map(|i| format!("s{i:05}")).collect();
            for s in &batch {
                issued.push((s.clone(), interner.intern(s)));
            }
            // A snapshot taken now serves every id issued so far.
            for (s, id) in &issued {
                assert_eq!(interner.lookup(s), Some(*id), "{s} id stable across growth");
                assert_eq!(interner.resolve(*id).as_deref(), Some(s.as_str()));
            }
        }
        assert_eq!(interner.len(), total);
        // Ids are dense in first-intern order.
        for (i, (_, id)) in issued.iter().enumerate() {
            assert_eq!(*id, i as u32);
        }
    }

    #[test]
    fn growth_publishes_persistently_shared_snapshots() {
        // The O(batch) publication contract, pinned structurally: a full id
        // chunk frozen in one generation is the *same allocation* in every
        // later generation, and a small batch over a large vocabulary leaves
        // almost the entire trie shared (here: the resolved string Arcs are
        // identical allocations before and after unrelated growth).
        let interner = GramInterner::new();
        for i in 0..CHUNK {
            interner.intern(&format!("warm{i:05}"));
        }
        let before = interner.snapshot();
        assert_eq!(before.by_id.full.len(), 1, "exactly one full chunk");
        let warm_chunk = Arc::clone(&before.by_id.full[0]);
        let warm_string = before.by_id.get(7).cloned().unwrap();

        interner.intern("fresh-value");
        let after = interner.snapshot();
        assert!(
            Arc::ptr_eq(&warm_chunk, &after.by_id.full[0]),
            "full chunks must be shared, not cloned, across growth"
        );
        assert!(Arc::ptr_eq(&warm_string, after.by_id.get(7).unwrap()));
        assert_eq!(after.by_text.get("fresh-value"), Some(CHUNK as u32));
        assert_eq!(before.by_text.get("fresh-value"), None, "old snapshots are immutable");
    }

    #[test]
    fn persistent_map_survives_hash_collisions() {
        // Drive the trie through every shape: root leaf, splits at varying
        // depths, and (via the same-hash branch) collision buckets.
        let mut map = PersistentMap::default();
        for i in 0..500u32 {
            map.insert(format!("k{i}").into(), i);
        }
        assert_eq!(map.len(), 500);
        for i in 0..500u32 {
            assert_eq!(map.get(&format!("k{i}")), Some(i));
        }
        assert_eq!(map.get("absent"), None);
        // Clones are O(1) and independent of later inserts.
        let frozen = map.clone();
        map.insert("late".into(), 999);
        assert_eq!(frozen.get("late"), None);
        assert_eq!(map.get("late"), Some(999));
    }
}
