//! Converting raw matcher scores into confidences.
//!
//! §2.3: "for a single matcher m and source attribute a, the distribution of
//! scores to all target attributes are treated as samples of a normal
//! distribution, allowing the raw scores given by m for a to be converted into
//! confidence scores using standard statistical techniques."
//!
//! [`ScoreDistribution`] captures that per-(source attribute, matcher)
//! distribution; the confidence of a particular raw score is Φ of its z-score.
//! The same distribution is *reused* when `ScoreMatch` re-scores a
//! view-restricted sample — the strawman discussion of §3 explicitly estimates
//! the new confidence "using the new score s′ and the distribution of scores
//! seen for RS.s across the sample".

use cxm_stats::{normal_cdf, z_score, Moments};

/// The empirical distribution (mean, standard deviation) of one matcher's raw
/// scores for one source attribute against all target attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreDistribution {
    /// Mean raw score.
    pub mean: f64,
    /// Population standard deviation of the raw scores.
    pub std_dev: f64,
    /// Number of (target-attribute) samples the distribution was fitted on.
    pub n: usize,
}

impl ScoreDistribution {
    /// Fit the distribution to a set of raw scores.
    pub fn from_scores(scores: &[f64]) -> ScoreDistribution {
        let m = Moments::from_samples(scores.iter().copied());
        ScoreDistribution { mean: m.mean(), std_dev: m.population_std_dev(), n: scores.len() }
    }

    /// Confidence of a raw score under this distribution: Φ((score − μ)/σ).
    ///
    /// With a single sample or zero variance the distribution is degenerate;
    /// scores above the mean get full confidence, scores at the mean get 0.5
    /// and scores below get none — the same tie-breaking [`z_score`] applies
    /// generally.
    pub fn confidence(&self, score: f64) -> f64 {
        if self.n <= 1 {
            // A single target attribute gives no distribution to compare
            // against; fall back to the raw score so that something sensible
            // is still reported.
            return score.clamp(0.0, 1.0);
        }
        normal_cdf(z_score(score, self.mean, self.std_dev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_matches_moments() {
        let d = ScoreDistribution::from_scores(&[0.2, 0.4, 0.6, 0.8]);
        assert!((d.mean - 0.5).abs() < 1e-12);
        assert!(d.std_dev > 0.2 && d.std_dev < 0.24);
        assert_eq!(d.n, 4);
    }

    #[test]
    fn confidence_orders_scores() {
        let d = ScoreDistribution::from_scores(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let low = d.confidence(0.1);
        let mid = d.confidence(0.3);
        let high = d.confidence(0.9);
        assert!(low < mid && mid < high);
        assert!((mid - 0.5).abs() < 1e-9);
        assert!(high > 0.95);
    }

    #[test]
    fn outlier_score_is_high_confidence() {
        // One target attribute clearly stands out from the rest.
        let d = ScoreDistribution::from_scores(&[0.05, 0.1, 0.08, 0.07, 0.9]);
        assert!(d.confidence(0.9) > 0.9);
        assert!(d.confidence(0.08) < 0.6);
    }

    #[test]
    fn degenerate_distributions() {
        // Single sample: confidence falls back to the raw score.
        let single = ScoreDistribution::from_scores(&[0.7]);
        assert!((single.confidence(0.7) - 0.7).abs() < 1e-12);
        assert_eq!(single.confidence(1.5), 1.0);

        // Zero variance with several samples: above mean → 1, at mean → 0.5.
        let flat = ScoreDistribution::from_scores(&[0.3, 0.3, 0.3]);
        assert!(flat.confidence(0.5) > 0.999);
        assert!((flat.confidence(0.3) - 0.5).abs() < 1e-9);
        assert!(flat.confidence(0.1) < 0.001);
    }

    #[test]
    fn empty_scores_do_not_panic() {
        let d = ScoreDistribution::from_scores(&[]);
        assert_eq!(d.n, 0);
        assert_eq!(d.confidence(0.4), 0.4);
    }
}
