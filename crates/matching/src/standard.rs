//! `StandardMatch` — the black-box, instance-based schema matcher.
//!
//! The contextual machinery of `cxm-core` treats standard matching "largely as
//! a black box". The interface it needs is:
//!
//! * [`StandardMatcher::match_table`] — `StandardMatch(RS, ℛT, τ)`: prototype
//!   matches between one source table and every table of the target schema,
//!   thresholded at τ;
//! * [`StandardMatcher::match_databases`] — the same over every source table;
//! * [`StandardMatcher::rescore`] — `ScoreMatch(m′)`: re-evaluate the quality of
//!   a match when the source sample is restricted to a candidate view, reusing
//!   the per-(source attribute, matcher) score distributions captured during
//!   standard matching so that the new confidence is comparable to the old one.
//!
//! ## Sharded execution
//!
//! The per-source-table `StandardMatch` runs are independent of one another
//! (the per-attribute score distributions are keyed by the qualified source
//! attribute), so [`StandardMatcher::match_databases`] shards them across
//! cores: the target column batch is extracted and profiled **once** for the
//! whole run ([`ColumnData::all_from_database`]), every shard scores against
//! the same shared batch, and the per-table [`MatchingOutcome`]s are merged in
//! source-table order so the output is byte-identical to the serial loop
//! (retained as [`StandardMatcher::match_databases_serial`] for equivalence
//! tests and benches).

use std::collections::BTreeMap;

use cxm_relational::{AttrRef, Database, Table};
use rayon::prelude::*;

use crate::column::ColumnData;
use crate::combine::MatcherEnsemble;
use crate::confidence::ScoreDistribution;
use crate::index::{telemetry as index_telemetry, GramIndex};
use crate::match_types::{Match, MatchList};
use crate::matcher::PairHint;

/// Configuration of the standard matcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchingConfig {
    /// Confidence threshold τ for accepting a prototype match (§3.1; the
    /// experiments default to 0.5).
    pub tau: f64,
    /// Minimum number of sample values a source column must have for instance
    /// evidence to be considered at all (guards against empty views).
    pub min_sample: usize,
}

impl Default for MatchingConfig {
    fn default() -> Self {
        MatchingConfig { tau: 0.5, min_sample: 1 }
    }
}

impl MatchingConfig {
    /// Create a config with the given τ and default remaining parameters.
    pub fn with_tau(tau: f64) -> Self {
        MatchingConfig { tau, ..Default::default() }
    }
}

/// The outcome of a standard matching run: accepted matches, the full score
/// matrix, and the per-(source attribute, matcher) score distributions needed
/// to re-score view-restricted samples later.
#[derive(Debug, Default)]
pub struct MatchingOutcome {
    /// Matches whose confidence reached τ — the prototype list `M`.
    pub accepted: MatchList,
    /// Every scored (source, target) pair regardless of threshold.
    pub all_pairs: MatchList,
    /// Per (source attribute, matcher name) raw-score distribution. Ordered
    /// so that merging shards and any future serialization of the calibration
    /// data are independent of hasher state (D001).
    distributions: BTreeMap<(AttrRef, &'static str), ScoreDistribution>,
}

impl MatchingOutcome {
    /// The distribution of a matcher's scores for one source attribute, if the
    /// attribute was part of this matching run.
    pub fn distribution(
        &self,
        source: &AttrRef,
        matcher: &'static str,
    ) -> Option<&ScoreDistribution> {
        self.distributions.get(&(source.clone(), matcher))
    }

    /// The accepted matches that originate from the given source table.
    pub fn accepted_from(&self, source_table: &str) -> Vec<&Match> {
        self.accepted.iter().filter(|m| m.base_table == source_table).collect()
    }

    /// The confidence of a specific (source, target) pair, if it was scored.
    pub fn confidence_of(&self, source: &AttrRef, target: &AttrRef) -> Option<f64> {
        self.all_pairs
            .iter()
            .find(|m| &m.source == source && &m.target == target)
            .map(|m| m.confidence)
    }

    /// Merge another outcome into this one (used to combine per-table shards).
    ///
    /// Score-distribution keys are `(qualified source attribute, matcher)`, so
    /// outcomes from distinct source tables are disjoint by construction.
    /// Merging two runs over the *same* table would silently overwrite the
    /// calibration data `rescore` depends on — that is a caller bug, caught
    /// here in debug builds.
    pub fn merge(&mut self, other: MatchingOutcome) {
        self.accepted.extend(other.accepted);
        self.all_pairs.extend(other.all_pairs);
        for (key, dist) in other.distributions {
            debug_assert!(
                !self.distributions.contains_key(&key),
                "MatchingOutcome::merge: duplicate score-distribution key \
                 ({}, {:?}) — merged shards must cover disjoint source tables",
                key.0,
                key.1,
            );
            self.distributions.insert(key, dist);
        }
    }
}

/// The standard schema matcher: an ensemble of matchers plus a configuration.
#[derive(Debug)]
pub struct StandardMatcher {
    ensemble: MatcherEnsemble,
    config: MatchingConfig,
}

impl StandardMatcher {
    /// Create a matcher with the standard ensemble and the given config.
    pub fn new(config: MatchingConfig) -> Self {
        StandardMatcher { ensemble: MatcherEnsemble::standard(), config }
    }

    /// Create a matcher with default configuration (τ = 0.5).
    pub fn with_defaults() -> Self {
        StandardMatcher::new(MatchingConfig::default())
    }

    /// Create a matcher with a custom ensemble.
    pub fn with_ensemble(ensemble: MatcherEnsemble, config: MatchingConfig) -> Self {
        StandardMatcher { ensemble, config }
    }

    /// A matcher with the standard weights but the instance matchers pinned
    /// to the legacy `BTreeMap`/`BTreeSet` kernels
    /// ([`MatcherEnsemble::standard_legacy`]). Kept as the reference
    /// implementation for kernel-equivalence tests and the
    /// `interned_kernels` bench; production paths use
    /// [`StandardMatcher::new`], whose instance matchers score through the
    /// interned merge-join kernels of [`cxm_matching::intern`](crate::intern).
    #[doc(hidden)]
    pub fn with_legacy_kernels(config: MatchingConfig) -> Self {
        StandardMatcher { ensemble: MatcherEnsemble::standard_legacy(), config }
    }

    /// The active configuration.
    pub fn config(&self) -> MatchingConfig {
        self.config
    }

    /// `StandardMatch(RS, ℛT, τ)` for a single source table: score every source
    /// attribute against every target attribute of every target table,
    /// normalize per source attribute, and accept pairs at confidence ≥ τ.
    pub fn match_table(&self, source: &Table, target: &Database) -> MatchingOutcome {
        let target_cols = ColumnData::all_from_database(target);
        self.match_table_with_targets(source, &target_cols)
    }

    /// [`StandardMatcher::match_table`] against a pre-extracted target column
    /// batch. Callers matching several source tables against the same target
    /// schema build the batch once with [`ColumnData::all_from_database`] so
    /// the target columns' memoized matcher profiles are computed exactly once
    /// for the whole run instead of once per source table.
    pub fn match_table_with_targets(
        &self,
        source: &Table,
        target_cols: &[ColumnData],
    ) -> MatchingOutcome {
        let source_cols = ColumnData::all_from_table(source);
        self.match_columns(&source_cols, target_cols)
    }

    /// `StandardMatch` over every table of the source database, sharded across
    /// cores: one task per source table, all scoring against one shared target
    /// column batch, merged in source-table order (byte-identical to
    /// [`StandardMatcher::match_databases_serial`]).
    pub fn match_databases(&self, source: &Database, target: &Database) -> MatchingOutcome {
        let target_cols = ColumnData::all_from_database(target);
        self.match_databases_with_targets(source, &target_cols)
    }

    /// [`StandardMatcher::match_databases`] against a pre-extracted target
    /// column batch. Long-lived callers (the match service's warm catalog)
    /// hoist the batch once across *many* runs instead of once per run; the
    /// batch must cover the target schema in
    /// [`ColumnData::all_from_database`] order.
    pub fn match_databases_with_targets(
        &self,
        source: &Database,
        target_cols: &[ColumnData],
    ) -> MatchingOutcome {
        let tables: Vec<&Table> = source.tables().collect();
        let shards: Vec<MatchingOutcome> = tables
            .par_iter()
            .with_min_len(1)
            .map(|table| self.match_table_with_targets(table, target_cols))
            .collect();
        let mut outcome = MatchingOutcome::default();
        for shard in shards {
            outcome.merge(shard);
        }
        outcome
    }

    /// The serial per-table loop [`StandardMatcher::match_databases`] replaced:
    /// one `match_table` call per source table, re-extracting (and thereby
    /// re-profiling) the entire target column batch every iteration. Kept as
    /// the reference implementation for equivalence tests and the
    /// `sharded_standard_match` bench.
    #[doc(hidden)]
    pub fn match_databases_serial(&self, source: &Database, target: &Database) -> MatchingOutcome {
        let mut outcome = MatchingOutcome::default();
        for table in source.tables() {
            outcome.merge(self.match_table(table, target));
        }
        outcome
    }

    /// Core scoring routine over explicit column sets.
    pub fn match_columns(
        &self,
        source_cols: &[ColumnData],
        target_cols: &[ColumnData],
    ) -> MatchingOutcome {
        self.match_columns_with(source_cols, target_cols, None)
    }

    /// [`StandardMatcher::match_columns`] consulting an inverted gram index
    /// over the target batch: one TAAT scan per source column replaces the
    /// O(T) merge-joins — every pair's cosine is served straight from the
    /// scan's exact dot product, pairs proven zero skip their instance
    /// kernels entirely (see [`crate::index`] for the admissibility
    /// argument). Output is **byte-identical** to the unindexed path. An
    /// index that does not describe `target_cols`
    /// ([`GramIndex::matches_batch`]) is ignored.
    pub fn match_columns_indexed(
        &self,
        source_cols: &[ColumnData],
        target_cols: &[ColumnData],
        index: Option<&GramIndex>,
    ) -> MatchingOutcome {
        let index = index.filter(|idx| idx.matches_batch(target_cols));
        self.match_columns_with(source_cols, target_cols, index)
    }

    /// A TAAT scan forces the source column's interned artifacts, so only
    /// scan when the exact path would build them anyway: the source shares
    /// the index's interner and at least one pair is q-gram applicable
    /// (mirrors [`crate::instance::QGramMatcher::applicable`]).
    fn scannable(s: &ColumnData, target_cols: &[ColumnData], index: &GramIndex) -> bool {
        s.interner().token() == index.interner_token()
            && !s.is_empty()
            && target_cols
                .iter()
                .any(|t| !t.is_empty() && (!s.looks_numeric() || !t.looks_numeric()))
    }

    fn match_columns_with(
        &self,
        source_cols: &[ColumnData],
        target_cols: &[ColumnData],
        index: Option<&GramIndex>,
    ) -> MatchingOutcome {
        let mut outcome = MatchingOutcome::default();
        if target_cols.is_empty() {
            return outcome;
        }
        for s in source_cols {
            let scan = index.and_then(|idx| {
                Self::scannable(s, target_cols, idx).then(|| {
                    let scan = idx.scan(&s.qgram3_ids(), &s.value_ids());
                    index_telemetry::record_scan(scan.len(), scan.surviving());
                    scan
                })
            });
            // Raw score matrix for this source attribute: target-major flat
            // layout (pair `(t_idx, m_idx)` at `t_idx * m_len + m_idx`) so the
            // pair grid costs one allocation per source column, not one per
            // pair.
            let m_len = self.ensemble.len();
            let mut raw: Vec<Option<f64>> = Vec::with_capacity(m_len * target_cols.len());
            for (t_idx, t) in target_cols.iter().enumerate() {
                let hint = scan.as_ref().map(|scan| scan.hint(t_idx));
                self.ensemble.raw_scores_into(s, t, hint, &mut raw);
            }

            // Fit the per-matcher distribution over all target attributes.
            let mut dists: Vec<ScoreDistribution> = Vec::with_capacity(m_len);
            let mut scores: Vec<f64> = Vec::with_capacity(target_cols.len());
            for m_idx in 0..m_len {
                scores.clear();
                scores.extend(raw.iter().skip(m_idx).step_by(m_len).filter_map(|r| *r));
                dists.push(ScoreDistribution::from_scores(&scores));
            }
            for (m_idx, dist) in dists.iter().enumerate() {
                outcome.distributions.insert((s.attr.clone(), self.ensemble.names()[m_idx]), *dist);
            }

            // Convert to confidences and combine. Φ is the costliest
            // arithmetic of the conversion, and raw scores repeat massively
            // across the pair grid (every disjoint or index-pruned pair
            // scores exactly 0.0; name scores take one value per distinct
            // attribute name), so each matcher gets a small score → Φ memo.
            // A hit returns the identical `f64`, so output is unchanged bit
            // for bit; the cap keeps the linear probe cheaper than Φ even
            // when a matcher's scores never repeat.
            const CONF_CACHE_CAP: usize = 32;
            let mut conf_cache: Vec<Vec<(u64, f64)>> = vec![Vec::new(); m_len];
            let mut confs: Vec<Option<f64>> = Vec::with_capacity(m_len);
            for (t_idx, t) in target_cols.iter().enumerate() {
                let row = &raw[t_idx * m_len..(t_idx + 1) * m_len];
                confs.clear();
                confs.extend(row.iter().enumerate().map(|(m_idx, r)| {
                    r.map(|score| {
                        let bits = score.to_bits();
                        let cache = &mut conf_cache[m_idx];
                        match cache.iter().find(|(b, _)| *b == bits) {
                            Some(&(_, conf)) => conf,
                            None => {
                                let conf = dists[m_idx].confidence(score);
                                if cache.len() < CONF_CACHE_CAP {
                                    cache.push((bits, conf));
                                }
                                conf
                            }
                        }
                    })
                }));
                let confidence = self.ensemble.combine(&confs);
                let score = self.ensemble.average_raw(row);
                let m = Match::standard(s.attr.clone(), t.attr.clone(), score, confidence);
                if confidence >= self.config.tau && s.len() >= self.config.min_sample {
                    outcome.accepted.push(m.clone());
                }
                outcome.all_pairs.push(m);
            }
        }
        outcome
    }

    /// `ScoreMatch(m′)`: the confidence of a match between a *restricted*
    /// source sample (a candidate view's column) and a target column, measured
    /// against the score distribution of the original, unrestricted source
    /// attribute `base_attr` captured in `outcome`.
    ///
    /// Returns `(raw_score, confidence)`. If the restricted column is empty the
    /// result is `(0, 0)` — an empty view supports nothing.
    pub fn rescore(
        &self,
        outcome: &MatchingOutcome,
        restricted: &ColumnData,
        base_attr: &AttrRef,
        target: &ColumnData,
    ) -> (f64, f64) {
        self.rescore_hinted(outcome, restricted, base_attr, target, None)
    }

    /// [`StandardMatcher::rescore`] with an optional index-provided hint
    /// (exact scan quantities) for the (restricted, target) pair; `None` (or
    /// a hint proving nothing) scores exactly. Bit-identical to `rescore` by
    /// the argument in [`crate::index`].
    pub fn rescore_hinted(
        &self,
        outcome: &MatchingOutcome,
        restricted: &ColumnData,
        base_attr: &AttrRef,
        target: &ColumnData,
        hint: Option<PairHint>,
    ) -> (f64, f64) {
        if restricted.is_empty() {
            return (0.0, 0.0);
        }
        let raw = match hint {
            Some(hint) => self.ensemble.raw_scores_hinted(restricted, target, hint),
            None => self.ensemble.raw_scores(restricted, target),
        };
        let confs: Vec<Option<f64>> = raw
            .iter()
            .enumerate()
            .map(|(m_idx, r)| {
                r.map(|score| {
                    match outcome.distribution(base_attr, self.ensemble.names()[m_idx]) {
                        Some(dist) => dist.confidence(score),
                        // No stored distribution (e.g. the matcher was never
                        // applicable during standard matching): fall back to the
                        // raw score.
                        None => score,
                    }
                })
            })
            .collect();
        (self.ensemble.average_raw(&raw), self.ensemble.combine(&confs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{tuple, Attribute, Condition, TableSchema, ViewDef};

    /// A miniature version of the paper's Figure 1 scenario.
    fn source_db() -> Database {
        let inv = Table::with_rows(
            TableSchema::new(
                "inv",
                vec![
                    Attribute::int("id"),
                    Attribute::text("name"),
                    Attribute::int("type"),
                    Attribute::text("code"),
                    Attribute::text("descr"),
                ],
            ),
            vec![
                tuple![0, "leaves of grass", 1, "0195128", "hardcover"],
                tuple![1, "the white album", 2, "B002UAXCD1", "audio cd"],
                tuple![2, "heart of darkness", 1, "0486611", "paperback"],
                tuple![3, "wasteland", 1, "0393995", "paperback"],
                tuple![4, "hotel california", 2, "B002GVOCD9", "elektra cd"],
                tuple![5, "middlemarch", 1, "0141439", "hardcover"],
                tuple![6, "kind of blue", 2, "B000002CD3", "columbia cd"],
                tuple![7, "moby dick", 1, "0142437", "paperback"],
            ],
        )
        .unwrap();
        Database::new("RS").with_table(inv)
    }

    fn target_db() -> Database {
        let book = Table::with_rows(
            TableSchema::new(
                "book",
                vec![
                    Attribute::int("id"),
                    Attribute::text("title"),
                    Attribute::text("isbn"),
                    Attribute::text("format"),
                ],
            ),
            vec![
                tuple![50, "the historian", "0316011770", "hardcover"],
                tuple![51, "lance armstrong's war", "0486400611", "hardcover"],
                tuple![52, "to the lighthouse", "0156907399", "paperback"],
                tuple![53, "war and peace", "1400079985", "paperback"],
            ],
        )
        .unwrap();
        let music = Table::with_rows(
            TableSchema::new(
                "music",
                vec![
                    Attribute::int("id"),
                    Attribute::text("title"),
                    Attribute::text("asin"),
                    Attribute::text("label"),
                ],
            ),
            vec![
                tuple![80, "x&y", "B0006L16CD8", "capitol cd"],
                tuple![81, "moonlight sonatas", "B0009PLMCD4", "sony cd"],
                tuple![82, "abbey road", "B0025KVLCD6", "apple cd"],
            ],
        )
        .unwrap();
        Database::new("RT").with_table(book).with_table(music)
    }

    #[test]
    fn standard_match_finds_name_to_title() {
        let matcher = StandardMatcher::with_defaults();
        let outcome = matcher.match_databases(&source_db(), &target_db());
        assert!(!outcome.accepted.is_empty());
        // name → book.title or music.title should be among the accepted matches.
        let has_title_match = outcome
            .accepted
            .iter()
            .any(|m| m.source.attribute == "name" && m.target.attribute == "title");
        assert!(has_title_match, "accepted = {:?}", outcome.accepted);
        // Every accepted match clears the threshold.
        assert!(outcome.accepted.iter().all(|m| m.confidence >= 0.5));
        // all_pairs covers the full cross product of source × target attributes.
        assert_eq!(outcome.all_pairs.len(), 5 * 8);
    }

    #[test]
    fn lower_tau_accepts_more_matches() {
        let strict = StandardMatcher::new(MatchingConfig::with_tau(0.9));
        let lenient = StandardMatcher::new(MatchingConfig::with_tau(0.1));
        let s = strict.match_databases(&source_db(), &target_db());
        let l = lenient.match_databases(&source_db(), &target_db());
        assert!(l.accepted.len() >= s.accepted.len());
    }

    #[test]
    fn distributions_are_recorded_per_source_attribute() {
        let matcher = StandardMatcher::with_defaults();
        let outcome = matcher.match_databases(&source_db(), &target_db());
        let attr = AttrRef::new("inv", "name");
        let d = outcome.distribution(&attr, "qgram").unwrap();
        assert!(d.n > 0);
        assert!(outcome.distribution(&attr, "nonexistent").is_none());
    }

    #[test]
    fn accepted_from_filters_by_base_table() {
        let matcher = StandardMatcher::with_defaults();
        let outcome = matcher.match_databases(&source_db(), &target_db());
        assert_eq!(outcome.accepted_from("inv").len(), outcome.accepted.len());
        assert!(outcome.accepted_from("other").is_empty());
    }

    #[test]
    fn confidence_of_reports_scored_pairs() {
        let matcher = StandardMatcher::with_defaults();
        let outcome = matcher.match_databases(&source_db(), &target_db());
        let c = outcome.confidence_of(&AttrRef::new("inv", "name"), &AttrRef::new("book", "title"));
        assert!(c.is_some());
        assert!(outcome
            .confidence_of(&AttrRef::new("inv", "nope"), &AttrRef::new("book", "title"))
            .is_none());
    }

    #[test]
    fn rescoring_a_well_chosen_view_raises_confidence() {
        // Restricting inv.descr to the book subset should match book.format
        // better than the full mixed column does.
        let matcher = StandardMatcher::with_defaults();
        let source = source_db();
        let target = target_db();
        let outcome = matcher.match_databases(&source, &target);

        let base_attr = AttrRef::new("inv", "descr");
        let full_col = ColumnData::from_table(source.table("inv").unwrap(), "descr").unwrap();
        let target_col = ColumnData::from_table(target.table("book").unwrap(), "format").unwrap();
        let (_, full_conf) = matcher.rescore(&outcome, &full_col, &base_attr, &target_col);

        let view = ViewDef::select_only("inv[type=1]", "inv", Condition::eq("type", 1));
        let restricted_table = view.evaluate(&source).unwrap();
        let restricted = ColumnData::from_table(&restricted_table, "descr").unwrap();
        let (_, view_conf) = matcher.rescore(&outcome, &restricted, &base_attr, &target_col);
        assert!(
            view_conf >= full_conf,
            "restricting to books should not hurt the format match: {view_conf} vs {full_conf}"
        );

        // Conversely, restricting to CDs should not beat the book-restricted view.
        let cd_view = ViewDef::select_only("inv[type=2]", "inv", Condition::eq("type", 2));
        let cd_table = cd_view.evaluate(&source).unwrap();
        let cd_col = ColumnData::from_table(&cd_table, "descr").unwrap();
        let (_, cd_conf) = matcher.rescore(&outcome, &cd_col, &base_attr, &target_col);
        assert!(view_conf > cd_conf, "book view {view_conf} should beat cd view {cd_conf}");
    }

    #[test]
    fn rescore_empty_view_is_zero() {
        let matcher = StandardMatcher::with_defaults();
        let source = source_db();
        let target = target_db();
        let outcome = matcher.match_databases(&source, &target);
        let empty =
            ColumnData::owned(AttrRef::new("v", "descr"), cxm_relational::DataType::Text, vec![]);
        let target_col = ColumnData::from_table(target.table("book").unwrap(), "format").unwrap();
        let (s, c) = matcher.rescore(&outcome, &empty, &AttrRef::new("inv", "descr"), &target_col);
        assert_eq!((s, c), (0.0, 0.0));
    }

    /// A second source table so the sharded path has more than one shard.
    fn multi_source_db() -> Database {
        let media = Table::with_rows(
            TableSchema::new(
                "media",
                vec![Attribute::text("title"), Attribute::text("sku"), Attribute::text("kind")],
            ),
            vec![
                tuple!["blood on the tracks", "B000002KD7", "columbia cd"],
                tuple!["infinite jest", "0316921", "paperback"],
                tuple!["blue", "B000002KF2", "reprise cd"],
                tuple!["beloved", "1400033", "hardcover"],
            ],
        )
        .unwrap();
        source_db().with_table(media)
    }

    #[test]
    fn sharded_match_databases_equals_serial() {
        let matcher = StandardMatcher::with_defaults();
        let source = multi_source_db();
        let target = target_db();
        let sharded = matcher.match_databases(&source, &target);
        let serial = matcher.match_databases_serial(&source, &target);
        assert_eq!(sharded.accepted, serial.accepted);
        assert_eq!(sharded.all_pairs, serial.all_pairs);
        assert_eq!(sharded.distributions.len(), serial.distributions.len());
        for (key, dist) in &serial.distributions {
            assert_eq!(sharded.distributions.get(key), Some(dist), "distribution for {key:?}");
        }
        // Shards from both tables contributed.
        assert!(sharded.all_pairs.iter().any(|m| m.base_table == "inv"));
        assert!(sharded.all_pairs.iter().any(|m| m.base_table == "media"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duplicate score-distribution key")]
    fn merging_overlapping_outcomes_panics_in_debug() {
        let matcher = StandardMatcher::with_defaults();
        let source = source_db();
        let target = target_db();
        let mut first = matcher.match_databases(&source, &target);
        let second = matcher.match_databases(&source, &target);
        first.merge(second);
    }

    #[test]
    fn indexed_match_columns_is_byte_identical_to_unindexed() {
        let matcher = StandardMatcher::with_defaults();
        let source = multi_source_db();
        let target = target_db();
        let source_cols: Vec<ColumnData> = source
            .tables()
            .flat_map(|t| {
                t.schema()
                    .attributes()
                    .iter()
                    .map(|a| ColumnData::shared_from_table(t, &a.name).unwrap())
                    .collect::<Vec<_>>()
            })
            .collect();
        let target_cols: Vec<ColumnData> = target
            .tables()
            .flat_map(|t| {
                t.schema()
                    .attributes()
                    .iter()
                    .map(|a| {
                        let fp = t.column_fingerprint(&a.name).unwrap();
                        ColumnData::shared_from_table(t, &a.name).unwrap().with_fingerprint(fp)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let index = crate::index::GramIndex::build(&target_cols);
        let plain = matcher.match_columns(&source_cols, &target_cols);
        let pruned_before = crate::intern::telemetry::pruned_kernel_scores();
        let indexed = matcher.match_columns_indexed(&source_cols, &target_cols, Some(&index));
        assert!(
            crate::intern::telemetry::pruned_kernel_scores() > pruned_before,
            "the mixed isbn/title catalog must let the index prune something"
        );
        assert_eq!(format!("{:?}", plain.accepted), format!("{:?}", indexed.accepted));
        assert_eq!(format!("{:?}", plain.all_pairs), format!("{:?}", indexed.all_pairs));
        for (key, dist) in &plain.distributions {
            assert_eq!(indexed.distributions.get(key), Some(dist), "distribution for {key:?}");
        }
        assert_eq!(plain.distributions.len(), indexed.distributions.len());
        // A stale index (built over a different batch) is ignored, not trusted.
        let ignored = matcher.match_columns_indexed(&source_cols, &target_cols[..3], Some(&index));
        let exact = matcher.match_columns(&source_cols, &target_cols[..3]);
        assert_eq!(format!("{:?}", ignored.all_pairs), format!("{:?}", exact.all_pairs));
    }

    #[test]
    fn empty_target_schema_produces_no_matches() {
        let matcher = StandardMatcher::with_defaults();
        let outcome = matcher.match_databases(&source_db(), &Database::new("RT"));
        assert!(outcome.accepted.is_empty());
        assert!(outcome.all_pairs.is_empty());
    }
}
