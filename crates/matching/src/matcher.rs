//! The matcher interface.

use crate::column::ColumnData;

/// A single matching algorithm ("matcher" in the paper's terminology, §2.3)
/// that scores the similarity of a source column against a target column.
///
/// Raw scores are in `[0, 1]` by convention but are *not* comparable across
/// matchers — that is exactly why the standard matcher normalizes them into
/// confidences per source attribute before combining.
pub trait Matcher: Send + Sync {
    /// A short, stable name for reports and weight configuration.
    fn name(&self) -> &'static str;

    /// Raw similarity of the two columns in `[0, 1]`.
    fn score(&self, source: &ColumnData, target: &ColumnData) -> f64;

    /// Whether this matcher can produce a meaningful score for the pair.
    /// Inapplicable matchers are skipped rather than contributing zeros, so a
    /// numeric matcher does not drag down text-only pairs and vice versa.
    fn applicable(&self, source: &ColumnData, target: &ColumnData) -> bool {
        let _ = (source, target);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{AttrRef, DataType};

    struct ConstMatcher(f64);

    impl Matcher for ConstMatcher {
        fn name(&self) -> &'static str {
            "const"
        }
        fn score(&self, _source: &ColumnData, _target: &ColumnData) -> f64 {
            self.0
        }
    }

    fn col(name: &str) -> ColumnData<'static> {
        ColumnData::owned(AttrRef::new("t", name), DataType::Text, vec![])
    }

    #[test]
    fn trait_object_dispatch() {
        let m: Box<dyn Matcher> = Box::new(ConstMatcher(0.7));
        assert_eq!(m.name(), "const");
        assert_eq!(m.score(&col("a"), &col("b")), 0.7);
        assert!(m.applicable(&col("a"), &col("b")));
    }
}
