//! The matcher interface.

use crate::column::ColumnData;

/// What an index scan has already computed about a column pair (see
/// [`crate::index::GramIndex`]): the exact interned-kernel quantities a TAAT
/// pass produces as a by-product, letting [`Matcher::score_with_hint`] serve
/// a score without re-running the merge-join — and skip it entirely where
/// the quantity is zero — without changing a single output bit. The default
/// hint proves nothing and leaves every matcher on its exact path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairHint {
    /// The **exact** dot product of the pair's interned 3-gram profiles, as
    /// accumulated term-at-a-time by the scan (bit-equal to the merge-join's
    /// dot: every product and partial sum is an exact integer, so the
    /// grouping order is immaterial). `None` when the scan did not cover the
    /// pair; `Some(0.0)` proves the cosine kernel would return exactly
    /// `0.0`; a nonzero dot lets the kernel's `dot / (‖a‖·‖b‖)` be
    /// reproduced without walking the profiles.
    pub qgram_dot: Option<f64>,
    /// The interned distinct-value sets are disjoint, so the Jaccard kernel
    /// would return exactly `+0.0`.
    pub overlap_zero: bool,
}

impl PairHint {
    /// True when the hint proves nothing — every matcher runs exactly.
    pub fn prunes_nothing(&self) -> bool {
        self.qgram_dot.is_none() && !self.overlap_zero
    }

    /// True when the scan proved the 3-gram profiles disjoint (dot exactly
    /// zero), i.e. the pair is prunable rather than merely servable.
    pub fn qgram_zero(&self) -> bool {
        self.qgram_dot == Some(0.0)
    }
}

/// A single matching algorithm ("matcher" in the paper's terminology, §2.3)
/// that scores the similarity of a source column against a target column.
///
/// Raw scores are in `[0, 1]` by convention but are *not* comparable across
/// matchers — that is exactly why the standard matcher normalizes them into
/// confidences per source attribute before combining.
pub trait Matcher: Send + Sync {
    /// A short, stable name for reports and weight configuration.
    fn name(&self) -> &'static str;

    /// Raw similarity of the two columns in `[0, 1]`.
    fn score(&self, source: &ColumnData, target: &ColumnData) -> f64;

    /// [`Matcher::score`] with index-provided exact kernel quantities. A
    /// matcher whose kernel the hint covers may serve the score from the
    /// hint without touching the columns; the default ignores the hint and
    /// scores exactly.
    /// Implementations must be **bit-identical** to [`Matcher::score`] — the
    /// hint is a shortcut, never an approximation — and must not consult the
    /// hint for applicability decisions.
    fn score_with_hint(&self, source: &ColumnData, target: &ColumnData, hint: PairHint) -> f64 {
        let _ = hint;
        self.score(source, target)
    }

    /// Whether this matcher can produce a meaningful score for the pair.
    /// Inapplicable matchers are skipped rather than contributing zeros, so a
    /// numeric matcher does not drag down text-only pairs and vice versa.
    fn applicable(&self, source: &ColumnData, target: &ColumnData) -> bool {
        let _ = (source, target);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{AttrRef, DataType};

    struct ConstMatcher(f64);

    impl Matcher for ConstMatcher {
        fn name(&self) -> &'static str {
            "const"
        }
        fn score(&self, _source: &ColumnData, _target: &ColumnData) -> f64 {
            self.0
        }
    }

    fn col(name: &str) -> ColumnData<'static> {
        ColumnData::owned(AttrRef::new("t", name), DataType::Text, vec![])
    }

    #[test]
    fn trait_object_dispatch() {
        let m: Box<dyn Matcher> = Box::new(ConstMatcher(0.7));
        assert_eq!(m.name(), "const");
        assert_eq!(m.score(&col("a"), &col("b")), 0.7);
        assert!(m.applicable(&col("a"), &col("b")));
        // The default hinted path ignores even a fully-pruning hint.
        let hint = PairHint { qgram_dot: Some(0.0), overlap_zero: true };
        assert!(hint.qgram_zero());
        assert!(!hint.prunes_nothing());
        assert_eq!(m.score_with_hint(&col("a"), &col("b"), hint), 0.7);
        assert!(PairHint::default().prunes_nothing());
    }
}
