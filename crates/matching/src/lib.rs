//! # cxm-matching
//!
//! The *standard* (non-contextual) schema matching system that the contextual
//! matcher of `cxm-core` builds on (*Putting Context into Schema Matching*,
//! Bohannon et al., VLDB 2006, §2.3).
//!
//! Following the LSD / iMAP / COMA lineage the paper cites, the system is an
//! ensemble of *matchers*, each producing a raw similarity score for a
//! (source attribute, target attribute) pair:
//!
//! * a **name matcher** over attribute names ([`name::NameMatcher`]),
//! * a **q-gram instance matcher** over value profiles
//!   ([`instance::QGramMatcher`]),
//! * a **value-overlap matcher** over distinct value sets
//!   ([`instance::ValueOverlapMatcher`]),
//! * a **numeric-distribution matcher** ([`numeric::NumericMatcher`]).
//!
//! Per §2.3, "for a single matcher m and source attribute a, the distribution
//! of scores to all target attributes are treated as samples of a normal
//! distribution, allowing the raw scores given by m for a to be converted into
//! confidence scores"; the per-matcher confidences are then combined with
//! weights. [`standard::StandardMatcher`] implements `StandardMatch(RS, RT, τ)`
//! and retains the per-attribute score distributions so that `ScoreMatch` can
//! later re-score a *view-restricted* sample against the same distribution —
//! exactly what `ContextMatch` needs.

pub mod column;
pub mod combine;
pub mod confidence;
pub mod index;
pub mod instance;
pub mod intern;
pub mod match_types;
pub mod matcher;
pub mod name;
pub mod numeric;
pub mod standard;

pub use column::{ColumnArtifacts, ColumnData};
pub use combine::MatcherEnsemble;
pub use confidence::ScoreDistribution;
pub use index::{CandidateScan, GramIndex};
pub use intern::telemetry::KernelCounters;
pub use intern::{GramInterner, InternedProfile, InternedValueSet};
pub use match_types::{Match, MatchList};
pub use matcher::{Matcher, PairHint};
pub use standard::{MatchingConfig, MatchingOutcome, StandardMatcher};
