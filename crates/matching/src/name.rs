//! Attribute-name similarity matcher.
//!
//! Schema-level evidence: attribute names like `title` / `name`, `isbn` /
//! `code` carry signal even before any instance data is examined. The score is
//! the maximum of a normalized-edit-distance similarity and a token-overlap
//! (Jaccard over camelCase / snake_case word splits) similarity.

use crate::column::ColumnData;
use crate::matcher::Matcher;

/// Matcher scoring attribute-name similarity.
#[derive(Debug, Clone, Default)]
pub struct NameMatcher;

impl NameMatcher {
    /// Create a name matcher.
    pub fn new() -> Self {
        NameMatcher
    }
}

/// Normalized Levenshtein similarity: `1 − dist / max_len` (1.0 for two empty
/// strings).
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_similarity_chars(&a, &b)
}

/// [`levenshtein_similarity`] over pre-split char sequences — the fast path
/// behind the matcher's memoized [`crate::column::NameKey`], which stores
/// each column name's chars once instead of re-splitting per scored pair.
/// Same arithmetic as the string form.
pub fn levenshtein_similarity_chars(a: &[char], b: &[char]) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

fn levenshtein(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP over a thread-local scratch row: the matcher runs once
    // per (source, target) pair of the full pair grid, where per-call
    // allocations dominate the tiny DP for realistic attribute names.
    thread_local! {
        static ROW: std::cell::RefCell<Vec<usize>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    ROW.with(|row| {
        let mut row = row.borrow_mut();
        row.clear();
        row.extend(0..=b.len());
        for (i, &ca) in a.iter().enumerate() {
            // `diag` carries the previous row's value at `j` (the deletion /
            // substitution diagonal); `row[j + 1]` still holds the previous
            // row's value until overwritten.
            let mut diag = row[0];
            row[0] = i + 1;
            for (j, &cb) in b.iter().enumerate() {
                let cost = if ca == cb { 0 } else { 1 };
                let next = (row[j + 1] + 1).min(row[j] + 1).min(diag + cost);
                diag = row[j + 1];
                row[j + 1] = next;
            }
        }
        row[b.len()]
    })
}

/// Split an identifier into lower-cased word tokens on case changes, digits
/// boundaries, underscores and other punctuation (`ItemType` → `item`, `type`).
pub fn identifier_tokens(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c.is_alphanumeric() {
            let boundary = c.is_uppercase()
                && i > 0
                && (chars[i - 1].is_lowercase() || chars[i - 1].is_numeric());
            if boundary && !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Jaccard similarity of the identifier token sets.
pub fn token_similarity(a: &str, b: &str) -> f64 {
    let ta: std::collections::BTreeSet<String> = identifier_tokens(a).into_iter().collect();
    let tb: std::collections::BTreeSet<String> = identifier_tokens(b).into_iter().collect();
    token_set_similarity(&ta, &tb)
}

/// Jaccard similarity of two already-tokenized identifier token sets (1.0
/// when both are empty, 0.0 when exactly one is). The single set-level
/// implementation behind both [`token_similarity`] and the matcher's
/// memoized [`crate::column::NameKey`] path, so the two cannot drift.
pub fn token_set_similarity(
    a: &std::collections::BTreeSet<String>,
    b: &std::collections::BTreeSet<String>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

impl Matcher for NameMatcher {
    fn name(&self) -> &'static str {
        "name"
    }

    fn score(&self, source: &ColumnData, target: &ColumnData) -> f64 {
        // The lowered name and its token set are memoized per column
        // ([`ColumnData::name_key`]), so a column scored against many
        // counterparts lowercases and tokenizes once, not once per pair.
        let a = source.name_key();
        let b = target.name_key();
        levenshtein_similarity_chars(&a.chars, &b.chars)
            .max(token_set_similarity(&a.tokens, &b.tokens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{AttrRef, DataType};

    fn col(name: &str) -> ColumnData<'static> {
        ColumnData::owned(AttrRef::new("t", name), DataType::Text, vec![])
    }

    #[test]
    fn identical_names_score_one() {
        let m = NameMatcher::new();
        assert_eq!(m.score(&col("price"), &col("price")), 1.0);
        assert_eq!(m.score(&col("Price"), &col("price")), 1.0);
    }

    #[test]
    fn similar_names_score_high_unrelated_low() {
        let m = NameMatcher::new();
        let similar = m.score(&col("ItemPrice"), &col("price"));
        let unrelated = m.score(&col("isbn"), &col("label"));
        assert!(similar > 0.4, "similar={similar}");
        assert!(unrelated < 0.4, "unrelated={unrelated}");
        assert!(similar > unrelated);
    }

    #[test]
    fn levenshtein_known_distances() {
        assert_eq!(levenshtein(&['a', 'b', 'c'], &['a', 'b', 'c']), 0);
        assert_eq!(
            levenshtein(&['k', 'i', 't', 't', 'e', 'n'], &['s', 'i', 't', 't', 'i', 'n', 'g']),
            3
        );
        assert_eq!(levenshtein(&[], &['a', 'b']), 2);
        assert!((levenshtein_similarity("", "") - 1.0).abs() < 1e-12);
        assert!((levenshtein_similarity("abc", "abd") - (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn identifier_token_splitting() {
        assert_eq!(identifier_tokens("ItemType"), vec!["item", "type"]);
        assert_eq!(identifier_tokens("item_type"), vec!["item", "type"]);
        assert_eq!(identifier_tokens("StockStatus2"), vec!["stock", "status2"]);
        assert_eq!(identifier_tokens(""), Vec::<String>::new());
    }

    #[test]
    fn memoized_name_key_matches_string_helpers() {
        // The matcher scores through the per-column memoized NameKey; the
        // result must be bit-identical to the direct helper computation on
        // the lowercased names (the pre-memoization arithmetic).
        let m = NameMatcher::new();
        for (x, y) in [
            ("ItemPrice", "price"),
            ("item_type", "ItemType"),
            ("isbn", "label"),
            ("", "x"),
            ("", ""),
        ] {
            let (a, b) = (x.to_ascii_lowercase(), y.to_ascii_lowercase());
            let expected = levenshtein_similarity(&a, &b).max(token_similarity(&a, &b));
            assert_eq!(m.score(&col(x), &col(y)).to_bits(), expected.to_bits(), "{x} vs {y}");
        }
        // The key itself is memoized: one Arc, shared across calls.
        let c = col("StockStatus2");
        assert!(std::sync::Arc::ptr_eq(&c.name_key(), &c.name_key()));
        assert_eq!(c.name_key().lowered, "stockstatus2");
    }

    #[test]
    fn token_similarity_matches_shared_words() {
        assert_eq!(token_similarity("item_type", "ItemType"), 1.0);
        assert!((token_similarity("item_type", "type") - 0.5).abs() < 1e-12);
        assert_eq!(token_similarity("isbn", "asin"), 0.0);
        assert_eq!(token_similarity("", ""), 1.0);
        assert_eq!(token_similarity("x", ""), 0.0);
    }
}
