//! `ClioQualTable` — contextual matching plus the extended mapping generator.
//!
//! §5.7: "we implement ClioQualTable, which modifies QualTable to include the
//! join rules discussed in Section 4.3. Keys are inferred based on sample
//! data." This module wires the whole pipeline together:
//!
//! 1. run `ContextMatch` with `QualTable` selection,
//! 2. treat the selected contextual matches as value correspondences from
//!    inferred views,
//! 3. mine keys / foreign keys on base tables, mine and propagate constraints
//!    onto the inferred views,
//! 4. build one logical table per target table with the association rules
//!    (including join 1–3),
//! 5. generate and execute the mapping queries, materializing a target
//!    instance from the source sample.
//!
//! The Grades experiments (Figures 19 and 21) call this entry point.

use std::collections::BTreeMap;

use cxm_core::{ContextMatchConfig, ContextMatchResult, ContextualMatcher, SelectionStrategy};
use cxm_relational::{ConstraintSet, Database, Result, ViewDef};

use crate::association::associate;
use crate::execute::execute_mapping;
use crate::mining::{mine_constraints, mine_view_constraints, MiningConfig};
use crate::propagation::propagate_constraints;
use crate::query::{MappingQuery, ValueCorrespondence};

/// Everything produced by a `ClioQualTable` run.
#[derive(Debug)]
pub struct ClioMapping {
    /// The contextual match result (selected matches, candidates, views, …).
    pub match_result: ContextMatchResult,
    /// The view definitions backing the selected contextual matches.
    pub views: Vec<ViewDef>,
    /// Constraints: declared/mined on base tables plus mined/propagated on views.
    pub constraints: ConstraintSet,
    /// One mapping query per target table that received correspondences.
    pub queries: Vec<MappingQuery>,
    /// The materialized target instance produced by executing the queries on
    /// the source sample.
    pub target_instance: Database,
}

impl ClioMapping {
    /// The mapping query for a particular target table, if one was generated.
    pub fn query_for(&self, target_table: &str) -> Option<&MappingQuery> {
        self.queries.iter().find(|q| q.target_table == target_table)
    }
}

/// Run the full `ClioQualTable` pipeline.
pub fn clio_qual_table(
    source: &Database,
    target: &Database,
    config: ContextMatchConfig,
) -> Result<ClioMapping> {
    // ClioQualTable is QualTable by definition.
    let config = config.with_selection(SelectionStrategy::QualTable);
    let match_result = ContextualMatcher::new(config).run(source, target)?;
    let views: Vec<ViewDef> = match_result.selected_view_defs().into_iter().cloned().collect();

    // Constraints: base tables first, then mined and propagated view constraints.
    let mining = MiningConfig::default();
    let mut constraints = mine_constraints(source, &mining);
    let view_mined = mine_view_constraints(source, &views, &constraints, &mining);
    constraints.extend(view_mined);
    let propagated = propagate_constraints(source, &views, &constraints);
    constraints.extend(propagated);

    // One mapping query per target table with correspondences.
    let mut queries = Vec::new();
    let mut target_instance = Database::new(format!("{}#mapped", target.name()));
    for target_table in target.tables() {
        // Best correspondence per target attribute (QualTable can emit several
        // views mapping onto the same target attribute under LateDisjuncts).
        let mut best: BTreeMap<String, &cxm_matching::Match> = BTreeMap::new();
        for m in match_result.selected.iter().filter(|m| m.target.table == target_table.name()) {
            let key = m.target.attribute.to_ascii_lowercase();
            match best.get(&key) {
                Some(existing) if existing.confidence >= m.confidence => {}
                _ => {
                    best.insert(key, m);
                }
            }
        }
        if best.is_empty() {
            continue;
        }
        let relations: Vec<String> = {
            let mut names: Vec<String> = best.values().map(|m| m.source.table.clone()).collect();
            names.sort();
            names.dedup();
            names
        };
        let correspondences: Vec<ValueCorrespondence> = best
            .values()
            .map(|m| ValueCorrespondence::new(m.source.clone(), m.target.clone()))
            .collect();
        let logical = associate(&relations, &views, &constraints);
        let query = MappingQuery::new(target_table.name(), logical, correspondences);
        let instance = execute_mapping(source, &views, &query, target_table.schema())?;
        target_instance.replace_table(instance);
        queries.push(query);
    }

    Ok(ClioMapping { match_result, views, constraints, queries, target_instance })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_core::ViewInferenceStrategy;
    use cxm_relational::{Attribute, Table, TableSchema, Tuple, Value};

    /// Grades-style databases: a narrow source (name, examNum, grade) and a
    /// wide target (name, grade0..grade2) with *different* students but the
    /// same per-exam grade distributions (mean 40 + 10·exam, small spread).
    fn grades_pair(n_students: usize) -> (Database, Database) {
        let narrow_schema = TableSchema::new(
            "grades",
            vec![Attribute::text("name"), Attribute::int("examNum"), Attribute::float("grade")],
        );
        let mut narrow_rows = Vec::new();
        for s in 0..n_students {
            for exam in 0..3i64 {
                // Continuous grades (fractional part varies per student) so the
                // grade column is non-categorical, as real score data would be.
                let grade = 40.0 + 10.0 * exam as f64 + (s % 7) as f64 - 3.0 + s as f64 * 0.013;
                narrow_rows.push(Tuple::new(vec![
                    Value::str(format!("student{s:03}")),
                    Value::from(exam),
                    Value::Float(grade),
                ]));
            }
        }
        let source =
            Database::new("RS").with_table(Table::with_rows(narrow_schema, narrow_rows).unwrap());

        let wide_schema = TableSchema::new(
            "grades_wide",
            vec![
                Attribute::text("name"),
                Attribute::float("grade0"),
                Attribute::float("grade1"),
                Attribute::float("grade2"),
            ],
        );
        let mut wide_rows = Vec::new();
        for s in 0..n_students {
            let base = (s % 5) as f64 - 2.0;
            wide_rows.push(Tuple::new(vec![
                Value::str(format!("pupil{s:03}")),
                Value::Float(40.0 + base),
                Value::Float(50.0 + base),
                Value::Float(60.0 + base),
            ]));
        }
        let target =
            Database::new("RT").with_table(Table::with_rows(wide_schema, wide_rows).unwrap());
        (source, target)
    }

    #[test]
    fn clio_qual_table_performs_attribute_normalization() {
        let (source, target) = grades_pair(40);
        let config = ContextMatchConfig::default()
            .with_inference(ViewInferenceStrategy::SrcClass)
            .with_early_disjuncts(false)
            .with_tau(0.3)
            .with_omega(1.0);
        let mapping = clio_qual_table(&source, &target, config).unwrap();

        // Views on examNum should have been selected.
        assert!(
            !mapping.views.is_empty(),
            "no views selected: {:?}",
            mapping.match_result.selected
        );
        assert!(mapping.views.iter().all(|v| v.base_table == "grades"));

        // A mapping query for the wide table exists and joins the views.
        let query = mapping.query_for("grades_wide").expect("query for grades_wide");
        assert!(!query.correspondences.is_empty());

        // The materialized wide instance has one row per student of the source
        // (when every exam view was found), each with the student's name.
        let wide = mapping.target_instance.table("grades_wide").expect("materialized instance");
        assert!(!wide.is_empty());
        assert!(wide.len() <= 40);
        let names = wide.column("name").unwrap();
        assert!(names.iter().all(|v| v.as_text().starts_with("student")));
    }

    #[test]
    fn clio_qual_table_on_empty_source_is_empty() {
        let (_, target) = grades_pair(10);
        let mapping =
            clio_qual_table(&Database::new("RS"), &target, ContextMatchConfig::default()).unwrap();
        assert!(mapping.queries.is_empty());
        assert!(mapping.views.is_empty());
        assert!(mapping.target_instance.is_empty());
    }
}
