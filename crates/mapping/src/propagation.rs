//! Constraint propagation from base tables to views (§4.2).
//!
//! Theorem 4.1 shows the general key / foreign-key propagation problem for SP
//! views is undecidable, so the paper (and this module) relies on a set of
//! *sound but incomplete* inference rules:
//!
//! * **Contextual propagation** — if `[X, a]` is a key of `R1` and `a = v` is
//!   the selection condition of the view `V1`, then `X` is a key of `V1`.
//! * **View-referencing** — if `X` is a key of `R1`, `X ⊆ att(V1)`, `a ∈ X`,
//!   the view's condition is `a = v1 ∨ … ∨ a = vn` and the domain of `a` is
//!   exactly `{v1, …, vn}`, then `R1[X] ⊆ V1[X]` (the base table references the
//!   view).
//! * **Contextual constraint** — if `[X, a]` is a key of `R1` and the view's
//!   condition is `a = v`, then `V1[X, a = v] ⊆ R1[X, a]` is a contextual
//!   foreign key of the view referencing its base table.
//! * **FK-propagation** — if `R1[Y] ⊆ R2[X]` is a foreign key of the base table
//!   and `Y ⊆ att(V1)`, then `V1[Y] ⊆ R2[X]` holds for any selection view `V1`
//!   of `R1` (selection only removes tuples).

use cxm_relational::{
    ConstraintSet, ContextualForeignKey, Database, ForeignKey, Key, Table, ViewDef,
};

/// Apply the propagation rules to derive constraints on `views` from the
/// declared/mined constraints `sigma` on the base tables. The `source`
/// instance is used only to check the *view-referencing* rule's domain
/// condition ("the domain of a is exactly {v1, …, vn}"), which is evaluated on
/// the sample.
pub fn propagate_constraints(
    source: &Database,
    views: &[ViewDef],
    sigma: &ConstraintSet,
) -> ConstraintSet {
    let mut out = ConstraintSet::new();
    for view in views {
        let Some(base) = source.table(&view.base_table) else { continue };
        let Ok(view_schema) = view.schema(base.schema()) else { continue };
        let view_attrs: Vec<String> =
            view_schema.attributes().iter().map(|a| a.name.clone()).collect();

        contextual_propagation(view, &view_attrs, sigma, &mut out);
        contextual_constraint(view, &view_attrs, sigma, &mut out);
        view_referencing(view, base, &view_attrs, sigma, &mut out);
        fk_propagation(view, &view_attrs, sigma, &mut out);
    }
    out
}

/// Contextual propagation: `R1[X, a] → R1` and condition `a = v`  ⟹  `V1[X] → V1`.
fn contextual_propagation(
    view: &ViewDef,
    view_attrs: &[String],
    sigma: &ConstraintSet,
    out: &mut ConstraintSet,
) {
    let Some((a, _)) = view.condition.single_equality() else { return };
    for key in sigma.keys_of(&view.base_table) {
        if !key.attributes.iter().any(|k| k.eq_ignore_ascii_case(a)) {
            continue;
        }
        let x: Vec<String> =
            key.attributes.iter().filter(|k| !k.eq_ignore_ascii_case(a)).cloned().collect();
        if x.is_empty() {
            continue;
        }
        // X must survive the projection.
        if x.iter().all(|k| view_attrs.iter().any(|v| v.eq_ignore_ascii_case(k))) {
            out.add_key(Key::new(view.name.clone(), x));
        }
    }
}

/// Contextual constraint: `R1[X, a] → R1` and condition `a = v`  ⟹
/// `V1[X, a = v] ⊆ R1[X, a]`.
fn contextual_constraint(
    view: &ViewDef,
    view_attrs: &[String],
    sigma: &ConstraintSet,
    out: &mut ConstraintSet,
) {
    let Some((a, v)) = view.condition.single_equality() else { return };
    for key in sigma.keys_of(&view.base_table) {
        if !key.attributes.iter().any(|k| k.eq_ignore_ascii_case(a)) {
            continue;
        }
        let x: Vec<String> =
            key.attributes.iter().filter(|k| !k.eq_ignore_ascii_case(a)).cloned().collect();
        if x.is_empty() || !x.iter().all(|k| view_attrs.iter().any(|va| va.eq_ignore_ascii_case(k)))
        {
            continue;
        }
        if let Ok(cfk) = ContextualForeignKey::new(
            view.name.clone(),
            x.clone(),
            a.to_string(),
            v.clone(),
            view.base_table.clone(),
            x,
            a.to_string(),
        ) {
            out.add_contextual_fk(cfk);
        }
    }
}

/// View-referencing: key `X` of `R1` with `a ∈ X ⊆ att(V1)`, condition
/// `a ∈ {v1…vn}` covering the whole sample domain of `a`  ⟹  `R1[X] ⊆ V1[X]`.
fn view_referencing(
    view: &ViewDef,
    base: &Table,
    view_attrs: &[String],
    sigma: &ConstraintSet,
    out: &mut ConstraintSet,
) {
    for key in sigma.keys_of(&view.base_table) {
        let x = &key.attributes;
        let all_in_view = x.iter().all(|k| view_attrs.iter().any(|va| va.eq_ignore_ascii_case(k)));
        if !all_in_view {
            continue;
        }
        let Some(a) = x.iter().find(|k| view.condition.restricted_values(k).is_some()) else {
            continue;
        };
        let Some(restricted) = view.condition.restricted_values(a) else { continue };
        let Ok(domain) = base.distinct_values(a) else { continue };
        let covers_domain = domain.iter().all(|v| restricted.contains(v));
        if covers_domain {
            if let Ok(fk) =
                ForeignKey::new(view.base_table.clone(), x.clone(), view.name.clone(), x.clone())
            {
                out.add_foreign_key(fk);
            }
        }
    }
}

/// FK-propagation: `R1[Y] ⊆ R2[X]` and `Y ⊆ att(V1)`  ⟹  `V1[Y] ⊆ R2[X]`.
fn fk_propagation(
    view: &ViewDef,
    view_attrs: &[String],
    sigma: &ConstraintSet,
    out: &mut ConstraintSet,
) {
    for fk in sigma.foreign_keys_from(&view.base_table) {
        let y_in_view =
            fk.child_attrs.iter().all(|y| view_attrs.iter().any(|va| va.eq_ignore_ascii_case(y)));
        if !y_in_view {
            continue;
        }
        if let Ok(propagated) = ForeignKey::new(
            view.name.clone(),
            fk.child_attrs.clone(),
            fk.parent_table.clone(),
            fk.parent_attrs.clone(),
        ) {
            out.add_foreign_key(propagated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{tuple, Attribute, Condition, TableSchema, Value};

    /// The §4.1 / §4.2 running example.
    fn school_db() -> Database {
        let student = Table::with_rows(
            TableSchema::new("student", vec![Attribute::text("name"), Attribute::text("email")]),
            vec![tuple!["ann", "ann@u.edu"], tuple!["bob", "bob@u.edu"]],
        )
        .unwrap();
        let project = Table::with_rows(
            TableSchema::new(
                "project",
                vec![
                    Attribute::text("name"),
                    Attribute::int("assignt"),
                    Attribute::text("grade"),
                    Attribute::text("instructor"),
                ],
            ),
            vec![
                tuple!["ann", 0, "A", "smith"],
                tuple!["ann", 1, "B", "smith"],
                tuple!["bob", 0, "C", "jones"],
                tuple!["bob", 1, "A", "jones"],
            ],
        )
        .unwrap();
        Database::new("RS").with_table(student).with_table(project)
    }

    fn sigma() -> ConstraintSet {
        let mut cs = ConstraintSet::new();
        cs.add_key(Key::new("project", vec!["name", "assignt"]));
        cs.add_key(Key::new("student", vec!["name"]));
        cs.add_foreign_key(
            ForeignKey::new("project", vec!["name"], "student", vec!["name"]).unwrap(),
        );
        cs
    }

    fn grade_view(i: i64) -> ViewDef {
        ViewDef::select_project(
            format!("V{i}"),
            "project",
            Condition::eq("assignt", i),
            vec!["name".into(), "grade".into()],
        )
    }

    #[test]
    fn contextual_propagation_derives_view_keys() {
        // Example 4.2: Vi[name] → Vi via contextual propagation.
        let views = vec![grade_view(0), grade_view(1)];
        let derived = propagate_constraints(&school_db(), &views, &sigma());
        assert!(derived.is_key("V0", &["name".to_string()]));
        assert!(derived.is_key("V1", &["name".to_string()]));
    }

    #[test]
    fn contextual_constraint_derives_contextual_fks() {
        let views = vec![grade_view(0)];
        let derived = propagate_constraints(&school_db(), &views, &sigma());
        let cfks = derived.contextual_fks_from("V0");
        assert_eq!(cfks.len(), 1);
        assert_eq!(cfks[0].parent_table, "project");
        assert_eq!(cfks[0].cond_attr, "assignt");
        assert_eq!(cfks[0].cond_value, Value::Int(0));
        assert_eq!(cfks[0].view_attrs, vec!["name".to_string()]);
    }

    #[test]
    fn fk_propagation_lifts_base_fks_to_views() {
        // Example 4.2: Vi[name] ⊆ student[name] via FK-propagation.
        let views = vec![grade_view(0)];
        let derived = propagate_constraints(&school_db(), &views, &sigma());
        let fks = derived.foreign_keys_from("V0");
        assert!(fks
            .iter()
            .any(|fk| fk.parent_table == "student" && fk.child_attrs == vec!["name".to_string()]));
    }

    #[test]
    fn view_referencing_requires_full_domain_coverage() {
        // A view covering both assignt values (the full sample domain) lets the
        // base table reference the view; a single-value view does not.
        let full = ViewDef::select_only("Vall", "project", Condition::is_in("assignt", [0, 1]));
        let partial = ViewDef::select_only("V0only", "project", Condition::eq("assignt", 0));
        let derived = propagate_constraints(&school_db(), &[full, partial], &sigma());
        let to_vall = derived
            .foreign_keys
            .iter()
            .any(|fk| fk.child_table == "project" && fk.parent_table == "Vall");
        let to_v0 = derived
            .foreign_keys
            .iter()
            .any(|fk| fk.child_table == "project" && fk.parent_table == "V0only");
        assert!(to_vall, "full-domain view should be referenced by the base table");
        assert!(!to_v0, "partial view must not be referenced by the base table");
    }

    #[test]
    fn projection_gates_propagation() {
        // A view that projects away `name` cannot inherit the key or the FK.
        let view = ViewDef::select_project(
            "Vg",
            "project",
            Condition::eq("assignt", 0),
            vec!["grade".into()],
        );
        let derived = propagate_constraints(&school_db(), &[view], &sigma());
        assert!(derived.keys_of("Vg").is_empty());
        assert!(derived.foreign_keys_from("Vg").is_empty());
        assert!(derived.contextual_fks_from("Vg").is_empty());
    }

    #[test]
    fn unknown_base_tables_are_skipped() {
        let view = ViewDef::select_only("V", "nosuch", Condition::eq("a", 1));
        let derived = propagate_constraints(&school_db(), &[view], &sigma());
        assert!(derived.is_empty());
    }
}
