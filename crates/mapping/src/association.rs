//! Semantic association of attributes: logical tables and join rules (§4.3).
//!
//! Clio groups attributes that should be mapped together into *logical tables*
//! by (a) putting attributes of the same relation together and (b) outer
//! joining relations along foreign keys. Contextual matches introduce views,
//! and views need three further join rules:
//!
//! * **(join 1)** — two views over the *same attributes* of the same base
//!   table with different single-value conditions on the same attribute,
//!   each with a propagated key `Vi[X] → Vi` and a (contextual) foreign key,
//!   are joined on the key `X` (different properties of the same object, e.g.
//!   the per-assignment grade views of Example 4.3).
//! * **(join 2)** — two views over *different attributes* of the same base
//!   table with the *same* condition are joined on a shared key `X`.
//! * **(join 3)** — a contextual foreign key `V1[Y, a = v] ⊆ R[X, b]` induces
//!   an outer join from `V1` to `R` on `Y = X` (with `b = v`).

use std::collections::BTreeSet;
use std::fmt;

use cxm_relational::{ConstraintSet, ViewDef};

/// Which rule produced a join edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinRule {
    /// Clio's base rule: outer join along a foreign key.
    ForeignKey,
    /// The paper's (join 1): sibling views over the same attributes.
    Join1,
    /// The paper's (join 2): views over different attributes, same condition.
    Join2,
    /// The paper's (join 3): join induced by a contextual foreign key.
    Join3,
}

/// An equi-join edge between two relations (base tables or views) of a logical
/// table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Left relation name.
    pub left: String,
    /// Right relation name.
    pub right: String,
    /// Join attributes of the left relation.
    pub left_attrs: Vec<String>,
    /// Join attributes of the right relation (positionally paired).
    pub right_attrs: Vec<String>,
    /// The rule that justified the edge.
    pub rule: JoinRule,
}

impl fmt::Display for JoinEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] ⋈ {}[{}] ({:?})",
            self.left,
            self.left_attrs.join(","),
            self.right,
            self.right_attrs.join(","),
            self.rule
        )
    }
}

/// A logical table: a set of relations plus the join edges that connect them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogicalTable {
    /// Member relations (views or base tables), in insertion order.
    pub members: Vec<String>,
    /// Join edges between members.
    pub edges: Vec<JoinEdge>,
}

impl LogicalTable {
    /// True when the logical table has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Edges incident to the given member.
    pub fn edges_of(&self, member: &str) -> Vec<&JoinEdge> {
        self.edges.iter().filter(|e| e.left == member || e.right == member).collect()
    }

    /// Order the members so that (after the first) every member is connected by
    /// some edge to an earlier one; disconnected members come last. This is the
    /// order the executor joins them in.
    pub fn join_order(&self) -> Vec<String> {
        let mut ordered: Vec<String> = Vec::new();
        let mut remaining: Vec<String> = self.members.clone();
        while !remaining.is_empty() {
            let next_idx = if ordered.is_empty() {
                0
            } else {
                remaining
                    .iter()
                    .position(|m| {
                        self.edges.iter().any(|e| {
                            (e.left == *m && ordered.contains(&e.right))
                                || (e.right == *m && ordered.contains(&e.left))
                        })
                    })
                    .unwrap_or(0)
            };
            ordered.push(remaining.remove(next_idx));
        }
        ordered
    }
}

/// Build the logical table for one target table: the member relations are the
/// sources of the value correspondences targeting it, and edges are added by
/// Clio's foreign-key rule plus (join 1) / (join 2) / (join 3).
pub fn associate(
    relations: &[String],
    views: &[ViewDef],
    constraints: &ConstraintSet,
) -> LogicalTable {
    let members: Vec<String> = {
        let mut seen = BTreeSet::new();
        relations.iter().filter(|r| seen.insert((*r).clone())).cloned().collect()
    };
    let mut table = LogicalTable { members: members.clone(), edges: Vec::new() };
    let view_of = |name: &str| views.iter().find(|v| v.name == name);

    for (i, a) in members.iter().enumerate() {
        for b in members.iter().skip(i + 1) {
            // Clio rule: foreign key between the two relations (either direction).
            for fk in &constraints.foreign_keys {
                if (fk.child_table == *a && fk.parent_table == *b)
                    || (fk.child_table == *b && fk.parent_table == *a)
                {
                    table.edges.push(JoinEdge {
                        left: fk.child_table.clone(),
                        right: fk.parent_table.clone(),
                        left_attrs: fk.child_attrs.clone(),
                        right_attrs: fk.parent_attrs.clone(),
                        rule: JoinRule::ForeignKey,
                    });
                }
            }

            // (join 3): contextual FK from one member view to another member relation.
            for cfk in &constraints.contextual_fks {
                if (cfk.view == *a && cfk.parent_table == *b)
                    || (cfk.view == *b && cfk.parent_table == *a)
                {
                    table.edges.push(JoinEdge {
                        left: cfk.view.clone(),
                        right: cfk.parent_table.clone(),
                        left_attrs: cfk.view_attrs.clone(),
                        right_attrs: cfk.parent_attrs.clone(),
                        rule: JoinRule::Join3,
                    });
                }
            }

            // (join 1) / (join 2): both members are views over the same base table.
            let (Some(va), Some(vb)) = (view_of(a), view_of(b)) else { continue };
            if va.base_table != vb.base_table {
                continue;
            }
            let Some(shared_key) = shared_view_key(va, vb, constraints) else { continue };
            let has_cfk = |v: &ViewDef| {
                !constraints.contextual_fks_from(&v.name).is_empty()
                    || !constraints.foreign_keys_from(&v.name).is_empty()
            };
            if !(has_cfk(va) && has_cfk(vb)) {
                continue;
            }
            let ca = va.condition.single_equality();
            let cb = vb.condition.single_equality();
            let same_projection = va.projection == vb.projection;
            let rule = match (ca, cb) {
                // (join 1): same attributes, different values of the same attribute.
                (Some((aa, avv)), Some((ab, bvv)))
                    if same_projection && aa.eq_ignore_ascii_case(ab) && avv != bvv =>
                {
                    Some(JoinRule::Join1)
                }
                // (join 2): different attribute sets, identical condition.
                (Some((aa, avv)), Some((ab, bvv)))
                    if !same_projection && aa.eq_ignore_ascii_case(ab) && avv == bvv =>
                {
                    Some(JoinRule::Join2)
                }
                _ => None,
            };
            if let Some(rule) = rule {
                table.edges.push(JoinEdge {
                    left: va.name.clone(),
                    right: vb.name.clone(),
                    left_attrs: shared_key.clone(),
                    right_attrs: shared_key,
                    rule,
                });
            }
        }
    }
    table
}

/// A key shared by both views (propagated keys `Vi[X] → Vi` with the same `X`).
fn shared_view_key(a: &ViewDef, b: &ViewDef, constraints: &ConstraintSet) -> Option<Vec<String>> {
    for ka in constraints.keys_of(&a.name) {
        for kb in constraints.keys_of(&b.name) {
            if ka.attributes.len() == kb.attributes.len()
                && ka.attributes.iter().zip(&kb.attributes).all(|(x, y)| x.eq_ignore_ascii_case(y))
            {
                return Some(ka.attributes.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{Condition, ContextualForeignKey, ForeignKey, Key, Value};

    fn grade_view(i: i64) -> ViewDef {
        ViewDef::select_project(
            format!("V{i}"),
            "project",
            Condition::eq("assignt", i),
            vec!["name".into(), "grade".into()],
        )
    }

    fn instructor_view(i: i64) -> ViewDef {
        ViewDef::select_project(
            format!("U{i}"),
            "project",
            Condition::eq("assignt", i),
            vec!["name".into(), "instructor".into()],
        )
    }

    fn grades_constraints(n: i64) -> ConstraintSet {
        let mut cs = ConstraintSet::new();
        for i in 0..n {
            cs.add_key(Key::new(format!("V{i}"), vec!["name"]));
            cs.add_contextual_fk(
                ContextualForeignKey::new(
                    format!("V{i}"),
                    vec!["name"],
                    "assignt",
                    Value::Int(i),
                    "project",
                    vec!["name"],
                    "assignt",
                )
                .unwrap(),
            );
        }
        cs
    }

    #[test]
    fn join1_connects_sibling_grade_views() {
        // Example 4.3/4.4: the per-assignment views join pairwise on name.
        let views: Vec<ViewDef> = (0..3).map(grade_view).collect();
        let names: Vec<String> = views.iter().map(|v| v.name.clone()).collect();
        let cs = grades_constraints(3);
        let lt = associate(&names, &views, &cs);
        assert_eq!(lt.members.len(), 3);
        let join1_edges: Vec<_> = lt.edges.iter().filter(|e| e.rule == JoinRule::Join1).collect();
        assert_eq!(join1_edges.len(), 3, "three pairs of views: {:?}", lt.edges);
        assert!(join1_edges.iter().all(|e| e.left_attrs == vec!["name".to_string()]));
        // Join order visits connected members consecutively.
        assert_eq!(lt.join_order().len(), 3);
    }

    #[test]
    fn join2_connects_views_on_different_attributes_same_condition() {
        // Example 4.5: Vi and Ui join on name; Vi and Uj (i≠j) must not.
        let views = vec![grade_view(0), instructor_view(0), instructor_view(1)];
        let names: Vec<String> = views.iter().map(|v| v.name.clone()).collect();
        let mut cs = grades_constraints(1);
        cs.add_key(Key::new("U0", vec!["name"]));
        cs.add_key(Key::new("U1", vec!["name"]));
        for i in 0..2 {
            cs.add_contextual_fk(
                ContextualForeignKey::new(
                    format!("U{i}"),
                    vec!["name"],
                    "assignt",
                    Value::Int(i),
                    "project",
                    vec!["name"],
                    "assignt",
                )
                .unwrap(),
            );
        }
        let lt = associate(&names, &views, &cs);
        let join2: Vec<_> = lt
            .edges
            .iter()
            .filter(|e| e.rule == JoinRule::Join2)
            .map(|e| (e.left.clone(), e.right.clone()))
            .collect();
        assert!(join2.contains(&("V0".to_string(), "U0".to_string())));
        assert!(!join2.iter().any(|(l, r)| (l == "V0" && r == "U1") || (l == "U1" && r == "V0")));
    }

    #[test]
    fn join3_uses_contextual_fk_to_base_table() {
        let views = vec![grade_view(0)];
        let names = vec!["V0".to_string(), "project".to_string()];
        let cs = grades_constraints(1);
        let lt = associate(&names, &views, &cs);
        assert!(lt
            .edges
            .iter()
            .any(|e| e.rule == JoinRule::Join3 && e.left == "V0" && e.right == "project"));
    }

    #[test]
    fn foreign_key_rule_connects_base_tables() {
        let mut cs = ConstraintSet::new();
        cs.add_key(Key::new("student", vec!["name"]));
        cs.add_foreign_key(
            ForeignKey::new("project", vec!["name"], "student", vec!["name"]).unwrap(),
        );
        let lt = associate(&["project".to_string(), "student".to_string()], &[], &cs);
        assert_eq!(lt.edges.len(), 1);
        assert_eq!(lt.edges[0].rule, JoinRule::ForeignKey);
        assert_eq!(lt.edges_of("student").len(), 1);
    }

    #[test]
    fn views_without_propagated_keys_do_not_join() {
        let views: Vec<ViewDef> = (0..2).map(grade_view).collect();
        let names: Vec<String> = views.iter().map(|v| v.name.clone()).collect();
        // No keys and no contextual FKs → no join-1 edges.
        let lt = associate(&names, &views, &ConstraintSet::new());
        assert!(lt.edges.is_empty());
        assert_eq!(lt.members.len(), 2);
    }

    #[test]
    fn duplicate_relations_are_deduplicated() {
        let lt = associate(
            &["a".to_string(), "a".to_string(), "b".to_string()],
            &[],
            &ConstraintSet::new(),
        );
        assert_eq!(lt.members, vec!["a".to_string(), "b".to_string()]);
        assert!(!lt.is_empty());
    }
}
