//! Constraint mining from sample data.
//!
//! Clio assumes keys and foreign keys are "either declared in the definition of
//! the schema, or discovered using constraint mining tools" (§4.1); the paper
//! applies the same idea to views: "We employ constraint mining tools on sample
//! data to discover keys and (contextual) foreign keys on views" (§4.2).
//!
//! The miner here is deliberately simple and sound-on-the-sample: a key is
//! reported when the attribute (or the attribute plus the view's selection
//! attribute) is duplicate-free in the sample, and a foreign key is reported
//! when the inclusion dependency holds on the sample. Single-attribute and
//! (attribute + selection attribute) composites are considered, which covers
//! every constraint the paper's examples require.

use cxm_relational::{
    ConstraintSet, ContextualForeignKey, Database, ForeignKey, Key, SelectionCache, Table, ViewDef,
};

/// Knobs for the constraint miner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningConfig {
    /// Minimum number of rows a table must have before a key claim is made
    /// (tiny samples make everything look like a key).
    pub min_rows_for_key: usize,
    /// Maximum number of attributes considered in composite keys (the paper's
    /// examples need at most 2).
    pub max_key_width: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig { min_rows_for_key: 2, max_key_width: 2 }
    }
}

/// Mine keys and foreign keys over the base tables of a database instance.
pub fn mine_constraints(db: &Database, config: &MiningConfig) -> ConstraintSet {
    let mut out = ConstraintSet::new();

    // Keys: single attributes first, then pairs (only when no single-attribute
    // key exists for the table, to avoid flooding the set with implied keys).
    for table in db.tables() {
        if table.len() < config.min_rows_for_key {
            continue;
        }
        let names: Vec<String> =
            table.schema().attributes().iter().map(|a| a.name.clone()).collect();
        let mut found_single = false;
        for a in &names {
            let key = Key::new(table.name(), vec![a.clone()]);
            if key.holds_on(table).unwrap_or(false) {
                out.add_key(key);
                found_single = true;
            }
        }
        if !found_single && config.max_key_width >= 2 {
            'outer: for (i, a) in names.iter().enumerate() {
                for b in names.iter().skip(i + 1) {
                    let key = Key::new(table.name(), vec![a.clone(), b.clone()]);
                    if key.holds_on(table).unwrap_or(false) {
                        out.add_key(key);
                        break 'outer;
                    }
                }
            }
        }
    }

    // Foreign keys: child attribute ⊆ parent key attribute, same attribute
    // name or (child attr, parent single-column key) pairs that satisfy the
    // inclusion on the sample.
    let keys = out.keys.clone();
    for child in db.tables() {
        for parent_key in keys.iter().filter(|k| k.attributes.len() == 1) {
            if parent_key.table == child.name() {
                continue;
            }
            let Some(parent) = db.table(&parent_key.table) else { continue };
            for attr in child.schema().attributes() {
                let fk = ForeignKey::new(
                    child.name(),
                    vec![attr.name.clone()],
                    parent.name(),
                    parent_key.attributes.clone(),
                );
                let Ok(fk) = fk else { continue };
                // Only report same-named or same-typed columns to avoid
                // coincidental inclusions (e.g. tiny integer domains).
                let parent_attr =
                    parent.schema().attribute(&parent_key.attributes[0]).map(|a| a.data_type);
                let compatible = attr.name.eq_ignore_ascii_case(&parent_key.attributes[0])
                    || parent_attr == Some(attr.data_type);
                if compatible && fk.holds_on(child, parent).unwrap_or(false) {
                    out.add_foreign_key(fk);
                }
            }
        }
    }
    out
}

/// Mine keys and contextual foreign keys for a set of views over a source
/// instance. For each view `V = select … from R where a = v`:
///
/// * every attribute set `X` that is duplicate-free *within the view sample*
///   is reported as a key of `V` (single attributes and `X ∪ {a}` pairs);
/// * when `[X, a]` is a key of the base table `R`, the contextual foreign key
///   `V[X, a = v] ⊆ R[X, a]` is reported (it holds by construction, and is
///   also checked against the sample).
pub fn mine_view_constraints(
    source: &Database,
    views: &[ViewDef],
    base_constraints: &ConstraintSet,
    config: &MiningConfig,
) -> ConstraintSet {
    let mut out = ConstraintSet::new();
    // Views in a family share condition atoms; resolve their selections
    // through one cache, and size-gate on the selection so undersized views
    // never materialize at all.
    let mut cache = SelectionCache::new();
    for view in views {
        let Ok(base) = source.require_table(&view.base_table) else { continue };
        let Ok(selection) = view.select_cached(base, &mut cache) else { continue };
        if selection.len() < config.min_rows_for_key {
            continue;
        }
        // Key / inclusion checks need the projected instance; this is the one
        // materialization per surviving view (was: one per view regardless).
        let Ok(instance) = view.materialize_selection(base, &selection) else { continue };
        mine_keys_of_view(&instance, view, &mut out);
        mine_contextual_fk_of_view(source, view, &instance, base_constraints, &mut out);
    }
    out
}

fn mine_keys_of_view(instance: &Table, view: &ViewDef, out: &mut ConstraintSet) {
    for attr in instance.schema().attributes() {
        let key = Key::new(view.name.clone(), vec![attr.name.clone()]);
        if key.holds_on(instance).unwrap_or(false) {
            out.add_key(key);
        }
    }
}

fn mine_contextual_fk_of_view(
    source: &Database,
    view: &ViewDef,
    instance: &Table,
    base_constraints: &ConstraintSet,
    out: &mut ConstraintSet,
) {
    let Some((cond_attr, cond_value)) = view.condition.single_equality() else { return };
    let Some(base) = source.table(&view.base_table) else { return };
    for attr in instance.schema().attributes() {
        if attr.name.eq_ignore_ascii_case(cond_attr) {
            continue;
        }
        // [attr, cond_attr] must be a key of the base table (declared, mined,
        // or holding on the sample).
        let composite = vec![attr.name.clone(), cond_attr.to_string()];
        let declared = base_constraints.is_key(&view.base_table, &composite);
        let sample_key =
            Key::new(view.base_table.clone(), composite.clone()).holds_on(base).unwrap_or(false);
        if !(declared || sample_key) {
            continue;
        }
        if let Ok(cfk) = ContextualForeignKey::new(
            view.name.clone(),
            vec![attr.name.clone()],
            cond_attr.to_string(),
            cond_value.clone(),
            view.base_table.clone(),
            vec![attr.name.clone()],
            cond_attr.to_string(),
        ) {
            if cfk.holds_on(instance, base).unwrap_or(false) {
                out.add_contextual_fk(cfk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{tuple, Attribute, Condition, TableSchema};

    /// The §4.1 running example: student + project.
    fn school_db() -> Database {
        let student = Table::with_rows(
            TableSchema::new(
                "student",
                vec![Attribute::text("name"), Attribute::text("email"), Attribute::text("address")],
            ),
            vec![
                tuple!["ann", "ann@u.edu", "1 elm st"],
                tuple!["bob", "bob@u.edu", "2 oak ave"],
                tuple!["carol", "carol@u.edu", "3 pine rd"],
            ],
        )
        .unwrap();
        let project = Table::with_rows(
            TableSchema::new(
                "project",
                vec![
                    Attribute::text("name"),
                    Attribute::int("assignt"),
                    Attribute::text("grade"),
                    Attribute::text("instructor"),
                ],
            ),
            vec![
                tuple!["ann", 0, "A", "smith"],
                tuple!["ann", 1, "B", "smith"],
                tuple!["bob", 0, "C", "jones"],
                tuple!["bob", 1, "A", "jones"],
                tuple!["carol", 0, "B", "smith"],
            ],
        )
        .unwrap();
        Database::new("RS").with_table(student).with_table(project)
    }

    #[test]
    fn mines_single_and_composite_keys() {
        let cs = mine_constraints(&school_db(), &MiningConfig::default());
        // student.name (and email, address) are keys; project needs the
        // composite [name, assignt].
        assert!(cs.is_key("student", &["name".to_string()]));
        assert!(cs.keys_of("project").iter().any(|k| k.attributes.len() == 2));
        assert!(!cs.is_key("project", &["name".to_string()]));
    }

    #[test]
    fn mines_foreign_key_from_project_to_student() {
        let cs = mine_constraints(&school_db(), &MiningConfig::default());
        let fk_found = cs
            .foreign_keys_from("project")
            .iter()
            .any(|fk| fk.parent_table == "student" && fk.child_attrs == vec!["name".to_string()]);
        assert!(fk_found, "project.name ⊆ student.name should be mined: {cs}");
    }

    #[test]
    fn mines_view_keys_and_contextual_fks() {
        let db = school_db();
        let base = mine_constraints(&db, &MiningConfig::default());
        let views: Vec<ViewDef> = (0..2)
            .map(|i| {
                ViewDef::select_project(
                    format!("V{i}"),
                    "project",
                    Condition::eq("assignt", i),
                    vec!["name".into(), "grade".into()],
                )
            })
            .collect();
        let cs = mine_view_constraints(&db, &views, &base, &MiningConfig::default());
        // Example 4.2: Vi[name] → Vi is a key of each view…
        assert!(cs.is_key("V0", &["name".to_string()]));
        assert!(cs.is_key("V1", &["name".to_string()]));
        // …and Vi[name, assignt = i] ⊆ project[name, assignt] is a contextual FK.
        let cfks = cs.contextual_fks_from("V0");
        assert!(!cfks.is_empty());
        assert_eq!(cfks[0].parent_table, "project");
        assert_eq!(cfks[0].cond_attr, "assignt");
    }

    #[test]
    fn tiny_samples_make_no_key_claims() {
        let t = Table::with_rows(TableSchema::new("t", vec![Attribute::int("x")]), vec![tuple![1]])
            .unwrap();
        let db = Database::new("d").with_table(t);
        let cs = mine_constraints(&db, &MiningConfig::default());
        assert!(cs.keys_of("t").is_empty());
    }

    #[test]
    fn views_with_non_simple_conditions_get_keys_but_no_cfk() {
        let db = school_db();
        let base = mine_constraints(&db, &MiningConfig::default());
        let view = ViewDef::select_only("V", "project", Condition::is_in("assignt", [0, 1]));
        let cs = mine_view_constraints(&db, &[view], &base, &MiningConfig::default());
        assert!(cs.contextual_fks_from("V").is_empty());
    }
}
