//! Executing mapping queries over a source instance.
//!
//! The executor materializes the logical table (full outer joins along the
//! association edges, in [`LogicalTable::join_order`]), then produces one
//! target tuple per joined row by following the value correspondences and
//! Skolemizing uncovered target attributes.

use std::collections::BTreeMap;

use cxm_relational::{
    Attribute, DataType, Database, Result, Table, TableSchema, Tuple, Value, ViewDef,
};

use crate::association::LogicalTable;
use crate::query::MappingQuery;
use crate::skolem::SkolemGenerator;

/// Materialize the relations participating in a logical table: base tables are
/// taken from the source instance, views are evaluated against it.
fn materialize_members(
    source: &Database,
    views: &[ViewDef],
    logical: &LogicalTable,
) -> Result<BTreeMap<String, Table>> {
    let mut out = BTreeMap::new();
    for member in &logical.members {
        let instance = if let Some(view) = views.iter().find(|v| v.name == *member) {
            view.evaluate(source)?
        } else {
            source.require_table(member)?.clone()
        };
        out.insert(member.clone(), instance);
    }
    Ok(out)
}

/// A joined intermediate relation whose attribute names are fully qualified
/// (`relation.attribute`).
fn qualify(table: &Table) -> Table {
    let attrs: Vec<Attribute> = table
        .schema()
        .attributes()
        .iter()
        .map(|a| Attribute::new(format!("{}.{}", table.name(), a.name), a.data_type))
        .collect();
    let schema = TableSchema::new(table.name(), attrs);
    Table::with_rows(schema, table.rows().to_vec()).expect("arity unchanged by qualification")
}

/// Full outer join of two qualified tables on positionally paired attributes.
fn full_outer_join(
    left: &Table,
    right: &Table,
    left_attrs: &[String],
    right_attrs: &[String],
) -> Table {
    let mut attrs: Vec<Attribute> = left.schema().attributes().to_vec();
    attrs.extend(right.schema().attributes().iter().cloned());
    let schema = TableSchema::new(left.name(), attrs);
    let mut joined = Table::new(schema);

    let left_pos: Vec<Option<usize>> =
        left_attrs.iter().map(|a| left.schema().index_of(a)).collect();
    let right_pos: Vec<Option<usize>> =
        right_attrs.iter().map(|a| right.schema().index_of(a)).collect();
    let key_of = |row: &Tuple, pos: &[Option<usize>]| -> Option<Vec<Value>> {
        pos.iter().map(|p| p.map(|i| row.at(i).clone())).collect::<Option<Vec<Value>>>()
    };

    let mut right_matched = vec![false; right.len()];
    for lrow in left.rows() {
        let lkey = key_of(lrow, &left_pos);
        let mut matched = false;
        if let Some(lkey) = &lkey {
            for (ri, rrow) in right.rows().iter().enumerate() {
                if key_of(rrow, &right_pos).as_ref() == Some(lkey)
                    && !lkey.iter().any(|v| v.is_null())
                {
                    joined
                        .insert(lrow.concat(rrow))
                        .expect("schema arity equals concatenated arity");
                    right_matched[ri] = true;
                    matched = true;
                }
            }
        }
        if !matched {
            let padding = Tuple::new(vec![Value::Null; right.schema().arity()]);
            joined.insert(lrow.concat(&padding)).expect("padded arity matches");
        }
    }
    // Right tuples with no partner.
    for (ri, rrow) in right.rows().iter().enumerate() {
        if !right_matched[ri] {
            let padding = Tuple::new(vec![Value::Null; left.schema().arity()]);
            joined.insert(padding.concat(rrow)).expect("padded arity matches");
        }
    }
    joined
}

/// Materialize the logical table as a single joined, fully qualified relation.
pub fn materialize_logical_table(
    source: &Database,
    views: &[ViewDef],
    logical: &LogicalTable,
) -> Result<Table> {
    let members = materialize_members(source, views, logical)?;
    let order = logical.join_order();
    let mut iter = order.iter();
    let Some(first) = iter.next() else {
        return Ok(Table::new(TableSchema::new("empty", vec![])));
    };
    let mut joined = qualify(&members[first]);
    let mut included = vec![first.clone()];
    for member in iter {
        let right = qualify(&members[member]);
        // Find an edge connecting this member to one already included.
        let edge = logical.edges.iter().find(|e| {
            (e.right == *member && included.contains(&e.left))
                || (e.left == *member && included.contains(&e.right))
        });
        let (left_attrs, right_attrs) = match edge {
            Some(e) if e.right == *member => (
                e.left_attrs.iter().map(|a| format!("{}.{}", e.left, a)).collect::<Vec<_>>(),
                e.right_attrs.iter().map(|a| format!("{}.{}", e.right, a)).collect::<Vec<_>>(),
            ),
            Some(e) => (
                e.right_attrs.iter().map(|a| format!("{}.{}", e.right, a)).collect::<Vec<_>>(),
                e.left_attrs.iter().map(|a| format!("{}.{}", e.left, a)).collect::<Vec<_>>(),
            ),
            // Disconnected member: cross join on an empty key would explode;
            // instead join on nothing → every left row pads, every right row
            // pads (a "union of padded rows" semantics keeps the data visible
            // without fabricating associations).
            None => (vec![], vec![]),
        };
        joined = full_outer_join(&joined, &right, &left_attrs, &right_attrs);
        included.push(member.clone());
    }
    Ok(joined)
}

/// Execute a mapping query, producing an instance of the target table.
///
/// Each joined row of the logical table yields one target tuple (rows where
/// every correspondence evaluates to NULL are dropped). Target attributes with
/// no correspondence are Skolemized unless they are nullable-by-convention, in
/// which case the caller can post-process; here every uncovered attribute gets
/// a Skolem value to keep the instance total.
pub fn execute_mapping(
    source: &Database,
    views: &[ViewDef],
    query: &MappingQuery,
    target_schema: &TableSchema,
) -> Result<Table> {
    let joined = materialize_logical_table(source, views, query.logical_table())?;
    let skolem = SkolemGenerator::new();
    let mut out = Table::new(target_schema.with_name(query.target_table.clone()));

    for row in joined.rows() {
        let mut mapped: Vec<Option<Value>> = Vec::with_capacity(target_schema.arity());
        let mut any_non_null = false;
        for attr in target_schema.attributes() {
            let value = query.correspondence_for(&attr.name).and_then(|c| {
                let qualified = format!("{}.{}", c.source.table, c.source.attribute);
                joined.schema().index_of(&qualified).map(|i| row.at(i).clone())
            });
            if let Some(v) = &value {
                if !v.is_null() {
                    any_non_null = true;
                }
            }
            mapped.push(value);
        }
        if !any_non_null {
            continue;
        }
        // Skolemize uncovered / NULL-mapped attributes whose type is textual;
        // numeric attributes default to NULL (a Skolem string would violate the
        // declared type).
        let determinants: Vec<Value> =
            mapped.iter().flatten().filter(|v| !v.is_null()).cloned().collect();
        let tuple: Tuple = target_schema
            .attributes()
            .iter()
            .zip(mapped)
            .map(|(attr, v)| match v {
                Some(v) if !v.is_null() => v,
                _ if query.correspondence_for(&attr.name).is_some() => Value::Null,
                _ if attr.data_type == DataType::Text => {
                    skolem.value(&query.target_table, &attr.name, &determinants)
                }
                _ => Value::Null,
            })
            .collect();
        out.insert(tuple)?;
    }
    Ok(out)
}

impl MappingQuery {
    /// The logical table backing this query (accessor kept here to avoid a
    /// circular import in `query.rs`).
    pub fn logical_table(&self) -> &LogicalTable {
        &self.logical_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::association::{associate, JoinRule};
    use crate::query::ValueCorrespondence;
    use cxm_relational::{tuple, AttrRef, Condition, ConstraintSet, ContextualForeignKey, Key};

    /// Narrow grades table: (name, examNum, grade).
    fn grades_db() -> Database {
        let schema = TableSchema::new(
            "grades",
            vec![Attribute::text("name"), Attribute::int("examNum"), Attribute::float("grade")],
        );
        let mut rows = Vec::new();
        for (si, name) in ["ann", "bob", "carol"].iter().enumerate() {
            for exam in 0..3i64 {
                rows.push(tuple![*name, exam, 40.0 + 10.0 * exam as f64 + si as f64]);
            }
        }
        Database::new("RS").with_table(Table::with_rows(schema, rows).unwrap())
    }

    fn grade_views(n: i64) -> Vec<ViewDef> {
        (0..n)
            .map(|i| ViewDef::select_only(format!("V{i}"), "grades", Condition::eq("examNum", i)))
            .collect()
    }

    fn grades_constraints(n: i64) -> ConstraintSet {
        let mut cs = ConstraintSet::new();
        for i in 0..n {
            cs.add_key(Key::new(format!("V{i}"), vec!["name"]));
            cs.add_contextual_fk(
                ContextualForeignKey::new(
                    format!("V{i}"),
                    vec!["name"],
                    "examNum",
                    Value::Int(i),
                    "grades",
                    vec!["name"],
                    "examNum",
                )
                .unwrap(),
            );
        }
        cs
    }

    fn wide_schema(n: i64) -> TableSchema {
        let mut attrs = vec![Attribute::text("name")];
        for i in 0..n {
            attrs.push(Attribute::float(format!("grade{i}")));
        }
        TableSchema::new("grades_wide", attrs)
    }

    #[test]
    fn outer_join_pads_unmatched_rows() {
        let left = Table::with_rows(
            TableSchema::new("l", vec![Attribute::text("l.k"), Attribute::int("l.x")]),
            vec![tuple!["a", 1], tuple!["b", 2]],
        )
        .unwrap();
        let right = Table::with_rows(
            TableSchema::new("r", vec![Attribute::text("r.k"), Attribute::int("r.y")]),
            vec![tuple!["a", 10], tuple!["c", 30]],
        )
        .unwrap();
        let joined = full_outer_join(&left, &right, &["l.k".into()], &["r.k".into()]);
        assert_eq!(joined.len(), 3); // a-a, b-null, null-c
        assert_eq!(joined.schema().arity(), 4);
        let keys: Vec<String> = joined
            .rows()
            .iter()
            .map(|r| format!("{}/{}", r.at(0).as_text(), r.at(2).as_text()))
            .collect();
        assert!(keys.contains(&"a/a".to_string()));
        assert!(keys.contains(&"b/".to_string()));
        assert!(keys.contains(&"/c".to_string()));
    }

    #[test]
    fn attribute_normalization_reconstructs_the_wide_table() {
        // This is the Grades scenario (Example 4.3): the narrow table's rows
        // are promoted to columns by joining the per-exam views on name.
        let source = grades_db();
        let views = grade_views(3);
        let names: Vec<String> = views.iter().map(|v| v.name.clone()).collect();
        let constraints = grades_constraints(3);
        let logical = associate(&names, &views, &constraints);
        assert!(logical.edges.iter().any(|e| e.rule == JoinRule::Join1));

        let mut correspondences = vec![ValueCorrespondence::new(
            AttrRef::new("V0", "name"),
            AttrRef::new("grades_wide", "name"),
        )];
        for i in 0..3 {
            correspondences.push(ValueCorrespondence::new(
                AttrRef::new(format!("V{i}"), "grade"),
                AttrRef::new("grades_wide", format!("grade{i}")),
            ));
        }
        let query = MappingQuery::new("grades_wide", logical, correspondences);
        let result = execute_mapping(&source, &views, &query, &wide_schema(3)).unwrap();

        // Three students, one row each, with all three grades filled in.
        assert_eq!(result.len(), 3);
        let ann =
            result.rows().iter().find(|r| r.at(0) == &Value::str("ann")).expect("ann present");
        assert_eq!(ann.at(1), &Value::Float(40.0));
        assert_eq!(ann.at(2), &Value::Float(50.0));
        assert_eq!(ann.at(3), &Value::Float(60.0));
    }

    #[test]
    fn uncovered_text_attributes_are_skolemized() {
        let source = grades_db();
        let views = grade_views(1);
        let logical = associate(&["V0".to_string()], &views, &grades_constraints(1));
        let query = MappingQuery::new(
            "t",
            logical,
            vec![ValueCorrespondence::new(AttrRef::new("V0", "grade"), AttrRef::new("t", "score"))],
        );
        let target = TableSchema::new(
            "t",
            vec![Attribute::float("score"), Attribute::text("source_system")],
        );
        let result = execute_mapping(&source, &views, &query, &target).unwrap();
        assert_eq!(result.len(), 3);
        for row in result.rows() {
            match row.at(1) {
                Value::Str(s) => assert!(s.starts_with("Sk_t_source_system")),
                other => panic!("expected Skolem string, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_logical_table_produces_empty_instance() {
        let source = grades_db();
        let query = MappingQuery::new("t", LogicalTable::default(), vec![]);
        let target = TableSchema::new("t", vec![Attribute::text("x")]);
        let result = execute_mapping(&source, &[], &query, &target).unwrap();
        assert!(result.is_empty());
    }
}
