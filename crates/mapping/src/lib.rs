//! # cxm-mapping
//!
//! Clio-style schema *mapping* generation, extended for the contextual matches
//! produced by `cxm-core` (*Putting Context into Schema Matching*, Bohannon et
//! al., VLDB 2006, §4).
//!
//! The pipeline mirrors the paper:
//!
//! 1. **Constraint mining** ([`mining`]) — keys and foreign keys are discovered
//!    from sample data (as Clio does), including keys on views and the paper's
//!    new *contextual foreign keys* `V[Y, a = v] ⊆ R[X, b]`.
//! 2. **Constraint propagation** ([`propagation`]) — the paper proves the
//!    general propagation problem undecidable (Theorem 4.1) and instead gives
//!    sound inference rules; the three published rules (*contextual
//!    propagation*, *view-referencing*, *contextual constraint*) plus
//!    FK-propagation are implemented here.
//! 3. **Semantic association** ([`association`]) — Clio's two association rules
//!    (same relation; foreign-key outer join) plus the new contextual join
//!    rules **(join 1)**, **(join 2)** and **(join 3)** of §4.3, producing
//!    *logical tables*.
//! 4. **Mapping queries** ([`query`], [`skolem`]) — one query per target table,
//!    mapping source attributes through the value correspondences and filling
//!    unmapped target attributes with Skolem values; [`execute`] materializes
//!    the query over a source instance.
//! 5. **`ClioQualTable`** ([`clio`]) — the end-to-end combination used in the
//!    Grades experiments (§5.7): contextual matching with `QualTable`
//!    selection, followed by view materialization, constraint mining /
//!    propagation, the join rules, and mapping execution — which is what lets
//!    the system perform *attribute normalization* automatically.

pub mod association;
pub mod clio;
pub mod execute;
pub mod mining;
pub mod propagation;
pub mod query;
pub mod skolem;

pub use association::{associate, JoinEdge, JoinRule, LogicalTable};
pub use clio::{clio_qual_table, ClioMapping};
pub use execute::execute_mapping;
pub use mining::{mine_constraints, mine_view_constraints, MiningConfig};
pub use propagation::propagate_constraints;
pub use query::{MappingQuery, ValueCorrespondence};
pub use skolem::SkolemGenerator;
