//! Mapping queries: value correspondences + logical tables → target tuples.
//!
//! Following §4.1, a mapping `map()` is a collection of per-target-table
//! queries `map(RS,RT)()`. Each query is backed by one logical table (a set of
//! joined relations) and a set of value correspondences (the matches `L`,
//! interpreted as inter-schema inclusion dependencies). Attributes of the
//! target with no correspondence are filled by Skolem values; source
//! attributes with no correspondence are dropped.

use std::fmt;

use cxm_relational::AttrRef;

use crate::association::LogicalTable;

/// A value correspondence: one (source attribute → target attribute) edge of
/// the accepted match list `L`. The source side may name a view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueCorrespondence {
    /// Source attribute (view- or base-table-qualified).
    pub source: AttrRef,
    /// Target attribute.
    pub target: AttrRef,
}

impl ValueCorrespondence {
    /// Create a correspondence.
    pub fn new(source: AttrRef, target: AttrRef) -> Self {
        ValueCorrespondence { source, target }
    }
}

impl fmt::Display for ValueCorrespondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.source, self.target)
    }
}

/// The mapping query for one target table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappingQuery {
    /// The target table this query populates.
    pub target_table: String,
    /// The logical table providing the source tuples.
    pub logical_table: LogicalTable,
    /// The correspondences into this target table.
    pub correspondences: Vec<ValueCorrespondence>,
}

impl MappingQuery {
    /// Create a query.
    pub fn new(
        target_table: impl Into<String>,
        logical_table: LogicalTable,
        correspondences: Vec<ValueCorrespondence>,
    ) -> Self {
        MappingQuery { target_table: target_table.into(), logical_table, correspondences }
    }

    /// The correspondence feeding a particular target attribute, if any.
    pub fn correspondence_for(&self, target_attr: &str) -> Option<&ValueCorrespondence> {
        self.correspondences.iter().find(|c| c.target.attribute.eq_ignore_ascii_case(target_attr))
    }

    /// Names of target attributes covered by some correspondence.
    pub fn covered_target_attributes(&self) -> Vec<&str> {
        self.correspondences.iter().map(|c| c.target.attribute.as_str()).collect()
    }
}

impl fmt::Display for MappingQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "map → {} from {:?}", self.target_table, self.logical_table.members)?;
        for c in &self.correspondences {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correspondence_lookup_is_case_insensitive() {
        let q = MappingQuery::new(
            "projs",
            LogicalTable::default(),
            vec![
                ValueCorrespondence::new(AttrRef::new("V0", "name"), AttrRef::new("projs", "name")),
                ValueCorrespondence::new(
                    AttrRef::new("V0", "grade"),
                    AttrRef::new("projs", "grade0"),
                ),
            ],
        );
        assert!(q.correspondence_for("Grade0").is_some());
        assert!(q.correspondence_for("grade7").is_none());
        assert_eq!(q.covered_target_attributes(), vec!["name", "grade0"]);
    }

    #[test]
    fn display_renders_edges() {
        let c =
            ValueCorrespondence::new(AttrRef::new("V0", "grade"), AttrRef::new("projs", "grade0"));
        assert_eq!(c.to_string(), "V0.grade → projs.grade0");
        let q = MappingQuery::new("projs", LogicalTable::default(), vec![c]);
        assert!(q.to_string().contains("map → projs"));
    }
}
