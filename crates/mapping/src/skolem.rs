//! Skolem value generation.
//!
//! Clio fills target attributes that have no corresponding source attribute
//! with Skolem-function values "based on the known values of tT mapped from
//! tS" (§4.1(c)). The generator here is deterministic: the same target
//! attribute and the same determining source values always produce the same
//! Skolem value, so joins on Skolemized attributes remain consistent across a
//! mapping run.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use cxm_relational::Value;

/// Deterministic Skolem value generator.
#[derive(Debug, Clone, Default)]
pub struct SkolemGenerator;

impl SkolemGenerator {
    /// Create a generator.
    pub fn new() -> Self {
        SkolemGenerator
    }

    /// The Skolem value for `target_table.attribute`, determined by the source
    /// values already mapped into the same target tuple.
    pub fn value(&self, target_table: &str, attribute: &str, determinants: &[Value]) -> Value {
        let mut hasher = DefaultHasher::new();
        target_table.hash(&mut hasher);
        attribute.hash(&mut hasher);
        for d in determinants {
            d.hash(&mut hasher);
        }
        Value::Str(format!("Sk_{}_{}_{:016x}", target_table, attribute, hasher.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skolem_values_are_deterministic() {
        let g = SkolemGenerator::new();
        let a = g.value("book", "id", &[Value::str("the historian")]);
        let b = g.value("book", "id", &[Value::str("the historian")]);
        assert_eq!(a, b);
    }

    #[test]
    fn skolem_values_distinguish_attribute_and_determinants() {
        let g = SkolemGenerator::new();
        let a = g.value("book", "id", &[Value::str("x")]);
        let b = g.value("book", "isbn", &[Value::str("x")]);
        let c = g.value("book", "id", &[Value::str("y")]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skolem_values_are_strings_with_a_recognizable_prefix() {
        let g = SkolemGenerator::new();
        match g.value("music", "label", &[]) {
            Value::Str(s) => assert!(s.starts_with("Sk_music_label_")),
            other => panic!("expected a string, got {other:?}"),
        }
    }
}
