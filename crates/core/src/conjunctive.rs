//! Conjunctive contexts (§3.5).
//!
//! The search for conjunctive k-conditions assumes "that a high-quality
//! k-condition has at least one high-quality (k−1)-sub-condition" and runs
//! `ContextMatch` repeatedly. At stage i+1 only the views created during stage
//! i are considered as base tables to partition further, and the partitioning
//! may not reuse attributes already fixed by the stage-i condition.
//!
//! In this implementation each stage materializes the previous stage's selected
//! views as tables of a *derived* source database and re-runs `ContextMatch`
//! on it; conditions found on a derived table are conjoined with the view's
//! original condition and reported against the original base table. Attributes
//! already constrained by the stage-i condition are constant inside the view
//! and therefore fail the categorical test automatically, which realizes the
//! "attributes not in c" restriction without special-casing.

use std::collections::BTreeMap;

use cxm_relational::{Database, Result, SelectionCache, ViewDef};

use crate::config::ContextMatchConfig;
use crate::context_match::{ContextMatchResult, ContextualMatcher};

/// Run `ContextMatch` for up to `stages` rounds, composing conjunctive
/// conditions. `stages = 1` is plain contextual matching; the paper
/// hypothesizes 2–3 stages are all that is ever useful.
pub fn conjunctive_context_match(
    source: &Database,
    target: &Database,
    config: ContextMatchConfig,
    stages: usize,
) -> Result<ContextMatchResult> {
    let matcher = ContextualMatcher::new(config);
    let mut result = matcher.run(source, target)?;
    if stages <= 1 {
        return Ok(result);
    }

    // Views selected in the most recent stage, keyed by their derived table
    // name, along with the base table and condition they represent.
    let mut frontier: BTreeMap<String, ViewDef> =
        result.selected_view_defs().into_iter().map(|v| (v.name.clone(), v.clone())).collect();

    // Atom selections recur across stages (stage i+1 conjoins new atoms onto
    // stage-i conditions over the same base tables), so one cache serves the
    // whole conjunctive search.
    let mut cache = SelectionCache::new();
    for stage in 2..=stages {
        if frontier.is_empty() {
            break;
        }
        // Materialize the frontier views as a derived source database. View
        // names contain brackets; they are valid table names for our in-memory
        // engine, so no renaming is needed. The selection is computed first
        // (through the shared cache) so undersized views are discarded before
        // a single tuple is cloned.
        let mut derived = Database::new(format!("{}#stage{}", source.name(), stage));
        for view in frontier.values() {
            let base = source.require_table(&view.base_table)?;
            let selection = view.select_cached(base, &mut cache)?;
            if selection.len() >= 4 {
                derived.replace_table(view.materialize_selection(base, &selection)?);
            }
        }
        if derived.is_empty() {
            break;
        }

        let stage_result = matcher.run(&derived, target)?;

        // Re-express the new conditions against the original base tables.
        let mut next_frontier: BTreeMap<String, ViewDef> = BTreeMap::new();
        for m in stage_result.contextual_selected() {
            let Some(parent) = frontier.get(&m.base_table) else { continue };
            let combined = parent.condition.clone().and(m.condition.clone());
            if combined.complexity() <= parent.condition.complexity() {
                // The stage added nothing new (condition on an already-fixed
                // attribute); skip it.
                continue;
            }
            let view = ViewDef::named_by_condition(parent.base_table.clone(), combined.clone());
            let mut rewritten = m.clone();
            rewritten.base_table = parent.base_table.clone();
            rewritten.source =
                cxm_relational::AttrRef::new(view.name.clone(), m.source.attribute.clone());
            rewritten.condition = combined;
            result.selected.push(rewritten);
            if !result.candidate_views.iter().any(|v| v.name == view.name) {
                result.candidate_views.push(view.clone());
            }
            next_frontier.insert(view.name.clone(), view);
        }
        result.candidates.extend(stage_result.candidates);
        frontier = next_frontier;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SelectionStrategy, ViewInferenceStrategy};
    use cxm_relational::{Attribute, Table, TableSchema, Tuple, Value};

    /// Source where the correct context for the `nonfiction` target table is a
    /// conjunction: `type = 1 AND fiction = 0`.
    fn source_db(n: usize) -> Database {
        let schema = TableSchema::new(
            "inv",
            vec![
                Attribute::int("id"),
                Attribute::text("name"),
                Attribute::int("type"),
                Attribute::int("fiction"),
                Attribute::text("descr"),
            ],
        );
        let mut rows = Vec::new();
        for i in 0..n {
            let is_book = i % 2 == 0;
            let is_fiction = (i / 2) % 2 == 0;
            let descr = match (is_book, is_fiction) {
                (true, false) => "nonfiction hardcover biography history",
                (true, true) => "novel paperback fiction story",
                (false, _) => "audio cd records music",
            };
            let name = match (is_book, is_fiction) {
                (true, false) => format!("a history of rome part {i}"),
                (true, true) => format!("the mystery of chapter {i}"),
                (false, _) => format!("greatest hits volume {i}"),
            };
            rows.push(Tuple::new(vec![
                Value::from(i),
                Value::str(name),
                Value::from(if is_book { 1 } else { 2 }),
                Value::from(if is_fiction { 1 } else { 0 }),
                Value::str(descr),
            ]));
        }
        Database::new("RS").with_table(Table::with_rows(schema, rows).unwrap())
    }

    fn target_db() -> Database {
        let nonfiction = Table::with_rows(
            TableSchema::new(
                "nonfiction",
                vec![Attribute::text("title"), Attribute::text("format")],
            ),
            vec![
                Tuple::new(vec![
                    Value::str("a history of the world"),
                    Value::str("nonfiction hardcover history"),
                ]),
                Tuple::new(vec![
                    Value::str("a biography of lincoln"),
                    Value::str("nonfiction biography hardcover"),
                ]),
            ],
        )
        .unwrap();
        let music = Table::with_rows(
            TableSchema::new("music", vec![Attribute::text("title"), Attribute::text("label")]),
            vec![Tuple::new(vec![Value::str("greatest hits"), Value::str("audio cd records")])],
        )
        .unwrap();
        Database::new("RT").with_table(nonfiction).with_table(music)
    }

    #[test]
    fn single_stage_is_plain_context_match() {
        let source = source_db(80);
        let target = target_db();
        let config = ContextMatchConfig::default().with_tau(0.4);
        let one = conjunctive_context_match(&source, &target, config, 1).unwrap();
        let direct = ContextualMatcher::new(config).run(&source, &target).unwrap();
        assert_eq!(one.selected.len(), direct.selected.len());
    }

    #[test]
    fn second_stage_can_discover_conjunctive_conditions() {
        let source = source_db(160);
        let target = target_db();
        let config = ContextMatchConfig::default()
            .with_inference(ViewInferenceStrategy::SrcClass)
            .with_selection(SelectionStrategy::QualTable)
            .with_early_disjuncts(false)
            .with_tau(0.4)
            .with_omega(1.0);
        let result = conjunctive_context_match(&source, &target, config, 2).unwrap();
        // Stage 2 may or may not fire depending on what stage 1 selects, but if
        // any conjunctive match was produced it must involve two attributes and
        // keep the original base table name.
        let conjunctive: Vec<_> =
            result.selected.iter().filter(|m| m.condition.complexity() >= 2).collect();
        for m in &conjunctive {
            assert_eq!(m.base_table, "inv");
            let attrs = m.condition.attributes();
            assert!(attrs.len() >= 2, "conjunctive condition should mention ≥ 2 attributes: {m}");
        }
        // The result is at least as rich as the single-stage run.
        let single = conjunctive_context_match(&source, &target, config, 1).unwrap();
        assert!(result.selected.len() >= single.selected.len());
    }

    #[test]
    fn extra_stages_on_exhausted_frontier_are_safe() {
        let source = source_db(40);
        let target = target_db();
        let config = ContextMatchConfig::default().with_tau(0.4);
        // Ten stages on a small input should terminate quickly and not panic.
        let result = conjunctive_context_match(&source, &target, config, 10).unwrap();
        assert!(!result.selected.is_empty() || result.standard.is_empty());
    }
}
