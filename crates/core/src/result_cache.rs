//! Whole-match result memoization.
//!
//! The warm-artifact stack (catalog column batches, shared selections,
//! restricted profiles) makes a repeat request *cheap*; this module makes it
//! *free*. A [`MatchResultCache`] memoizes entire [`ContextMatchResult`]s
//! keyed by [`MatchResultKey`] — the content fingerprint of the source
//! database, the version of the catalog snapshot matched against, and the
//! signature of the configuration that ran. A repeat submission of an
//! unchanged source against an unchanged catalog under the same
//! configuration is then a single cache lookup: zero profile builds, zero
//! selection scans, zero classifier work.
//!
//! Invalidation is automatic through the key: any catalog update bumps the
//! snapshot version, so every entry of the previous generation simply stops
//! being addressable and ages out through the oldest-first capacity bound;
//! any source edit changes the source fingerprint the same way. Nothing is
//! ever served stale, and nothing needs explicit invalidation — the same
//! re-keying discipline the restricted-profile cache uses, lifted to whole
//! results.
//!
//! Hit results are **byte-identical** to what the run they memoize produced
//! (a clone of the stored result; every score and confidence keeps its exact
//! bit pattern), and that run was itself byte-identical to a cold
//! [`crate::ContextualMatcher::run`] — so result-cache hits preserve the
//! service's end-to-end equivalence guarantee.

use std::sync::Arc;

use crate::bounded::BoundedCache;
use crate::context_match::ContextMatchResult;

/// Identity of one memoized match run: *what* was matched (source content),
/// *against what* (catalog snapshot version — itself a proxy for target
/// content, since every content change produces a new version), and *how*
/// ([`crate::ContextMatchConfig::signature`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchResultKey {
    /// Combined content fingerprint of the source database's tables.
    pub source_fingerprint: u64,
    /// Version of the catalog snapshot the run matched against.
    pub catalog_version: u64,
    /// Signature of the `ContextMatch` configuration that ran.
    pub config_signature: u64,
}

/// A bounded, oldest-first cache of whole [`ContextMatchResult`]s. Results
/// are stored behind `Arc`s, so caching one costs no deep copy beyond the
/// insert-time clone the caller makes; a long-lived match service carries
/// one instance across catalog snapshots (entries from superseded versions
/// age out via the bound).
#[derive(Debug, Clone, Default)]
pub struct MatchResultCache {
    entries: BoundedCache<MatchResultKey, Arc<ContextMatchResult>>,
}

impl MatchResultCache {
    /// A cache retaining at most `capacity` results (oldest inserted evicted
    /// first); `0` disables caching entirely.
    pub fn with_capacity(capacity: usize) -> Self {
        MatchResultCache { entries: BoundedCache::with_capacity(capacity) }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.entries.hits()
    }

    /// Lookups that found nothing so far.
    pub fn misses(&self) -> usize {
        self.entries.misses()
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> usize {
        self.entries.evictions()
    }

    /// The result cached for `key`, recording a hit or miss.
    pub fn get(&mut self, key: &MatchResultKey) -> Option<Arc<ContextMatchResult>> {
        self.entries.get(key).map(Arc::clone)
    }

    /// Cache `result` under `key`, evicting oldest entries beyond the
    /// capacity. Re-inserting an existing key replaces its result in place
    /// (its age is unchanged).
    pub fn insert(&mut self, key: MatchResultKey, result: Arc<ContextMatchResult>) {
        self.entries.insert(key, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(source: u64, version: u64, config: u64) -> MatchResultKey {
        MatchResultKey {
            source_fingerprint: source,
            catalog_version: version,
            config_signature: config,
        }
    }

    #[test]
    fn round_trips_bounds_and_counts() {
        let mut cache = MatchResultCache::with_capacity(2);
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 2);
        assert!(cache.get(&key(1, 1, 1)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let result = Arc::new(ContextMatchResult::default());
        cache.insert(key(1, 1, 1), Arc::clone(&result));
        cache.insert(key(2, 1, 1), Arc::clone(&result));
        assert_eq!(cache.len(), 2);
        let hit = cache.get(&key(1, 1, 1)).unwrap();
        assert!(Arc::ptr_eq(&hit, &result), "hits serve the stored result");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // A third key evicts the oldest entry and counts it.
        cache.insert(key(1, 2, 1), Arc::clone(&result));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&key(1, 1, 1)).is_none());

        // Source, version and config each discriminate.
        assert_ne!(key(1, 1, 1), key(2, 1, 1));
        assert_ne!(key(1, 1, 1), key(1, 2, 1));
        assert_ne!(key(1, 1, 1), key(1, 1, 2));

        // Zero capacity disables caching.
        let mut off = MatchResultCache::with_capacity(0);
        off.insert(key(1, 1, 1), result);
        assert!(off.is_empty());
    }
}
