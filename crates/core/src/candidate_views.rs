//! `InferCandidateViews` — dispatch over the view-inference strategies.
//!
//! Figure 5, line 5: `C := InferCandidateViews(RS, M, EarlyDisjuncts)`. The
//! candidate space is empty when the prototype match list `M` is empty ("no
//! conditions will be returned if M is empty"), otherwise it is produced by the
//! configured strategy: `NaiveInfer`, `SrcClassInfer` or `TgtClassInfer`.

use cxm_matching::MatchList;
use cxm_relational::{Database, Table, ViewDef, ViewFamily};

use crate::clustered::clustered_view_gen;
use crate::config::{ContextMatchConfig, ViewInferenceStrategy};
use crate::labeler::{SrcLabeler, TgtLabeler};
use crate::naive_infer::naive_infer;

/// Infer the candidate view families for one source table.
///
/// * `table` — the source table `RS` (with its sample data);
/// * `prototype_matches` — the accepted matches `M` returned by
///   `StandardMatch` for this table;
/// * `target` — the target database, needed by `TgtClassInfer` to build its
///   per-domain column classifiers.
pub fn infer_candidate_views(
    table: &Table,
    prototype_matches: &MatchList,
    target: &Database,
    config: &ContextMatchConfig,
) -> Vec<ViewFamily> {
    if prototype_matches.iter().all(|m| m.base_table != table.name()) {
        // No prototype matches from this table — nothing to condition.
        return Vec::new();
    }
    match config.inference {
        ViewInferenceStrategy::Naive => naive_infer(table, config),
        ViewInferenceStrategy::SrcClass => clustered_view_gen(table, &SrcLabeler::new(), config)
            .into_iter()
            .map(|sf| sf.family)
            .collect(),
        ViewInferenceStrategy::TgtClass => {
            let labeler = TgtLabeler::from_target(target);
            clustered_view_gen(table, &labeler, config).into_iter().map(|sf| sf.family).collect()
        }
    }
}

/// Flatten families into a deduplicated list of candidate views, preserving
/// first-seen order and respecting the configured cap.
pub fn flatten_views(families: &[ViewFamily], config: &ContextMatchConfig) -> Vec<ViewDef> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for family in families {
        for view in &family.views {
            if out.len() >= config.max_candidate_views {
                return out;
            }
            if seen.insert(view.name.clone()) {
                out.push(view.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_matching::Match;
    use cxm_relational::{AttrRef, Attribute, TableSchema, Tuple, Value};

    fn inventory(n: usize) -> Table {
        let schema = TableSchema::new(
            "inv",
            vec![Attribute::int("id"), Attribute::text("descr"), Attribute::int("type")],
        );
        let rows = (0..n)
            .map(|i| {
                let is_book = i % 2 == 0;
                // Descriptions carry a varying suffix so the column stays
                // non-categorical (it is the `h` the classifiers learn from).
                let descr = if is_book {
                    format!("paperback edition printing {i}")
                } else {
                    format!("audio records cd disc {i}")
                };
                Tuple::new(vec![
                    Value::from(i),
                    Value::str(descr),
                    Value::from(if is_book { 1 } else { 2 }),
                ])
            })
            .collect();
        Table::with_rows(schema, rows).unwrap()
    }

    fn target_db() -> Database {
        let book = Table::with_rows(
            TableSchema::new("book", vec![Attribute::text("format")]),
            vec![
                Tuple::new(vec![Value::str("paperback")]),
                Tuple::new(vec![Value::str("hardcover")]),
            ],
        )
        .unwrap();
        let music = Table::with_rows(
            TableSchema::new("music", vec![Attribute::text("label")]),
            vec![Tuple::new(vec![Value::str("columbia records cd")])],
        )
        .unwrap();
        Database::new("RT").with_table(book).with_table(music)
    }

    fn prototype() -> MatchList {
        vec![Match::standard(
            AttrRef::new("inv", "descr"),
            AttrRef::new("book", "format"),
            0.6,
            0.8,
        )]
    }

    #[test]
    fn empty_prototype_list_yields_no_candidates() {
        let table = inventory(100);
        let cfg = ContextMatchConfig::default();
        assert!(infer_candidate_views(&table, &Vec::new(), &target_db(), &cfg).is_empty());
        // Matches from a different base table also do not count.
        let other = vec![Match::standard(
            AttrRef::new("other", "x"),
            AttrRef::new("book", "format"),
            0.6,
            0.8,
        )];
        assert!(infer_candidate_views(&table, &other, &target_db(), &cfg).is_empty());
    }

    #[test]
    fn each_strategy_produces_families_on_correlated_data() {
        let table = inventory(120);
        let target = target_db();
        let matches = prototype();
        for strategy in ViewInferenceStrategy::ALL {
            let cfg =
                ContextMatchConfig::default().with_inference(strategy).with_early_disjuncts(false);
            let fams = infer_candidate_views(&table, &matches, &target, &cfg);
            assert!(
                !fams.is_empty(),
                "{} produced no families on clearly correlated data",
                strategy.name()
            );
            assert!(fams.iter().all(|f| f.base_table == "inv"));
        }
    }

    #[test]
    fn naive_considers_all_categoricals_classifiers_filter() {
        // Add a second categorical attribute that is pure noise; Naive will
        // partition on it, the classifier-driven strategies should not.
        let base = inventory(200);
        let table = base
            .extend_with(Attribute::text("stock"), |i, _| {
                Value::str(["Low", "Normal", "High"][i % 3])
            })
            .unwrap();
        let target = target_db();
        let matches = prototype();
        let naive_cfg = ContextMatchConfig::default()
            .with_inference(ViewInferenceStrategy::Naive)
            .with_early_disjuncts(false);
        let src_cfg = naive_cfg.with_inference(ViewInferenceStrategy::SrcClass);
        let naive_fams = infer_candidate_views(&table, &matches, &target, &naive_cfg);
        let src_fams = infer_candidate_views(&table, &matches, &target, &src_cfg);
        let naive_attrs: std::collections::BTreeSet<_> =
            naive_fams.iter().map(|f| f.attribute.clone()).collect();
        let src_attrs: std::collections::BTreeSet<_> =
            src_fams.iter().map(|f| f.attribute.clone()).collect();
        assert!(naive_attrs.contains("stock"));
        assert!(naive_attrs.contains("type"));
        assert!(src_attrs.contains("type"));
        assert!(
            !src_attrs.contains("stock"),
            "classifier filter should reject the noise attribute"
        );
    }

    #[test]
    fn flatten_views_deduplicates_and_caps() {
        let table = inventory(60);
        let fam = ViewFamily::partition_by_values(&table, "type").unwrap();
        let cfg = ContextMatchConfig::default();
        let views = flatten_views(&[fam.clone(), fam.clone()], &cfg);
        assert_eq!(views.len(), 2);
        let mut capped_cfg = cfg;
        capped_cfg.max_candidate_views = 1;
        assert_eq!(flatten_views(&[fam], &capped_cfg).len(), 1);
    }
}
