//! `ScoreMatch` — re-scoring prototype matches against candidate views
//! (Figure 5, lines 6–11).
//!
//! For every candidate view `Vc` and every prototype match `m` from the view's
//! base table, the match `m′ = m with RS replaced by Vc` is scored by the
//! standard matching machinery *restricted to the subset of sample data
//! meeting `c`*, and the confidence is computed against the score distribution
//! of the original (unrestricted) attribute so that it is comparable to the
//! prototype's confidence.

use cxm_matching::{ColumnData, MatchList, MatchingOutcome, StandardMatcher};
use cxm_relational::{Database, Result, Table, ViewDef};

/// Score the contextual versions of the prototype matches against each
/// candidate view. Returns the contextual candidate list `RL` (every `(m′, s)`
/// pair of the algorithm), in deterministic (view, match) order.
pub fn score_candidates(
    source: &Database,
    target: &Database,
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
) -> Result<MatchList> {
    let mut candidates = MatchList::new();
    let from_this_table: Vec<_> =
        prototype.iter().filter(|m| m.base_table == source_table.name()).collect();
    if from_this_table.is_empty() {
        return Ok(candidates);
    }
    for view in views {
        let view_instance = view.evaluate(source)?;
        if view_instance.is_empty() {
            // An empty view supports no matches; skip it entirely.
            continue;
        }
        for m in &from_this_table {
            // The view projects all base attributes (select-only), so the
            // matched attribute is always present.
            let restricted = ColumnData::from_table(&view_instance, &m.source.attribute)?;
            let target_table = target.require_table(&m.target.table)?;
            let target_col = ColumnData::from_table(target_table, &m.target.attribute)?;
            let (score, confidence) =
                matcher.rescore(outcome, &restricted, &m.source, &target_col);
            candidates.push(m.with_context(
                view.name.clone(),
                view.condition.clone(),
                score,
                confidence,
            ));
        }
    }
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_matching::MatchingConfig;
    use cxm_relational::{tuple, Attribute, Condition, TableSchema};

    fn source_db() -> Database {
        let inv = Table::with_rows(
            TableSchema::new(
                "inv",
                vec![
                    Attribute::int("id"),
                    Attribute::text("name"),
                    Attribute::int("type"),
                    Attribute::text("descr"),
                ],
            ),
            vec![
                tuple![0, "leaves of grass", 1, "hardcover"],
                tuple![1, "the white album", 2, "audio cd"],
                tuple![2, "heart of darkness", 1, "paperback"],
                tuple![3, "wasteland", 1, "paperback"],
                tuple![4, "hotel california", 2, "elektra cd"],
                tuple![5, "kind of blue", 2, "columbia cd"],
            ],
        )
        .unwrap();
        Database::new("RS").with_table(inv)
    }

    fn target_db() -> Database {
        let book = Table::with_rows(
            TableSchema::new("book", vec![Attribute::text("title"), Attribute::text("format")]),
            vec![
                tuple!["the historian", "hardcover"],
                tuple!["war and peace", "paperback"],
                tuple!["middlemarch", "paperback"],
            ],
        )
        .unwrap();
        let music = Table::with_rows(
            TableSchema::new("music", vec![Attribute::text("title"), Attribute::text("label")]),
            vec![tuple!["x&y", "capitol cd"], tuple!["abbey road", "apple cd"]],
        )
        .unwrap();
        Database::new("RT").with_table(book).with_table(music)
    }

    #[test]
    fn candidates_cover_every_view_times_prototype_match() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.3));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
        ];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        assert_eq!(candidates.len(), 2 * outcome.accepted.len());
        assert!(candidates.iter().all(|c| c.is_contextual()));
        assert!(candidates.iter().all(|c| c.base_table == "inv"));
    }

    #[test]
    fn the_right_context_scores_higher_than_the_wrong_one() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.3));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
        ];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        // For descr → book.format, the type=1 (book) view should outscore type=2.
        let conf_of = |view: &str| {
            candidates
                .iter()
                .find(|c| {
                    c.source.table == view
                        && c.source.attribute == "descr"
                        && c.target.table == "book"
                        && c.target.attribute == "format"
                })
                .map(|c| c.confidence)
        };
        if let (Some(book_view), Some(cd_view)) = (conf_of("inv[type = 1]"), conf_of("inv[type = 2]")) {
            assert!(
                book_view > cd_view,
                "book-context format match ({book_view}) should beat cd-context ({cd_view})"
            );
        }
    }

    #[test]
    fn empty_views_and_foreign_prototypes_are_skipped() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::with_defaults();
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        // A view selecting nothing.
        let views = vec![ViewDef::named_by_condition("inv", Condition::eq("type", 99))];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        assert!(candidates.is_empty());

        // Prototype matches from another table contribute nothing.
        let foreign = vec![cxm_matching::Match::standard(
            cxm_relational::AttrRef::new("other", "x"),
            cxm_relational::AttrRef::new("book", "title"),
            0.9,
            0.9,
        )];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &[ViewDef::named_by_condition("inv", Condition::eq("type", 1))],
            &foreign,
        )
        .unwrap();
        assert!(candidates.is_empty());
    }
}
