//! `ScoreMatch` — re-scoring prototype matches against candidate views
//! (Figure 5, lines 6–11).
//!
//! For every candidate view `Vc` and every prototype match `m` from the view's
//! base table, the match `m′ = m with RS replaced by Vc` is scored by the
//! standard matching machinery *restricted to the subset of sample data
//! meeting `c`*, and the confidence is computed against the score distribution
//! of the original (unrestricted) attribute so that it is comparable to the
//! prototype's confidence.
//!
//! ## Execution strategy
//!
//! This is the hottest loop of the system — O(views × matches) rescorings per
//! source table — so it runs on the zero-copy execution layer:
//!
//! 1. each view is evaluated to a [`RowSelection`] through a shared
//!    [`SelectionCache`] (condition atoms recurring across a view family are
//!    scanned once per base table);
//! 2. per-match *target* columns are extracted once, outside the view loop;
//! 3. the view × match scoring grid is computed in parallel with `rayon`,
//!    one task per view, each building borrowed [`ColumnData`] values from
//!    [`TableSlice`]s — zero `Tuple` clones anywhere on this path;
//! 4. results are collected per view and appended in view order, so the
//!    output is byte-identical to the sequential evaluation (determinism is
//!    asserted by the integration tests).

use std::sync::{Arc, Mutex};

use cxm_matching::{ColumnData, Match, MatchList, MatchingOutcome, StandardMatcher};
use cxm_relational::{Database, Result, RowSelection, SelectionCache, Table, TableSlice, ViewDef};
use rayon::prelude::*;

/// Score the contextual versions of the prototype matches against each
/// candidate view. Returns the contextual candidate list `RL` (every `(m′, s)`
/// pair of the algorithm), in deterministic (view, match) order.
///
/// Extracts its own target columns; callers holding a hoisted
/// [`ColumnData::all_from_database`] batch (the sharded `ContextMatch` path)
/// should use [`score_candidates_with_targets`] so target profiles are reused
/// across source tables.
pub fn score_candidates(
    source: &Database,
    target: &Database,
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
) -> Result<MatchList> {
    score_candidates_with_targets(
        source,
        target,
        &[],
        matcher,
        outcome,
        source_table,
        views,
        prototype,
    )
}

/// [`score_candidates`] against a pre-extracted target column batch: each
/// match's target column is looked up in `target_batch` (falling back to
/// fresh extraction when absent, e.g. for an empty batch), so the memoized
/// target profiles built during standard matching are reused instead of
/// rebuilt once per source table.
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_with_targets<'a>(
    source: &Database,
    target: &'a Database,
    target_batch: &[ColumnData<'a>],
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
) -> Result<MatchList> {
    score_candidates_prepared(
        source,
        target,
        target_batch,
        matcher,
        outcome,
        source_table,
        views,
        prototype,
        None,
    )
}

/// A cross-run selection cache together with the per-table content
/// fingerprints guarding it.
///
/// The fingerprints **must cover every table of the source database** the
/// views select from. They are validated
/// ([`SelectionCache::validate_fingerprint`]) under the *same lock
/// acquisition* that serves this call's selections — validating in a
/// separate critical section would let two concurrent runs whose
/// same-named, equally sized source tables differ in content interleave
/// validation and use, serving one run the other's row indices.
#[derive(Clone, Copy)]
pub struct SharedSelections<'a> {
    /// The cache shared across runs (and threads).
    pub cache: &'a Mutex<SelectionCache>,
    /// Content fingerprint per source table name ([`Table::fingerprint`]).
    pub source_fingerprints: &'a std::collections::BTreeMap<String, u64>,
}

/// [`score_candidates_with_targets`] with an optional *shared* selection
/// cache: when `shared_selections` is provided, view conditions are resolved
/// through it (under its lock, after fingerprint validation — see
/// [`SharedSelections`]) instead of a run-local cache, so selection vectors
/// survive across calls — and, for a long-lived match service, across
/// requests. Results are byte-identical to the local-cache path either way.
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_prepared<'a>(
    source: &Database,
    target: &'a Database,
    target_batch: &[ColumnData<'a>],
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
    shared_selections: Option<SharedSelections<'_>>,
) -> Result<MatchList> {
    let mut candidates = MatchList::new();
    let from_this_table: Vec<&Match> =
        prototype.iter().filter(|m| m.base_table == source_table.name()).collect();
    if from_this_table.is_empty() || views.is_empty() {
        return Ok(candidates);
    }

    // Resolve every view to (base table, selection) serially so the atom
    // cache is shared across the whole family; empty views support no
    // matches and are skipped entirely. Matched source attributes are
    // validated (against the view's *output* schema) for the surviving
    // views, so the parallel loop below cannot fail — mirroring exactly when
    // the materializing path reports an `Err` instead of scoring.
    //
    // With a shared cache the lock spans only this resolve loop (atom scans
    // and merges), never the scoring grid below. Fingerprint validation
    // happens inside the same critical section as the selects it guards.
    let mut local_cache = SelectionCache::new();
    let mut shared_guard = shared_selections.map(|shared| {
        let mut guard = shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (table, fingerprint) in shared.source_fingerprints {
            guard.validate_fingerprint(table, *fingerprint);
        }
        guard
    });
    let cache: &mut SelectionCache = match shared_guard.as_deref_mut() {
        Some(shared) => shared,
        None => &mut local_cache,
    };
    let mut work: Vec<(&ViewDef, &Table, Arc<RowSelection>)> = Vec::with_capacity(views.len());
    for view in views {
        let base = source.require_table(&view.base_table)?;
        let selection = view.select_cached(base, cache)?;
        if selection.is_empty() {
            continue;
        }
        match &view.projection {
            // Select-only views (the common case) expose the base schema
            // as-is: validate against it directly, no schema clone.
            None => {
                for m in &from_this_table {
                    base.schema().require_index(&m.source.attribute)?;
                }
            }
            // Select-project views need the derived output schema so a
            // projected-away attribute errors exactly like the
            // materializing path.
            Some(_) => {
                let view_schema = view.schema(base.schema())?;
                for m in &from_this_table {
                    view_schema.require_index(&m.source.attribute)?;
                }
            }
        }
        work.push((view, base, selection));
    }
    // Release the shared cache before the (parallel, expensive) scoring grid.
    drop(shared_guard);
    if work.is_empty() {
        return Ok(candidates);
    }

    // Target columns depend only on the match, not on the view: take each one
    // from the hoisted batch when available — a clone shares the memoized
    // profiles, so a column profiled during standard matching is never
    // re-profiled here — and extract it once otherwise (the legacy path
    // re-extracts per view × match).
    let by_attr: std::collections::HashMap<&cxm_relational::AttrRef, &ColumnData<'a>> =
        target_batch.iter().map(|c| (&c.attr, c)).collect();
    let target_cols: Vec<ColumnData<'a>> = from_this_table
        .iter()
        .map(|m| {
            if let Some(col) = by_attr.get(&m.target) {
                return Ok((*col).clone());
            }
            let target_table = target.require_table(&m.target.table)?;
            ColumnData::from_table(target_table, &m.target.attribute)
        })
        .collect::<Result<_>>()?;

    // Lines 6–11, parallel over views. Each task only reads shared borrowed
    // state; per-view results are collected independently and appended in
    // view order below, which keeps the output deterministic regardless of
    // scheduling.
    let per_view: Vec<Vec<Match>> = work
        .par_iter()
        .map(|(view, base, selection)| {
            let slice = TableSlice::new(base, selection);
            // Prototype matches frequently share a source attribute (one match
            // per target attribute); build each view-restricted column — and
            // thereby its memoized matcher profiles — once per attribute.
            let mut restricted_cols: std::collections::BTreeMap<&str, ColumnData> =
                std::collections::BTreeMap::new();
            from_this_table
                .iter()
                .zip(&target_cols)
                .map(|(m, target_col)| {
                    // The view projects all base attributes (select-only), so
                    // the matched attribute is always present.
                    let restricted =
                        restricted_cols.entry(m.source.attribute.as_str()).or_insert_with(|| {
                            let column = slice
                                .column(&m.source.attribute)
                                .expect("prototype matches come from the view's base table");
                            ColumnData::from_slice(&column, view.name.clone())
                        });
                    let (score, confidence) =
                        matcher.rescore(outcome, restricted, &m.source, target_col);
                    m.with_context(view.name.clone(), view.condition.clone(), score, confidence)
                })
                .collect()
        })
        .collect();

    for view_matches in per_view {
        candidates.extend(view_matches);
    }
    Ok(candidates)
}

/// The legacy, materializing implementation of [`score_candidates`]: evaluates
/// every view into an owned [`Table`] (O(views × rows) tuple clones) before
/// scoring.
///
/// Kept as the reference implementation: the equivalence test in
/// `tests/tests/selection_equivalence.rs` asserts both paths produce identical
/// candidate lists, and `bench_scaling` measures the speedup of the zero-copy
/// path against this baseline. Not intended for production use.
#[doc(hidden)]
pub fn score_candidates_materializing(
    source: &Database,
    target: &Database,
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
) -> Result<MatchList> {
    let mut candidates = MatchList::new();
    let from_this_table: Vec<&Match> =
        prototype.iter().filter(|m| m.base_table == source_table.name()).collect();
    if from_this_table.is_empty() {
        return Ok(candidates);
    }
    for view in views {
        let view_instance = view.evaluate(source)?;
        if view_instance.is_empty() {
            continue;
        }
        for m in &from_this_table {
            let restricted = ColumnData::from_table(&view_instance, &m.source.attribute)?;
            let target_table = target.require_table(&m.target.table)?;
            let target_col = ColumnData::from_table(target_table, &m.target.attribute)?;
            let (score, confidence) = matcher.rescore(outcome, &restricted, &m.source, &target_col);
            candidates.push(m.with_context(
                view.name.clone(),
                view.condition.clone(),
                score,
                confidence,
            ));
        }
    }
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_matching::MatchingConfig;
    use cxm_relational::{tuple, Attribute, Condition, TableSchema};

    fn source_db() -> Database {
        let inv = Table::with_rows(
            TableSchema::new(
                "inv",
                vec![
                    Attribute::int("id"),
                    Attribute::text("name"),
                    Attribute::int("type"),
                    Attribute::text("descr"),
                ],
            ),
            vec![
                tuple![0, "leaves of grass", 1, "hardcover"],
                tuple![1, "the white album", 2, "audio cd"],
                tuple![2, "heart of darkness", 1, "paperback"],
                tuple![3, "wasteland", 1, "paperback"],
                tuple![4, "hotel california", 2, "elektra cd"],
                tuple![5, "kind of blue", 2, "columbia cd"],
            ],
        )
        .unwrap();
        Database::new("RS").with_table(inv)
    }

    fn target_db() -> Database {
        let book = Table::with_rows(
            TableSchema::new("book", vec![Attribute::text("title"), Attribute::text("format")]),
            vec![
                tuple!["the historian", "hardcover"],
                tuple!["war and peace", "paperback"],
                tuple!["middlemarch", "paperback"],
            ],
        )
        .unwrap();
        let music = Table::with_rows(
            TableSchema::new("music", vec![Attribute::text("title"), Attribute::text("label")]),
            vec![tuple!["x&y", "capitol cd"], tuple!["abbey road", "apple cd"]],
        )
        .unwrap();
        Database::new("RT").with_table(book).with_table(music)
    }

    #[test]
    fn candidates_cover_every_view_times_prototype_match() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.3));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
        ];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        assert_eq!(candidates.len(), 2 * outcome.accepted.len());
        assert!(candidates.iter().all(|c| c.is_contextual()));
        assert!(candidates.iter().all(|c| c.base_table == "inv"));
    }

    #[test]
    fn the_right_context_scores_higher_than_the_wrong_one() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.3));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
        ];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        // For descr → book.format, the type=1 (book) view should outscore type=2.
        let conf_of = |view: &str| {
            candidates
                .iter()
                .find(|c| {
                    c.source.table == view
                        && c.source.attribute == "descr"
                        && c.target.table == "book"
                        && c.target.attribute == "format"
                })
                .map(|c| c.confidence)
        };
        if let (Some(book_view), Some(cd_view)) =
            (conf_of("inv[type = 1]"), conf_of("inv[type = 2]"))
        {
            assert!(
                book_view > cd_view,
                "book-context format match ({book_view}) should beat cd-context ({cd_view})"
            );
        }
    }

    #[test]
    fn empty_views_and_foreign_prototypes_are_skipped() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::with_defaults();
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        // A view selecting nothing.
        let views = vec![ViewDef::named_by_condition("inv", Condition::eq("type", 99))];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        assert!(candidates.is_empty());

        // Prototype matches from another table contribute nothing.
        let foreign = vec![cxm_matching::Match::standard(
            cxm_relational::AttrRef::new("other", "x"),
            cxm_relational::AttrRef::new("book", "title"),
            0.9,
            0.9,
        )];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &[ViewDef::named_by_condition("inv", Condition::eq("type", 1))],
            &foreign,
        )
        .unwrap();
        assert!(candidates.is_empty());
    }

    #[test]
    fn foreign_base_table_views_error_instead_of_panicking() {
        // A view over another table of the source database: matches on `inv`
        // reference attributes that `price` does not have. Both paths must
        // return Err, not panic (regression test for the parallel path).
        let mut source = source_db();
        source.replace_table(
            Table::with_rows(
                TableSchema::new("price", vec![Attribute::int("pid"), Attribute::float("amt")]),
                vec![tuple![0, 9.99], tuple![1, 4.99]],
            )
            .unwrap(),
        );
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.2));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![ViewDef::named_by_condition("price", Condition::eq("pid", 0))];
        let fast = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        );
        let reference = score_candidates_materializing(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        );
        assert!(fast.is_err(), "zero-copy path must surface the error");
        assert!(reference.is_err(), "materializing path errors on the same input");

        // A foreign view whose selection is EMPTY is skipped before any
        // attribute validation — both paths return Ok(empty), not Err.
        let empty_views = vec![ViewDef::named_by_condition("price", Condition::eq("pid", 99))];
        let fast = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &empty_views,
            &outcome.accepted,
        );
        let reference = score_candidates_materializing(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &empty_views,
            &outcome.accepted,
        );
        assert!(matches!(&fast, Ok(c) if c.is_empty()), "{fast:?}");
        assert!(matches!(&reference, Ok(c) if c.is_empty()), "{reference:?}");
    }

    #[test]
    fn zero_copy_path_equals_materializing_path() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.2));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
            ViewDef::named_by_condition("inv", Condition::is_in("type", [1, 2])),
            ViewDef::named_by_condition("inv", Condition::eq("type", 99)),
        ];
        let fast = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        let reference = score_candidates_materializing(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        assert_eq!(fast.len(), reference.len());
        for (a, b) in fast.iter().zip(reference.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn parallel_scoring_is_deterministic() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.2));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views: Vec<ViewDef> =
            (1..=2).map(|v| ViewDef::named_by_condition("inv", Condition::eq("type", v))).collect();
        let run = || {
            score_candidates(&source, &target, &matcher, &outcome, table, &views, &outcome.accepted)
                .unwrap()
        };
        let first = run();
        for _ in 0..4 {
            let again = run();
            assert_eq!(format!("{first:?}"), format!("{again:?}"));
        }
    }
}
