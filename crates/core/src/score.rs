//! `ScoreMatch` — re-scoring prototype matches against candidate views
//! (Figure 5, lines 6–11).
//!
//! For every candidate view `Vc` and every prototype match `m` from the view's
//! base table, the match `m′ = m with RS replaced by Vc` is scored by the
//! standard matching machinery *restricted to the subset of sample data
//! meeting `c`*, and the confidence is computed against the score distribution
//! of the original (unrestricted) attribute so that it is comparable to the
//! prototype's confidence.
//!
//! ## Execution strategy
//!
//! This is the hottest loop of the system — O(views × matches) rescorings per
//! source table — so it runs on the zero-copy execution layer:
//!
//! 1. each view is evaluated to a [`RowSelection`] through a shared
//!    [`SelectionCache`] (condition atoms recurring across a view family are
//!    scanned once per base table);
//! 2. per-match *target* columns are extracted once, outside the view loop;
//! 3. the view × match scoring grid is computed in parallel with `rayon`,
//!    one task per view, each building borrowed [`ColumnData`] values from
//!    [`TableSlice`]s — zero `Tuple` clones anywhere on this path;
//! 4. results are collected per view and appended in view order, so the
//!    output is byte-identical to the sequential evaluation (determinism is
//!    asserted by the integration tests).

use std::sync::{Arc, Mutex};

use cxm_matching::index::{telemetry as index_telemetry, CandidateScan};
use cxm_matching::{
    ColumnArtifacts, ColumnData, GramIndex, Match, MatchList, MatchingOutcome, StandardMatcher,
};
use cxm_relational::{Database, Result, RowSelection, SelectionCache, Table, TableSlice, ViewDef};
use rayon::prelude::*;

/// Score the contextual versions of the prototype matches against each
/// candidate view. Returns the contextual candidate list `RL` (every `(m′, s)`
/// pair of the algorithm), in deterministic (view, match) order.
///
/// Extracts its own target columns; callers holding a hoisted
/// [`ColumnData::all_from_database`] batch (the sharded `ContextMatch` path)
/// should use [`score_candidates_with_targets`] so target profiles are reused
/// across source tables.
pub fn score_candidates(
    source: &Database,
    target: &Database,
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
) -> Result<MatchList> {
    score_candidates_with_targets(
        source,
        target,
        &[],
        matcher,
        outcome,
        source_table,
        views,
        prototype,
    )
}

/// [`score_candidates`] against a pre-extracted target column batch: each
/// match's target column is looked up in `target_batch` (falling back to
/// fresh extraction when absent, e.g. for an empty batch), so the memoized
/// target profiles built during standard matching are reused instead of
/// rebuilt once per source table.
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_with_targets<'a>(
    source: &Database,
    target: &'a Database,
    target_batch: &[ColumnData<'a>],
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
) -> Result<MatchList> {
    score_candidates_prepared(
        source,
        target,
        target_batch,
        matcher,
        outcome,
        source_table,
        views,
        prototype,
        None,
        None,
    )
}

/// A cross-run selection cache together with the per-table content
/// fingerprints guarding it.
///
/// The fingerprints **must cover every table of the source database** the
/// views select from. They are validated
/// ([`SelectionCache::validate_fingerprint`]) under the *same lock
/// acquisition* that serves this call's selections — validating in a
/// separate critical section would let two concurrent runs whose
/// same-named, equally sized source tables differ in content interleave
/// validation and use, serving one run the other's row indices.
#[derive(Clone, Copy)]
pub struct SharedSelections<'a> {
    /// The cache shared across runs (and threads).
    pub cache: &'a Mutex<SelectionCache>,
    /// Content fingerprint per source table name ([`Table::fingerprint`]).
    pub source_fingerprints: &'a std::collections::BTreeMap<String, u64>,
    /// Optional cross-run cache of view-restricted column profiles (see
    /// [`RestrictedProfileCache`]). When present, every restricted column
    /// built by [`score_candidates_prepared`] first consults the cache and
    /// publishes its freshly built artifacts afterwards, so a warm repeat
    /// of the same views over the same source content builds **zero**
    /// q-gram profiles.
    pub restricted_profiles: Option<&'a Mutex<RestrictedProfileCache>>,
    /// Version of the catalog snapshot whose warm caches these are (`0`
    /// outside a snapshot-versioned catalog, e.g. ad-hoc shared caches in
    /// tests). The version is threaded into every restricted-profile
    /// publication so the cache can report which generations its entries
    /// came from ([`RestrictedProfileCache::version_span`]); the keys
    /// themselves stay content-fingerprinted, so entries remain valid — and
    /// shareable — across versions.
    pub catalog_version: u64,
}

/// Identity of one view-restricted column's derived artifacts, at **column
/// granularity**: the content fingerprint of the restricted attribute's base
/// column, the view's selection condition, the combined content fingerprint
/// of the columns that condition reads, and the identity token of the
/// [`cxm_matching::GramInterner`] the artifacts were built against.
///
/// Two keys are equal exactly when the restricted value bag is guaranteed
/// equal — the restricted bag is a function of (attribute column values in
/// row order, condition, condition-column values in row order), each pinned
/// by a field — *and* the interned ids live in the same id space. Cached
/// artifacts can therefore never leak across different contents or
/// interners: changed content re-keys and simply misses. Unlike the previous
/// table-fingerprint key, editing an *unrelated* column of the base table
/// no longer invalidates anything.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RestrictedKey {
    /// [`Table::column_fingerprint`] of the restricted (scored) attribute in
    /// the view's base table.
    pub column_fingerprint: u64,
    /// The view's selection condition (structural equality/hashing).
    pub condition: cxm_relational::Condition,
    /// [`condition_fingerprint`] over the base table: the combined content
    /// fingerprint of every column the condition reads.
    pub condition_fingerprint: u64,
    /// [`cxm_matching::GramInterner::token`] of the column's interner.
    pub interner: u64,
}

impl RestrictedKey {
    /// Build the key for one restricted column under the given interner
    /// identity.
    pub fn new(
        column_fingerprint: u64,
        condition: &cxm_relational::Condition,
        condition_fingerprint: u64,
        interner: u64,
    ) -> Self {
        RestrictedKey {
            column_fingerprint,
            condition: condition.clone(),
            condition_fingerprint,
            interner,
        }
    }
}

/// The combined content fingerprint of the columns `condition` reads from
/// `base` — the condition half of a [`RestrictedKey`]. Attribute names are
/// folded in alongside their [`Table::column_fingerprint`]s (a condition
/// mentioning an attribute the table does not have contributes a marker
/// byte), so conditions over different column sets never alias. A condition
/// reading no columns at all (`Condition::True`) hashes to a constant: its
/// selection is the full table, which the attribute-column fingerprint
/// already pins.
pub fn condition_fingerprint(base: &Table, condition: &cxm_relational::Condition) -> u64 {
    let mut h = cxm_relational::Fnv64::with_seed(0x636f_6e64_5f66_7031);
    for attribute in condition.attributes() {
        h.write_str(&attribute);
        match base.column_fingerprint(&attribute) {
            Ok(fingerprint) => h.write_u64(fingerprint),
            Err(_) => h.write_u8(0),
        }
    }
    h.finish()
}

/// A bounded, fingerprint-keyed cache of view-restricted column artifacts —
/// the warm-path answer to the one rebuild the target catalog could not
/// absorb: `ScoreMatch` re-derives each candidate view's restricted columns
/// per request, and before this cache it re-profiled them per request too.
///
/// Entries are keyed by [`RestrictedKey`] (base-table content fingerprint +
/// condition signature + attribute), so no explicit invalidation is needed:
/// content changes re-key, and stale entries age out through the
/// oldest-first bound. A long-lived match service carries one instance
/// across catalog snapshots and threads it into
/// [`score_candidates_prepared`] via [`SharedSelections`].
#[derive(Debug, Clone, Default)]
pub struct RestrictedProfileCache {
    entries: crate::bounded::BoundedCache<RestrictedKey, RestrictedEntry>,
}

/// One cached restricted column: its artifacts plus the catalog version that
/// published it (diagnostic only — validity comes from the content key).
#[derive(Debug, Clone)]
struct RestrictedEntry {
    artifacts: ColumnArtifacts,
    version: u64,
}

impl RestrictedProfileCache {
    /// A cache retaining at most `capacity` restricted columns (oldest
    /// inserted evicted first); `0` disables caching entirely.
    pub fn with_capacity(capacity: usize) -> Self {
        RestrictedProfileCache { entries: crate::bounded::BoundedCache::with_capacity(capacity) }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Number of cached restricted columns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.entries.hits()
    }

    /// Lookups that found nothing so far.
    pub fn misses(&self) -> usize {
        self.entries.misses()
    }

    /// Entries evicted by the capacity bound so far. A steadily climbing
    /// eviction count under a steady workload means the bound is too small
    /// for the live view/column population — the warm path silently degrades
    /// to rebuilding, which is why the service surfaces this per request.
    pub fn evictions(&self) -> usize {
        self.entries.evictions()
    }

    /// The `(oldest, newest)` catalog versions among live entries (`None`
    /// when empty) — a diagnostic for how many catalog generations the
    /// content-keyed entries have outlived.
    pub fn version_span(&self) -> Option<(u64, u64)> {
        let mut versions = self.entries.values().map(|e| e.version);
        let first = versions.next()?;
        let (min, max) = versions.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v)));
        Some((min, max))
    }

    /// The artifacts cached for `key`, recording a hit or miss.
    pub fn get(&mut self, key: &RestrictedKey) -> Option<ColumnArtifacts> {
        self.entries.get(key).map(|entry| entry.artifacts.clone())
    }

    /// Cache `artifacts` under `key`, tagged with the catalog `version` that
    /// published them, evicting oldest entries beyond the capacity.
    /// Re-inserting an existing key replaces its artifacts in place (its age
    /// is unchanged).
    pub fn insert(&mut self, key: RestrictedKey, artifacts: ColumnArtifacts, version: u64) {
        self.entries.insert(key, RestrictedEntry { artifacts, version });
    }

    /// Export every live entry as `(key, artifacts, version)` in insertion
    /// order (oldest first) — replaying these through
    /// [`RestrictedProfileCache::insert`] on a fresh cache reproduces the
    /// same contents with the same eviction ages. Used by warm-state
    /// persistence.
    pub fn export(&self) -> Vec<(RestrictedKey, ColumnArtifacts, u64)> {
        self.entries
            .iter_ordered()
            .map(|(key, entry)| (key.clone(), entry.artifacts.clone(), entry.version))
            .collect()
    }
}

/// [`score_candidates_with_targets`] with an optional *shared* selection
/// cache: when `shared_selections` is provided, view conditions are resolved
/// through it (under its lock, after fingerprint validation — see
/// [`SharedSelections`]) instead of a run-local cache, so selection vectors
/// survive across calls — and, for a long-lived match service, across
/// requests. Results are byte-identical to the local-cache path either way.
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_prepared<'a>(
    source: &Database,
    target: &'a Database,
    target_batch: &[ColumnData<'a>],
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
    shared_selections: Option<SharedSelections<'_>>,
    index: Option<&GramIndex>,
) -> Result<MatchList> {
    // Trust the inverted index only when it demonstrably describes the
    // hoisted target batch; anything else scores exactly, unhinted.
    let index = index.filter(|idx| idx.matches_batch(target_batch));
    let mut candidates = MatchList::new();
    let from_this_table: Vec<&Match> =
        prototype.iter().filter(|m| m.base_table == source_table.name()).collect();
    if from_this_table.is_empty() || views.is_empty() {
        return Ok(candidates);
    }

    // Resolve every view to (base table, selection) serially so the atom
    // cache is shared across the whole family; empty views support no
    // matches and are skipped entirely. Matched source attributes are
    // validated (against the view's *output* schema) for the surviving
    // views, so the parallel loop below cannot fail — mirroring exactly when
    // the materializing path reports an `Err` instead of scoring.
    //
    // With a shared cache the lock spans only this resolve loop (atom scans
    // and merges), never the scoring grid below. Fingerprint validation
    // happens inside the same critical section as the selects it guards.
    let mut local_cache = SelectionCache::new();
    let mut shared_guard = shared_selections.map(|shared| {
        let mut guard = shared.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (table, fingerprint) in shared.source_fingerprints {
            guard.validate_fingerprint(table, *fingerprint);
        }
        guard
    });
    let cache: &mut SelectionCache = match shared_guard.as_deref_mut() {
        Some(shared) => shared,
        None => &mut local_cache,
    };
    let mut work: Vec<(&ViewDef, &Table, Arc<RowSelection>)> = Vec::with_capacity(views.len());
    for view in views {
        let base = source.require_table(&view.base_table)?;
        let selection = view.select_cached(base, cache)?;
        if selection.is_empty() {
            continue;
        }
        match &view.projection {
            // Select-only views (the common case) expose the base schema
            // as-is: validate against it directly, no schema clone.
            None => {
                for m in &from_this_table {
                    base.schema().require_index(&m.source.attribute)?;
                }
            }
            // Select-project views need the derived output schema so a
            // projected-away attribute errors exactly like the
            // materializing path.
            Some(_) => {
                let view_schema = view.schema(base.schema())?;
                for m in &from_this_table {
                    view_schema.require_index(&m.source.attribute)?;
                }
            }
        }
        work.push((view, base, selection));
    }
    // Release the shared cache before the (parallel, expensive) scoring grid.
    drop(shared_guard);
    if work.is_empty() {
        return Ok(candidates);
    }

    // Target columns depend only on the match, not on the view: take each one
    // from the hoisted batch when available — a clone shares the memoized
    // profiles, so a column profiled during standard matching is never
    // re-profiled here — and extract it once otherwise (the legacy path
    // re-extracts per view × match).
    let by_attr: std::collections::HashMap<&cxm_relational::AttrRef, &ColumnData<'a>> =
        target_batch.iter().map(|c| (&c.attr, c)).collect();
    let target_cols: Vec<ColumnData<'a>> = from_this_table
        .iter()
        .map(|m| {
            if let Some(col) = by_attr.get(&m.target) {
                return Ok((*col).clone());
            }
            let target_table = target.require_table(&m.target.table)?;
            ColumnData::from_table(target_table, &m.target.attribute)
        })
        .collect::<Result<_>>()?;

    // Lines 6–11, parallel over views. Each task only reads shared borrowed
    // state; per-view results are collected independently and appended in
    // view order below, which keeps the output deterministic regardless of
    // scheduling.
    let profile_cache = shared_selections.and_then(|shared| shared.restricted_profiles);
    let catalog_version = shared_selections.map(|shared| shared.catalog_version).unwrap_or(0);
    let per_view: Vec<Vec<Match>> = work
        .par_iter()
        .map(|(view, base, selection)| {
            let slice = TableSlice::new(base, selection);
            // Cross-request identity of this view's restricted columns: the
            // condition signature over the base table's *column* content
            // fingerprints (None outside the warm service path — then
            // nothing is cached). The per-column fingerprints are cached on
            // the table instance, so after the service's admission scan this
            // is a lookup, not a rescan.
            let cache_ctx =
                profile_cache.map(|cache| (cache, condition_fingerprint(base, &view.condition)));
            // Prototype matches frequently share a source attribute (one match
            // per target attribute); build each view-restricted column — and
            // thereby its memoized matcher profiles — once per attribute. The
            // bool tracks columns the cache has not seen, so their freshly
            // built artifacts are published after the scoring pass; the
            // `Option<CandidateScan>` holds the column's lazily-computed TAAT
            // scan over the inverted index (computed at the first pair whose
            // exact path would profile the column anyway — see `hintable`).
            let mut restricted_cols: std::collections::BTreeMap<
                &str,
                (ColumnData, bool, Option<CandidateScan>),
            > = std::collections::BTreeMap::new();
            let scored: Vec<Match> = from_this_table
                .iter()
                .zip(&target_cols)
                .map(|(m, target_col)| {
                    // The view projects all base attributes (select-only), so
                    // the matched attribute is always present.
                    let (restricted, _, scan) =
                        restricted_cols.entry(m.source.attribute.as_str()).or_insert_with(|| {
                            let column = slice
                                .column(&m.source.attribute)
                                .expect("prototype matches come from the view's base table");
                            // The restricted column adopts its target
                            // counterpart's interner so the interned kernels
                            // apply whatever interner the caller scoped.
                            let column = ColumnData::from_slice(&column, view.name.clone())
                                .with_interner(Arc::clone(target_col.interner()));
                            let mut fresh_for_cache = false;
                            if let Some((cache, condition_fp)) = cache_ctx {
                                let key = RestrictedKey::new(
                                    base.column_fingerprint(&m.source.attribute).expect(
                                        "prototype matches come from the view's base table",
                                    ),
                                    &view.condition,
                                    condition_fp,
                                    column.interner().token(),
                                );
                                let cached = cache
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .get(&key);
                                match cached {
                                    Some(artifacts) => column.seed_artifacts(&artifacts),
                                    None => fresh_for_cache = true,
                                }
                            }
                            (column, fresh_for_cache, None)
                        });
                    let hint = index.and_then(|idx| {
                        if !hintable(restricted, target_col, idx) {
                            return None;
                        }
                        if scan.is_none() {
                            let fresh = idx.scan(&restricted.qgram3_ids(), &restricted.value_ids());
                            index_telemetry::record_scan(fresh.len(), fresh.surviving());
                            *scan = Some(fresh);
                        }
                        idx.slot_of(&m.target).map(|slot| scan.as_ref().unwrap().hint(slot))
                    });
                    let (score, confidence) =
                        matcher.rescore_hinted(outcome, restricted, &m.source, target_col, hint);
                    m.with_context(view.name.clone(), view.condition.clone(), score, confidence)
                })
                .collect();
            // Publish the artifacts of columns the cache missed, in one lock.
            if let Some((cache, condition_fp)) = cache_ctx {
                let fresh: Vec<(&str, &ColumnData)> = restricted_cols
                    .iter()
                    .filter(|(_, (_, fresh, _))| *fresh)
                    .map(|(attr, (column, _, _))| (*attr, column))
                    .collect();
                if !fresh.is_empty() {
                    let mut cache = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    for (attr, column) in fresh {
                        cache.insert(
                            RestrictedKey::new(
                                base.column_fingerprint(attr)
                                    .expect("prototype matches come from the view's base table"),
                                &view.condition,
                                condition_fp,
                                column.interner().token(),
                            ),
                            column.harvest_artifacts(),
                            catalog_version,
                        );
                    }
                }
            }
            scored
        })
        .collect();

    for view_matches in per_view {
        candidates.extend(view_matches);
    }
    Ok(candidates)
}

/// Whether an index scan of `restricted` may be forced for this pair without
/// perturbing the exact path's profile-build accounting: a scan builds the
/// restricted column's interned artifacts, which the exact path does exactly
/// when some q-gram-applicable pair exists — this pair being applicable is
/// the sufficient (and cheapest) witness. Both columns must live in the
/// index's interner id space for the hint to mean anything.
fn hintable(restricted: &ColumnData, target: &ColumnData, index: &GramIndex) -> bool {
    !restricted.is_empty()
        && !target.is_empty()
        && (!restricted.looks_numeric() || !target.looks_numeric())
        && restricted.interner().token() == index.interner_token()
        && target.interner().token() == index.interner_token()
}

/// The legacy, materializing implementation of [`score_candidates`]: evaluates
/// every view into an owned [`Table`] (O(views × rows) tuple clones) before
/// scoring.
///
/// Kept as the reference implementation: the equivalence test in
/// `tests/tests/selection_equivalence.rs` asserts both paths produce identical
/// candidate lists, and `bench_scaling` measures the speedup of the zero-copy
/// path against this baseline. Not intended for production use.
#[doc(hidden)]
pub fn score_candidates_materializing(
    source: &Database,
    target: &Database,
    matcher: &StandardMatcher,
    outcome: &MatchingOutcome,
    source_table: &Table,
    views: &[ViewDef],
    prototype: &MatchList,
) -> Result<MatchList> {
    let mut candidates = MatchList::new();
    let from_this_table: Vec<&Match> =
        prototype.iter().filter(|m| m.base_table == source_table.name()).collect();
    if from_this_table.is_empty() {
        return Ok(candidates);
    }
    for view in views {
        let view_instance = view.evaluate(source)?;
        if view_instance.is_empty() {
            continue;
        }
        for m in &from_this_table {
            let restricted = ColumnData::from_table(&view_instance, &m.source.attribute)?;
            let target_table = target.require_table(&m.target.table)?;
            let target_col = ColumnData::from_table(target_table, &m.target.attribute)?;
            let (score, confidence) = matcher.rescore(outcome, &restricted, &m.source, &target_col);
            candidates.push(m.with_context(
                view.name.clone(),
                view.condition.clone(),
                score,
                confidence,
            ));
        }
    }
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_matching::MatchingConfig;
    use cxm_relational::{tuple, Attribute, Condition, TableSchema};

    fn source_db() -> Database {
        let inv = Table::with_rows(
            TableSchema::new(
                "inv",
                vec![
                    Attribute::int("id"),
                    Attribute::text("name"),
                    Attribute::int("type"),
                    Attribute::text("descr"),
                ],
            ),
            vec![
                tuple![0, "leaves of grass", 1, "hardcover"],
                tuple![1, "the white album", 2, "audio cd"],
                tuple![2, "heart of darkness", 1, "paperback"],
                tuple![3, "wasteland", 1, "paperback"],
                tuple![4, "hotel california", 2, "elektra cd"],
                tuple![5, "kind of blue", 2, "columbia cd"],
            ],
        )
        .unwrap();
        Database::new("RS").with_table(inv)
    }

    fn target_db() -> Database {
        let book = Table::with_rows(
            TableSchema::new("book", vec![Attribute::text("title"), Attribute::text("format")]),
            vec![
                tuple!["the historian", "hardcover"],
                tuple!["war and peace", "paperback"],
                tuple!["middlemarch", "paperback"],
            ],
        )
        .unwrap();
        let music = Table::with_rows(
            TableSchema::new("music", vec![Attribute::text("title"), Attribute::text("label")]),
            vec![tuple!["x&y", "capitol cd"], tuple!["abbey road", "apple cd"]],
        )
        .unwrap();
        Database::new("RT").with_table(book).with_table(music)
    }

    #[test]
    fn candidates_cover_every_view_times_prototype_match() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.3));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
        ];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        assert_eq!(candidates.len(), 2 * outcome.accepted.len());
        assert!(candidates.iter().all(|c| c.is_contextual()));
        assert!(candidates.iter().all(|c| c.base_table == "inv"));
    }

    #[test]
    fn the_right_context_scores_higher_than_the_wrong_one() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.3));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
        ];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        // For descr → book.format, the type=1 (book) view should outscore type=2.
        let conf_of = |view: &str| {
            candidates
                .iter()
                .find(|c| {
                    c.source.table == view
                        && c.source.attribute == "descr"
                        && c.target.table == "book"
                        && c.target.attribute == "format"
                })
                .map(|c| c.confidence)
        };
        if let (Some(book_view), Some(cd_view)) =
            (conf_of("inv[type = 1]"), conf_of("inv[type = 2]"))
        {
            assert!(
                book_view > cd_view,
                "book-context format match ({book_view}) should beat cd-context ({cd_view})"
            );
        }
    }

    #[test]
    fn empty_views_and_foreign_prototypes_are_skipped() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::with_defaults();
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        // A view selecting nothing.
        let views = vec![ViewDef::named_by_condition("inv", Condition::eq("type", 99))];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        assert!(candidates.is_empty());

        // Prototype matches from another table contribute nothing.
        let foreign = vec![cxm_matching::Match::standard(
            cxm_relational::AttrRef::new("other", "x"),
            cxm_relational::AttrRef::new("book", "title"),
            0.9,
            0.9,
        )];
        let candidates = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &[ViewDef::named_by_condition("inv", Condition::eq("type", 1))],
            &foreign,
        )
        .unwrap();
        assert!(candidates.is_empty());
    }

    #[test]
    fn foreign_base_table_views_error_instead_of_panicking() {
        // A view over another table of the source database: matches on `inv`
        // reference attributes that `price` does not have. Both paths must
        // return Err, not panic (regression test for the parallel path).
        let mut source = source_db();
        source.replace_table(
            Table::with_rows(
                TableSchema::new("price", vec![Attribute::int("pid"), Attribute::float("amt")]),
                vec![tuple![0, 9.99], tuple![1, 4.99]],
            )
            .unwrap(),
        );
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.2));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![ViewDef::named_by_condition("price", Condition::eq("pid", 0))];
        let fast = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        );
        let reference = score_candidates_materializing(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        );
        assert!(fast.is_err(), "zero-copy path must surface the error");
        assert!(reference.is_err(), "materializing path errors on the same input");

        // A foreign view whose selection is EMPTY is skipped before any
        // attribute validation — both paths return Ok(empty), not Err.
        let empty_views = vec![ViewDef::named_by_condition("price", Condition::eq("pid", 99))];
        let fast = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &empty_views,
            &outcome.accepted,
        );
        let reference = score_candidates_materializing(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &empty_views,
            &outcome.accepted,
        );
        assert!(matches!(&fast, Ok(c) if c.is_empty()), "{fast:?}");
        assert!(matches!(&reference, Ok(c) if c.is_empty()), "{reference:?}");
    }

    #[test]
    fn zero_copy_path_equals_materializing_path() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.2));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
            ViewDef::named_by_condition("inv", Condition::is_in("type", [1, 2])),
            ViewDef::named_by_condition("inv", Condition::eq("type", 99)),
        ];
        let fast = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        let reference = score_candidates_materializing(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();
        assert_eq!(fast.len(), reference.len());
        for (a, b) in fast.iter().zip(reference.iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn restricted_profile_cache_round_trips_and_bounds() {
        let mut cache = RestrictedProfileCache::with_capacity(2);
        assert!(cache.is_empty());
        assert_eq!(cache.version_span(), None);
        let key = |i: u64| RestrictedKey::new(i, &Condition::eq("type", 1), 0xc0de, 7);
        assert!(cache.get(&key(1)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(key(1), cxm_matching::ColumnArtifacts::default(), 3);
        cache.insert(key(2), cxm_matching::ColumnArtifacts::default(), 5);
        assert!(cache.get(&key(1)).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.version_span(), Some((3, 5)));
        // Third insert evicts the oldest (key 1) and counts the eviction.
        assert_eq!(cache.evictions(), 0);
        cache.insert(key(3), cxm_matching::ColumnArtifacts::default(), 5);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.version_span(), Some((5, 5)));
        // Different conditions / condition contents / interners key separately.
        assert_ne!(key(1), RestrictedKey::new(1, &Condition::eq("type", 2), 0xc0de, 7));
        assert_ne!(key(1), RestrictedKey::new(1, &Condition::eq("type", 1), 0xbeef, 7));
        assert_ne!(key(1), RestrictedKey::new(1, &Condition::eq("type", 1), 0xc0de, 8));
        // Zero capacity disables caching.
        let mut off = RestrictedProfileCache::with_capacity(0);
        off.insert(key(1), cxm_matching::ColumnArtifacts::default(), 0);
        assert!(off.is_empty());
        assert_eq!(off.capacity(), 0);
    }

    #[test]
    fn condition_fingerprints_track_condition_columns_only() {
        let source = source_db();
        let inv = source.table("inv").unwrap();
        let on_type = condition_fingerprint(inv, &Condition::eq("type", 1));
        // The same condition over the same content fingerprints equally, and
        // the *value* inside the condition does not matter (it is keyed
        // separately, structurally).
        assert_eq!(on_type, condition_fingerprint(inv, &Condition::eq("type", 2)));
        // Conditions over different columns fingerprint differently.
        assert_ne!(on_type, condition_fingerprint(inv, &Condition::eq("descr", "x")));
        // True reads no columns: constant fingerprint, different from any
        // column-reading condition with overwhelming probability.
        assert_eq!(
            condition_fingerprint(inv, &Condition::True),
            condition_fingerprint(inv, &Condition::True)
        );
        // Editing a column the condition does NOT read leaves its
        // fingerprint unchanged; editing one it does read changes it.
        let mut edited = source_db();
        let rows: Vec<_> = inv
            .rows()
            .iter()
            .map(|r| {
                cxm_relational::Tuple::new(vec![
                    r.at(0).clone(),
                    r.at(1).clone(),
                    r.at(2).clone(),
                    cxm_relational::Value::str("edited"),
                ])
            })
            .collect();
        edited.replace_table(Table::with_rows(inv.schema().clone(), rows).unwrap());
        let edited_inv = edited.table("inv").unwrap();
        assert_eq!(on_type, condition_fingerprint(edited_inv, &Condition::eq("type", 1)));
        assert_ne!(
            condition_fingerprint(inv, &Condition::eq("descr", "x")),
            condition_fingerprint(edited_inv, &Condition::eq("descr", "x")),
        );
        // A condition over a missing column still fingerprints (marker byte).
        let _ = condition_fingerprint(inv, &Condition::eq("missing", 1));
    }

    #[test]
    fn shared_restricted_cache_warms_across_calls() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.2));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views = vec![
            ViewDef::named_by_condition("inv", Condition::eq("type", 1)),
            ViewDef::named_by_condition("inv", Condition::eq("type", 2)),
        ];
        let selections = Mutex::new(SelectionCache::new());
        let fingerprints = source.table_fingerprints();
        let profiles = Mutex::new(RestrictedProfileCache::with_capacity(64));
        let shared = SharedSelections {
            cache: &selections,
            source_fingerprints: &fingerprints,
            restricted_profiles: Some(&profiles),
            catalog_version: 0,
        };
        let run = || {
            score_candidates_prepared(
                &source,
                &target,
                &[],
                &matcher,
                &outcome,
                table,
                &views,
                &outcome.accepted,
                Some(shared),
                None,
            )
            .unwrap()
        };
        let baseline = score_candidates(
            &source,
            &target,
            &matcher,
            &outcome,
            table,
            &views,
            &outcome.accepted,
        )
        .unwrap();

        let first = run();
        let (hits_after_first, misses_after_first) = {
            let cache = profiles.lock().unwrap();
            assert!(!cache.is_empty(), "first call must populate the cache");
            (cache.hits(), cache.misses())
        };
        assert_eq!(hits_after_first, 0, "cold cache cannot hit");
        assert!(misses_after_first > 0);

        let second = run();
        {
            let cache = profiles.lock().unwrap();
            assert_eq!(cache.misses(), misses_after_first, "warm repeat must not miss");
            assert!(cache.hits() > 0, "warm repeat must be served from the cache");
        }
        // Byte-identical to the uncached path, warm or cold.
        for candidates in [&first, &second] {
            assert_eq!(candidates.len(), baseline.len());
            for (a, b) in candidates.iter().zip(baseline.iter()) {
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }
    }

    #[test]
    fn parallel_scoring_is_deterministic() {
        let source = source_db();
        let target = target_db();
        let matcher = StandardMatcher::new(MatchingConfig::with_tau(0.2));
        let table = source.table("inv").unwrap();
        let outcome = matcher.match_table(table, &target);
        let views: Vec<ViewDef> =
            (1..=2).map(|v| ViewDef::named_by_condition("inv", Condition::eq("type", v))).collect();
        let run = || {
            score_candidates(&source, &target, &matcher, &outcome, table, &views, &outcome.accepted)
                .unwrap()
        };
        let first = run();
        for _ in 0..4 {
            let again = run();
            assert_eq!(format!("{first:?}"), format!("{again:?}"));
        }
    }
}
