//! The `ContextMatch` algorithm (Figure 5).
//!
//! ```text
//! ContextMatch(ℛS, ℛT):
//!   M ← ∅
//!   for RS ∈ ℛS:
//!     M  := StandardMatch(RS, ℛT, τ)
//!     C  := InferCandidateViews(RS, M, EarlyDisjuncts)
//!     for c ∈ C:
//!       Vc := RS where c
//!       for m ∈ M from RS:
//!         m′ := m with RS replaced by Vc
//!         RL := RL ∪ {(m′, ScoreMatch(m′))}
//!   M := SelectContextualMatches(M, RL, ω, EarlyDisjuncts)
//!   return M
//! ```
//!
//! [`ContextualMatcher::run`] performs exactly this computation and returns not
//! only the selected matches but also the intermediate artifacts (prototype
//! matches, candidate views, scored candidates), which the experiments and the
//! schema-mapping stage both need.
//!
//! ## Sharded execution
//!
//! The outer `for RS ∈ ℛS` loop is embarrassingly parallel: prototype
//! matching, view inference and candidate scoring for one source table never
//! read another table's intermediate state, and view inference is seeded per
//! call from the configuration, not from a shared RNG. [`ContextualMatcher::run`]
//! therefore extracts the target column batch once for the whole run and
//! shards the loop across cores (one task per source table, work-stealing
//! scheduler), merging the per-table artifacts in source-table order so the
//! output is byte-identical to the serial loop (retained as
//! [`ContextualMatcher::run_serial`] for equivalence tests and benches).
//! `SelectContextualMatches` then runs once over the merged artifacts, exactly
//! as in the serial algorithm.

use std::collections::BTreeMap;

use cxm_matching::{ColumnData, GramIndex, MatchList, StandardMatcher};
use cxm_relational::{Database, Result, Table, ViewDef, ViewFamily};
use rayon::prelude::*;

use crate::candidate_views::{flatten_views, infer_candidate_views};
use crate::config::ContextMatchConfig;
use crate::score::{score_candidates_prepared, SharedSelections};
use crate::select::select_contextual_matches;

/// A target side prepared ahead of a run — the catalog-aware entry point a
/// long-lived match service uses to hand `ContextMatch` warm artifacts
/// instead of letting it rebuild them per run.
///
/// * `database` — the target instance the run matches into.
/// * `columns` — the hoisted target column batch, in
///   [`ColumnData::all_from_database`] order over `database`. Its memoized
///   profiles persist wherever the batch lives, so a warm batch makes the run
///   skip all target-side re-profiling.
/// * `shared_selections` — optional cross-run selection cache plus the
///   source-table fingerprints that guard it; validation happens inside the
///   cache's critical sections (see [`SharedSelections`]). Through the same
///   handle a service also threads its cross-request
///   [`crate::score::RestrictedProfileCache`], so the view-restricted
///   columns derived during candidate scoring are profiled once per source
///   content instead of once per run.
#[derive(Clone, Copy)]
pub struct PreparedTargets<'a> {
    /// The target database instance.
    pub database: &'a Database,
    /// Hoisted target column batch over `database`.
    pub columns: &'a [ColumnData<'a>],
    /// Optional shared (cross-run) selection cache with its fingerprints.
    pub shared_selections: Option<SharedSelections<'a>>,
    /// Optional inverted gram index over `columns`
    /// ([`cxm_matching::GramIndex`]). When it describes the batch, prototype
    /// matching and candidate re-scoring prune proven-zero kernel
    /// evaluations; output stays byte-identical either way.
    pub index: Option<&'a GramIndex>,
}

/// Pre-extracted source columns, keyed by source table name with each
/// table's columns in schema order (the [`ColumnData::all_from_table`]
/// layout). A service that sees the same source database repeatedly caches
/// these so repeated submissions skip source-side re-profiling too.
pub type PreparedSourceColumns<'a> = BTreeMap<String, Vec<ColumnData<'a>>>;

/// The result of a `ContextMatch` run.
///
/// `Clone` is deliberate: a clone preserves every score and confidence bit
/// for bit, which is what lets [`crate::MatchResultCache`] serve memoized
/// results that are byte-identical to the run that produced them.
#[derive(Debug, Default, Clone)]
pub struct ContextMatchResult {
    /// The matches selected for presentation (`M` in the paper) — contextual
    /// matches where a view qualified, standard matches as fallback.
    pub selected: MatchList,
    /// The accepted standard (prototype) matches across all source tables.
    pub standard: MatchList,
    /// Every scored contextual candidate (`RL`).
    pub candidates: MatchList,
    /// Every candidate view that was evaluated.
    pub candidate_views: Vec<ViewDef>,
    /// The view families proposed by `InferCandidateViews`.
    pub families: Vec<ViewFamily>,
}

impl ContextMatchResult {
    /// The selected matches that are contextual (originate from views) — the
    /// edges the paper's evaluation considers.
    pub fn contextual_selected(&self) -> Vec<&cxm_matching::Match> {
        self.selected.iter().filter(|m| m.is_contextual()).collect()
    }

    /// Names of the views that back at least one selected contextual match.
    pub fn selected_views(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.contextual_selected().iter().map(|m| m.source.table.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// The view definitions backing the selected contextual matches.
    pub fn selected_view_defs(&self) -> Vec<&ViewDef> {
        let names = self.selected_views();
        self.candidate_views.iter().filter(|v| names.contains(&v.name)).collect()
    }
}

/// The contextual schema matcher: configuration plus the underlying standard
/// matching system.
#[derive(Debug)]
pub struct ContextualMatcher {
    config: ContextMatchConfig,
    standard: StandardMatcher,
}

impl ContextualMatcher {
    /// Create a matcher from a configuration.
    pub fn new(config: ContextMatchConfig) -> Self {
        ContextualMatcher { standard: StandardMatcher::new(config.matching), config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ContextMatchConfig {
        &self.config
    }

    /// Access to the underlying standard matcher (the schema-mapping stage
    /// reuses it).
    pub fn standard_matcher(&self) -> &StandardMatcher {
        &self.standard
    }

    /// Run `ContextMatch(source, target)`, sharded across source tables: the
    /// target column batch is extracted (and profiled) once, each source
    /// table's lines 4–11 run as an independent parallel task, and the
    /// per-table artifacts are merged in source-table order before the final
    /// selection — byte-identical to [`ContextualMatcher::run_serial`].
    pub fn run(&self, source: &Database, target: &Database) -> Result<ContextMatchResult> {
        let target_cols = ColumnData::all_from_database(target);
        self.run_prepared(
            source,
            None,
            PreparedTargets {
                database: target,
                columns: &target_cols,
                shared_selections: None,
                index: None,
            },
        )
    }

    /// Run `ContextMatch(source, targets.database)` against a *prepared*
    /// target side (and, optionally, pre-extracted source columns) — the
    /// catalog-aware entry point. Identical to [`ContextualMatcher::run`] in
    /// every observable way; the only difference is which artifacts are
    /// reused instead of rebuilt:
    ///
    /// * `targets.columns` replaces the per-run target batch extraction, so a
    ///   batch kept warm across runs is never re-profiled;
    /// * `source_columns` (when provided, per table name) replaces
    ///   per-run source column extraction for those tables;
    /// * `targets.shared_selections` (when provided) carries candidate-view
    ///   selection vectors across runs.
    pub fn run_prepared<'a>(
        &self,
        source: &Database,
        source_columns: Option<&PreparedSourceColumns<'a>>,
        targets: PreparedTargets<'a>,
    ) -> Result<ContextMatchResult> {
        let tables: Vec<&Table> = source.tables().collect();
        let shards: Vec<Result<TableShard>> = tables
            .par_iter()
            .with_min_len(1)
            .map(|table| {
                let prepared_cols = source_columns
                    .and_then(|by_table| by_table.get(table.name()))
                    .map(|cols| cols.as_slice());
                self.run_table(table, source, prepared_cols, targets)
            })
            .collect();
        self.assemble(shards)
    }

    /// The serial per-table loop [`ContextualMatcher::run`] replaced
    /// (re-extracting the target columns every iteration). Kept as the
    /// reference implementation for equivalence tests and benches.
    #[doc(hidden)]
    pub fn run_serial(&self, source: &Database, target: &Database) -> Result<ContextMatchResult> {
        let shards: Vec<Result<TableShard>> = source
            .tables()
            .map(|table| {
                let target_cols = ColumnData::all_from_database(target);
                self.run_table(
                    table,
                    source,
                    None,
                    PreparedTargets {
                        database: target,
                        columns: &target_cols,
                        shared_selections: None,
                        index: None,
                    },
                )
            })
            .collect();
        self.assemble(shards)
    }

    /// Merge per-table shards in source-table order and run line 12
    /// (`SelectContextualMatches`) over the combined artifacts — shared by
    /// the sharded and serial paths so they cannot drift apart.
    fn assemble(&self, shards: Vec<Result<TableShard>>) -> Result<ContextMatchResult> {
        let mut result = ContextMatchResult::default();
        for shard in shards {
            let shard = shard?;
            result.standard.extend(shard.prototype);
            result.candidates.extend(shard.candidates);
            result.candidate_views.extend(shard.views);
            result.families.extend(shard.families);
        }
        result.selected =
            select_contextual_matches(&result.standard, &result.candidates, &self.config);
        Ok(result)
    }

    /// Lines 4–11 of Figure 5 for one source table — the unit of work a shard
    /// executes. Reads only shared immutable state, so shards are free to run
    /// on any thread in any order. Both prototype matching *and* candidate
    /// re-scoring draw target columns from the hoisted `target_cols` batch,
    /// so each target column is profiled exactly once per run.
    fn run_table<'a>(
        &self,
        table: &Table,
        source: &Database,
        source_cols: Option<&[ColumnData<'a>]>,
        targets: PreparedTargets<'a>,
    ) -> Result<TableShard> {
        // Line 4: prototype matches for this source table. Pre-extracted
        // source columns (a warm service artifact) carry the same values as
        // a fresh extraction, so both branches score identically.
        let outcome = match source_cols {
            Some(cols) => self.standard.match_columns_indexed(cols, targets.columns, targets.index),
            None => self.standard.match_table_with_targets(table, targets.columns),
        };
        let prototype = outcome.accepted.clone();

        // Line 5: candidate views.
        let families = infer_candidate_views(table, &prototype, targets.database, &self.config);
        let views = flatten_views(&families, &self.config);

        // Lines 6–11: score each prototype match against each candidate view.
        let candidates = score_candidates_prepared(
            source,
            targets.database,
            targets.columns,
            &self.standard,
            &outcome,
            table,
            &views,
            &prototype,
            targets.shared_selections,
            targets.index,
        )?;

        Ok(TableShard { prototype, candidates, views, families })
    }
}

/// The artifacts one source table contributes to a `ContextMatch` run.
struct TableShard {
    prototype: MatchList,
    candidates: MatchList,
    views: Vec<ViewDef>,
    families: Vec<ViewFamily>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SelectionStrategy, ViewInferenceStrategy};
    use cxm_relational::{Attribute, Table, TableSchema, Tuple, Value};

    /// Build a small but unambiguous inventory scenario: `type` splits books
    /// from CDs, `descr` and `code` are strongly type-dependent.
    fn source_db(n: usize) -> Database {
        let schema = TableSchema::new(
            "inv",
            vec![
                Attribute::int("id"),
                Attribute::text("name"),
                Attribute::int("type"),
                Attribute::text("code"),
                Attribute::text("descr"),
            ],
        );
        let book_titles =
            ["leaves of grass", "heart of darkness", "wasteland", "moby dick", "middlemarch"];
        let cd_titles =
            ["the white album", "hotel california", "kind of blue", "abbey road", "blue train"];
        let book_descr = ["hardcover", "paperback", "hardcover first edition", "paperback reprint"];
        let cd_descr = ["audio cd", "elektra records cd", "columbia cd", "remastered audio cd"];
        let mut rows = Vec::new();
        for i in 0..n {
            let is_book = i % 2 == 0;
            let title = if is_book { book_titles[i % 5] } else { cd_titles[i % 5] };
            let code = if is_book {
                format!("0{:06}", 100000 + i * 37)
            } else {
                format!("B{:03}XYZ{:03}", i % 999, (i * 7) % 999)
            };
            rows.push(Tuple::new(vec![
                Value::from(i),
                Value::str(format!("{title} volume {i}")),
                Value::from(if is_book { 1 } else { 2 }),
                Value::str(code),
                Value::str(if is_book { book_descr[i % 4] } else { cd_descr[i % 4] }),
            ]));
        }
        Database::new("RS").with_table(Table::with_rows(schema, rows).unwrap())
    }

    fn target_db() -> Database {
        let book = Table::with_rows(
            TableSchema::new(
                "book",
                vec![Attribute::text("title"), Attribute::text("isbn"), Attribute::text("format")],
            ),
            vec![
                Tuple::new(vec![
                    Value::str("the historian"),
                    Value::str("0316011770"),
                    Value::str("hardcover"),
                ]),
                Tuple::new(vec![
                    Value::str("war and peace"),
                    Value::str("1400079985"),
                    Value::str("paperback"),
                ]),
                Tuple::new(vec![
                    Value::str("to the lighthouse"),
                    Value::str("0156907399"),
                    Value::str("paperback"),
                ]),
            ],
        )
        .unwrap();
        let music = Table::with_rows(
            TableSchema::new(
                "music",
                vec![Attribute::text("title"), Attribute::text("asin"), Attribute::text("label")],
            ),
            vec![
                Tuple::new(vec![
                    Value::str("x&y"),
                    Value::str("B0006L16N8"),
                    Value::str("capitol cd"),
                ]),
                Tuple::new(vec![
                    Value::str("moonlight sonatas"),
                    Value::str("B0009PLM4Y"),
                    Value::str("sony records cd"),
                ]),
            ],
        )
        .unwrap();
        Database::new("RT").with_table(book).with_table(music)
    }

    #[test]
    fn end_to_end_finds_type_conditioned_matches() {
        let source = source_db(160);
        let target = target_db();
        let config = ContextMatchConfig::default()
            .with_inference(ViewInferenceStrategy::SrcClass)
            .with_selection(SelectionStrategy::QualTable)
            .with_early_disjuncts(false)
            .with_tau(0.4);
        let result = ContextualMatcher::new(config).run(&source, &target).unwrap();

        assert!(!result.standard.is_empty(), "standard matching should find prototypes");
        assert!(!result.candidate_views.is_empty(), "views on `type` should be proposed");
        assert!(!result.selected.is_empty());

        // The strongest selected contextual match into each target table (on
        // the content-bearing `descr` attribute) must be conditioned on the
        // correct type value. Weaker matches may carry noisy conditions on this
        // deliberately small fixture, so only the argmax is checked strictly.
        let best_for = |target_table: &str| {
            result
                .contextual_selected()
                .into_iter()
                .filter(|m| {
                    m.target.table == target_table
                        && m.source.attribute == "descr"
                        && m.condition.attributes().contains("type")
                })
                .max_by(|a, b| {
                    a.confidence.partial_cmp(&b.confidence).unwrap_or(std::cmp::Ordering::Equal)
                })
                .cloned()
        };
        if let Some(best_book) = best_for("book") {
            let values = best_book.condition.restricted_values("type").unwrap_or_default();
            assert!(
                values.contains(&Value::Int(1)) && !values.contains(&Value::Int(2)),
                "best book descr match should be conditioned on type=1: {best_book}"
            );
        }
        if let Some(best_music) = best_for("music") {
            let values = best_music.condition.restricted_values("type").unwrap_or_default();
            assert!(
                values.contains(&Value::Int(2)) && !values.contains(&Value::Int(1)),
                "best music descr match should be conditioned on type=2: {best_music}"
            );
        }
        assert!(
            !result.contextual_selected().is_empty(),
            "at least some selected matches should be contextual"
        );
        assert!(!result.selected_views().is_empty());
        assert_eq!(result.selected_view_defs().len(), result.selected_views().len());
    }

    #[test]
    fn all_inference_strategies_run_end_to_end() {
        let source = source_db(120);
        let target = target_db();
        for strategy in ViewInferenceStrategy::ALL {
            let config = ContextMatchConfig::default()
                .with_inference(strategy)
                .with_tau(0.4)
                .with_early_disjuncts(true);
            let result = ContextualMatcher::new(config).run(&source, &target).unwrap();
            assert!(!result.selected.is_empty(), "{} selected no matches at all", strategy.name());
        }
    }

    #[test]
    fn empty_source_database_is_handled() {
        let result = ContextualMatcher::new(ContextMatchConfig::default())
            .run(&Database::new("RS"), &target_db())
            .unwrap();
        assert!(result.selected.is_empty());
        assert!(result.standard.is_empty());
        assert!(result.candidates.is_empty());
    }

    #[test]
    fn high_tau_prunes_prototypes_and_thus_candidates() {
        let source = source_db(80);
        let target = target_db();
        let strict = ContextualMatcher::new(ContextMatchConfig::default().with_tau(0.99))
            .run(&source, &target)
            .unwrap();
        let lenient = ContextualMatcher::new(ContextMatchConfig::default().with_tau(0.1))
            .run(&source, &target)
            .unwrap();
        assert!(strict.standard.len() <= lenient.standard.len());
        assert!(strict.candidates.len() <= lenient.candidates.len());
    }
}
