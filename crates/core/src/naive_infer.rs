//! `NaiveInfer` — the unfiltered candidate-view generator (§3.2.1).
//!
//! For every categorical attribute `l` of the table, a view is created for
//! every value `v_i` of `l` in the sample data. When simple-disjunctive views
//! are considered (early disjuncts), views are created for groupings of the
//! `v_i` values; the full space of partitions is exponential, so the
//! enumeration here covers every *subset* of values up to a configurable cap —
//! enough to reproduce the exponential runtime behaviour the paper reports
//! (Figure 15) without an unbounded blow-up.

use cxm_relational::{categorical_attributes, Table, Value, ViewFamily};

use crate::config::ContextMatchConfig;

/// Generate the naive candidate view families for one source table.
///
/// With `early_disjuncts` disabled, each categorical attribute contributes one
/// family with a single-value view per distinct value. With it enabled, the
/// families additionally cover merged value groups: every subset of values of
/// size ≥ 2 (paired with the complement) up to `config.max_candidate_views`
/// views in total.
pub fn naive_infer(table: &Table, config: &ContextMatchConfig) -> Vec<ViewFamily> {
    let mut families = Vec::new();
    let mut total_views = 0usize;
    for l in categorical_attributes(table, &config.categorical) {
        let values = table.distinct_values(&l).unwrap_or_default();
        if values.len() < 2 {
            continue;
        }
        // The simple-context family: one view per value.
        let simple = ViewFamily::from_value_groups(
            table.name(),
            l.clone(),
            values.iter().map(|v| vec![v.clone()]).collect(),
        );
        total_views += simple.len();
        families.push(simple);
        if total_views >= config.max_candidate_views {
            break;
        }

        if config.early_disjuncts {
            for subset in
                value_subsets(&values, config.max_candidate_views.saturating_sub(total_views))
            {
                let complement: Vec<Value> =
                    values.iter().filter(|v| !subset.contains(v)).cloned().collect();
                let mut groups = vec![subset];
                if !complement.is_empty() {
                    groups.push(complement);
                }
                let family = ViewFamily::from_value_groups(table.name(), l.clone(), groups);
                total_views += family.len();
                families.push(family);
                if total_views >= config.max_candidate_views {
                    break;
                }
            }
        }
        if total_views >= config.max_candidate_views {
            break;
        }
    }
    families
}

/// Enumerate the subsets of `values` with 2 ≤ |subset| < |values|, in a
/// deterministic order, up to `cap` subsets. (Size-1 subsets are already
/// covered by the simple-context family.)
fn value_subsets(values: &[Value], cap: usize) -> Vec<Vec<Value>> {
    let n = values.len();
    let mut out = Vec::new();
    if n < 3 || cap == 0 {
        return out;
    }
    // Enumerate bitmasks; n is small (categorical attributes have ≤ tens of
    // values by the categorical policy's max_distinct bound).
    let max_mask: u64 = if n >= 63 { u64::MAX } else { (1u64 << n) - 1 };
    for mask in 1..max_mask {
        let count = mask.count_ones() as usize;
        if count < 2 || count >= n {
            continue;
        }
        let subset: Vec<Value> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| values[i].clone()).collect();
        out.push(subset);
        if out.len() >= cap {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{Attribute, TableSchema, Tuple};

    fn table_with_types(gamma: usize, rows: usize) -> Table {
        let schema = TableSchema::new(
            "inv",
            vec![Attribute::int("id"), Attribute::text("name"), Attribute::int("type")],
        );
        let mut data = Vec::new();
        for i in 0..rows {
            data.push(Tuple::new(vec![
                Value::from(i),
                Value::str(format!("title {i}")),
                Value::from(i % gamma),
            ]));
        }
        Table::with_rows(schema, data).unwrap()
    }

    #[test]
    fn simple_context_one_view_per_value() {
        let table = table_with_types(4, 200);
        let cfg = ContextMatchConfig::default().with_early_disjuncts(false);
        let fams = naive_infer(&table, &cfg);
        // Only `type` is categorical; one family with 4 single-value views.
        assert_eq!(fams.len(), 1);
        assert_eq!(fams[0].attribute, "type");
        assert_eq!(fams[0].len(), 4);
        assert!(fams[0].value_groups().iter().all(|g| g.len() == 1));
    }

    #[test]
    fn early_disjuncts_adds_subset_views() {
        let table = table_with_types(4, 200);
        let cfg = ContextMatchConfig::default().with_early_disjuncts(true);
        let fams = naive_infer(&table, &cfg);
        assert!(fams.len() > 1);
        // Some family must contain a merged (multi-value) group.
        assert!(fams.iter().any(|f| f.value_groups().iter().any(|g| g.len() >= 2)));
        // All families remain mutually exclusive partitions or binary splits.
        assert!(fams.iter().all(|f| f.is_mutually_exclusive()));
    }

    #[test]
    fn view_count_grows_with_gamma_under_early_disjuncts() {
        let count = |gamma: usize| {
            let table = table_with_types(gamma, 400);
            let cfg = ContextMatchConfig::default().with_early_disjuncts(true);
            naive_infer(&table, &cfg).iter().map(|f| f.len()).sum::<usize>()
        };
        let c4 = count(4);
        let c6 = count(6);
        let c8 = count(8);
        assert!(c6 > c4);
        assert!(c8 > c6);
        // Exponential-ish growth: going from 4 to 8 values should much more
        // than double the subset count.
        assert!(c8 > 2 * c4);
    }

    #[test]
    fn cap_limits_the_enumeration() {
        let table = table_with_types(10, 500);
        let mut cfg = ContextMatchConfig::default().with_early_disjuncts(true);
        cfg.max_candidate_views = 20;
        let fams = naive_infer(&table, &cfg);
        let total: usize = fams.iter().map(|f| f.len()).sum();
        assert!(
            total <= 20 + 10,
            "cap should approximately bound the total view count, got {total}"
        );
    }

    #[test]
    fn non_categorical_table_yields_nothing() {
        // All-distinct `type` values → not categorical → no views.
        let schema = TableSchema::new("t", vec![Attribute::int("id"), Attribute::int("type")]);
        let rows =
            (0..300usize).map(|i| Tuple::new(vec![Value::from(i), Value::from(i)])).collect();
        let table = Table::with_rows(schema, rows).unwrap();
        assert!(naive_infer(&table, &ContextMatchConfig::default()).is_empty());
    }

    #[test]
    fn subsets_skip_singletons_and_full_set() {
        let values: Vec<Value> = (0..4).map(Value::from).collect();
        let subsets = value_subsets(&values, 1000);
        assert!(subsets.iter().all(|s| s.len() >= 2 && s.len() < 4));
        // C(4,2) + C(4,3) = 6 + 4 = 10 subsets.
        assert_eq!(subsets.len(), 10);
        // Two values → no extra subsets beyond the simple family.
        assert!(value_subsets(&values[..2], 1000).is_empty());
    }
}
