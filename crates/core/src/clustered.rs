//! `ClusteredViewGen` — well-clustered view families (Figure 6, §3.2.2–3.3).
//!
//! For every (non-categorical attribute `h`, categorical attribute `l`) pair of
//! a source table, the values of `h` are treated as documents, the values of
//! `l` as classification labels, and the tuples as the expert assignment. A
//! classifier `C_h` is trained on a training partition, evaluated on a testing
//! partition, and its correct-classification count is compared against the
//! binomial null model of the majority classifier `C_Naive`. Only when
//! `Φ((c − μ)/σ) > T` is the family of views `{V_i : l = v_i}` considered
//! *well-clustered* and emitted as a candidate.
//!
//! With `EarlyDisjuncts` enabled, classification errors drive a merging loop:
//! the most frequent confused value pair (normalized by value frequency) is
//! merged into a disjunctive group, training/testing repeats, and every merged
//! family that passes the significance test is also emitted (§3.3).

use std::collections::BTreeMap;

use cxm_relational::{
    categorical_attributes, non_categorical_attributes, split_selection, Table, TableSlice, Value,
    ViewFamily,
};
use cxm_stats::{significance_of_classifier, ConfusionMatrix};

use crate::config::ContextMatchConfig;
use crate::labeler::LabelPredictor;

/// Quality bookkeeping attached to each emitted family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyQuality {
    /// Micro-averaged F1 of the classifier on the testing data.
    pub f1: f64,
    /// Correct classifications `c` on the testing data.
    pub correct: usize,
    /// Testing-set size.
    pub n_test: usize,
    /// Significance confidence `Φ((c − μ)/σ)` against the naive null model.
    pub confidence: f64,
}

/// A well-clustered view family plus the evidence that admitted it.
#[derive(Debug, Clone)]
pub struct ScoredFamily {
    /// The admitted family (base table, partitioning attribute, member views).
    pub family: ViewFamily,
    /// The non-categorical attribute `h` whose classifiability admitted it.
    pub classified_attribute: String,
    /// Quality of the admitting classifier.
    pub quality: FamilyQuality,
}

/// Map each distinct value of `l` to its (possibly merged) group label and the
/// set of original values in the group.
#[derive(Debug, Clone)]
struct LabelGroups {
    /// value (as text) → group id
    assignment: BTreeMap<String, usize>,
    /// group id → original values
    groups: BTreeMap<usize, Vec<Value>>,
}

impl LabelGroups {
    fn initial(values: &[Value]) -> LabelGroups {
        let mut assignment = BTreeMap::new();
        let mut groups = BTreeMap::new();
        for (i, v) in values.iter().enumerate() {
            assignment.insert(v.as_text(), i);
            groups.insert(i, vec![v.clone()]);
        }
        LabelGroups { assignment, groups }
    }

    /// Group label (stable, human-readable) of a raw value.
    fn label_of(&self, value_text: &str) -> Option<String> {
        self.assignment.get(value_text).map(|gid| self.group_label(*gid))
    }

    fn group_label(&self, gid: usize) -> String {
        let members = &self.groups[&gid];
        members.iter().map(|v| v.as_text()).collect::<Vec<_>>().join("|")
    }

    /// Merge the groups containing the two group labels; returns false when the
    /// labels are unknown or already in the same group.
    fn merge(&mut self, label_a: &str, label_b: &str) -> bool {
        let gid_of = |label: &str, this: &LabelGroups| -> Option<usize> {
            this.groups.keys().copied().find(|gid| this.group_label(*gid) == label)
        };
        let (Some(ga), Some(gb)) = (gid_of(label_a, self), gid_of(label_b, self)) else {
            return false;
        };
        if ga == gb {
            return false;
        }
        let (keep, drop) = if ga < gb { (ga, gb) } else { (gb, ga) };
        let moved = self.groups.remove(&drop).unwrap_or_default();
        self.groups.get_mut(&keep).expect("keep group exists").extend(moved);
        for gid in self.assignment.values_mut() {
            if *gid == drop {
                *gid = keep;
            }
        }
        true
    }

    fn group_count(&self) -> usize {
        self.groups.len()
    }

    fn value_groups(&self) -> Vec<Vec<Value>> {
        self.groups.values().cloned().collect()
    }
}

/// Collect the `(h value, group label)` pairs of a partition, skipping tuples
/// whose `h` or `l` is NULL. The partition is a zero-copy [`TableSlice`], so
/// training-data extraction clones no tuples.
fn labelled_pairs(
    partition: &TableSlice<'_>,
    h: &str,
    l: &str,
    groups: &LabelGroups,
) -> Vec<(String, String)> {
    let h_idx = partition.schema().index_of(h).expect("h comes from the schema");
    let l_idx = partition.schema().index_of(l).expect("l comes from the schema");
    partition
        .rows()
        .filter_map(|row| {
            let hv = row.at(h_idx);
            let lv = row.at(l_idx);
            if hv.is_null() || lv.is_null() {
                return None;
            }
            groups.label_of(&lv.as_text()).map(|label| (hv.as_text(), label))
        })
        .collect()
}

/// Run `ClusteredViewGen` for one source table with the given labeler
/// (`SrcClassInfer` or `TgtClassInfer`), returning every admitted family.
pub fn clustered_view_gen(
    table: &Table,
    labeler: &dyn LabelPredictor,
    config: &ContextMatchConfig,
) -> Vec<ScoredFamily> {
    let mut out: Vec<ScoredFamily> = Vec::new();
    let cats = categorical_attributes(table, &config.categorical);
    let noncats = non_categorical_attributes(table, &config.categorical);
    if cats.is_empty() || noncats.is_empty() || table.len() < 4 {
        return out;
    }
    // The train/test partition is carried as selection vectors over the base
    // table; both sides are read through zero-copy slices below.
    let (train_sel, test_sel) = split_selection(table, config.split_ratio, config.seed);
    let train_slice = TableSlice::new(table, &train_sel);
    let test_slice = TableSlice::new(table, &test_sel);

    for l in &cats {
        let values = table.distinct_values(l).unwrap_or_default();
        if values.len() < 2 {
            continue;
        }
        for h in &noncats {
            let numeric = table.schema().type_of(h).map(|t| t.is_numeric()).unwrap_or(false);
            let mut groups = LabelGroups::initial(&values);

            // Early-disjunct loop: evaluate, emit if significant, merge the
            // worst-confused pair, repeat. Without EarlyDisjuncts only the
            // first (unmerged) iteration runs.
            loop {
                let train = labelled_pairs(&train_slice, h, l, &groups);
                let test = labelled_pairs(&test_slice, h, l, &groups);
                if train.is_empty() || test.is_empty() {
                    break;
                }
                let fitted = labeler.fit(&train, numeric);
                let mut matrix = ConfusionMatrix::new();
                for (value, expected) in &test {
                    matrix.record(expected.clone(), fitted.predict(value));
                }
                let micro = matrix.micro_average();
                let sig = significance_of_classifier(
                    micro.correct,
                    micro.total,
                    fitted.majority_count,
                    fitted.n_train,
                );
                if sig.is_significant(config.significance_threshold) {
                    let family = ViewFamily::from_value_groups(
                        table.name(),
                        l.clone(),
                        groups.value_groups(),
                    );
                    let duplicate = out.iter().any(|existing| existing.family == family);
                    if !duplicate {
                        out.push(ScoredFamily {
                            family,
                            classified_attribute: h.to_string(),
                            quality: FamilyQuality {
                                f1: micro.f1(),
                                correct: micro.correct,
                                n_test: micro.total,
                                confidence: sig.confidence,
                            },
                        });
                    }
                }

                if !config.early_disjuncts || groups.group_count() <= 2 {
                    break;
                }
                // Pick the most frequent error pair normalized by how often the
                // two labels occur in the test data.
                let errors = matrix.pooled_errors();
                if errors.is_empty() {
                    break;
                }
                let best = errors
                    .iter()
                    .map(|((a, b), count)| {
                        let freq =
                            (matrix.expected_count(a) + matrix.expected_count(b)).max(1) as f64;
                        ((a.clone(), b.clone()), *count as f64 / freq)
                    })
                    .max_by(|x, y| {
                        x.1.partial_cmp(&y.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| y.0.cmp(&x.0))
                    });
                let Some(((a, b), _)) = best else { break };
                if !groups.merge(&a, &b) {
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ContextMatchConfig;
    use crate::labeler::SrcLabeler;
    use cxm_relational::{Attribute, TableSchema, Tuple};

    /// A source table where `descr` strongly predicts `type` (books say
    /// hardcover/paperback, CDs say audio cd / records cd) and `noise` is a
    /// random categorical attribute unrelated to anything.
    fn inventory(n: usize, gamma: usize) -> Table {
        let schema = TableSchema::new(
            "inv",
            vec![
                Attribute::int("id"),
                Attribute::text("name"),
                Attribute::int("type"),
                Attribute::text("descr"),
                Attribute::text("noise"),
            ],
        );
        let book_descr = ["hardcover", "paperback", "hardcover first edition", "paperback reprint"];
        let cd_descr = ["audio cd", "elektra records cd", "columbia cd", "remastered audio cd"];
        let book_titles =
            ["leaves of grass", "heart of darkness", "wasteland", "moby dick", "middlemarch"];
        let cd_titles =
            ["the white album", "hotel california", "kind of blue", "abbey road", "blue train"];
        let mut rows = Vec::new();
        for i in 0..n {
            let is_book = i % 2 == 0;
            // type values: books get 1..=gamma/2, cds get gamma/2+1..=gamma (so
            // gamma distinct values overall, half per class).
            let half = (gamma / 2).max(1);
            let type_val = if is_book { 1 + (i / 2) % half } else { half + 1 + (i / 2) % half };
            let descr = if is_book { book_descr[i % 4] } else { cd_descr[i % 4] };
            let title = if is_book { book_titles[i % 5] } else { cd_titles[i % 5] };
            rows.push(Tuple::new(vec![
                Value::from(i),
                Value::str(format!("{title} vol {i}")),
                Value::from(type_val),
                Value::str(descr),
                Value::str(format!("n{}", i % 3)),
            ]));
        }
        Table::with_rows(schema, rows).unwrap()
    }

    fn config() -> ContextMatchConfig {
        ContextMatchConfig::default().with_early_disjuncts(false)
    }

    #[test]
    fn well_correlated_attribute_is_admitted() {
        let table = inventory(120, 2);
        let fams = clustered_view_gen(&table, &SrcLabeler::new(), &config());
        assert!(!fams.is_empty());
        // The admitted families partition on `type` (descr predicts it); the
        // random `noise` attribute may appear only if it accidentally clears
        // 95% significance, which it should not with 120 rows.
        assert!(fams.iter().any(|f| f.family.attribute == "type"));
        assert!(fams.iter().all(|f| f.family.attribute != "noise"));
        for f in &fams {
            assert!(f.quality.confidence > 0.95);
            assert!(f.quality.n_test > 0);
            assert!(f.family.is_mutually_exclusive());
        }
    }

    #[test]
    fn uncorrelated_table_admits_nothing() {
        // A table where the non-categorical attribute is pure noise.
        let schema = TableSchema::new(
            "t",
            vec![Attribute::int("id"), Attribute::text("junk"), Attribute::int("cat")],
        );
        let mut rows = Vec::new();
        for i in 0..200usize {
            // `junk` is constant across every value of `cat` within a block of
            // four rows, so it carries no information about `cat` at all.
            rows.push(Tuple::new(vec![
                Value::from(i),
                Value::str(format!("item-{}", i / 4)),
                Value::from(i % 4),
            ]));
        }
        let table = Table::with_rows(schema, rows).unwrap();
        let fams = clustered_view_gen(&table, &SrcLabeler::new(), &config());
        assert!(
            fams.iter().all(|f| f.family.attribute != "cat") || fams.is_empty(),
            "uncorrelated categorical attribute should not be admitted: {fams:?}"
        );
    }

    #[test]
    fn early_disjuncts_merges_confusable_values_with_higher_gamma() {
        // With γ = 4 the two book type-values are indistinguishable from each
        // other (both say hardcover/paperback), so early disjuncts should merge
        // them and emit a family containing a 2-value group.
        let table = inventory(200, 4);
        let cfg = ContextMatchConfig::default().with_early_disjuncts(true);
        let fams = clustered_view_gen(&table, &SrcLabeler::new(), &cfg);
        assert!(!fams.is_empty());
        let has_merged_group = fams.iter().any(|f| {
            f.family.attribute == "type" && f.family.value_groups().iter().any(|g| g.len() >= 2)
        });
        assert!(has_merged_group, "expected a merged (disjunctive) group: {fams:?}");
    }

    #[test]
    fn late_disjuncts_emits_only_unmerged_families() {
        let table = inventory(200, 4);
        let cfg = ContextMatchConfig::default().with_early_disjuncts(false);
        let fams = clustered_view_gen(&table, &SrcLabeler::new(), &cfg);
        for f in &fams {
            assert!(
                f.family.value_groups().iter().all(|g| g.len() == 1),
                "late disjuncts should not merge values: {f:?}"
            );
        }
    }

    #[test]
    fn tiny_tables_are_skipped() {
        let table = inventory(3, 2);
        let fams = clustered_view_gen(&table, &SrcLabeler::new(), &config());
        assert!(fams.is_empty());
    }

    #[test]
    fn label_groups_merge_mechanics() {
        let values = vec![Value::from(1), Value::from(2), Value::from(3)];
        let mut g = LabelGroups::initial(&values);
        assert_eq!(g.group_count(), 3);
        assert_eq!(g.label_of("1"), Some("1".to_string()));
        assert!(g.merge("1", "2"));
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.label_of("2"), Some("1|2".to_string()));
        // Merging the same pair again is a no-op.
        assert!(!g.merge("1|2", "1|2"));
        // Unknown labels are rejected.
        assert!(!g.merge("1|2", "99"));
        // Remaining groups still cover all values.
        let total: usize = g.value_groups().iter().map(|v| v.len()).sum();
        assert_eq!(total, 3);
    }
}
