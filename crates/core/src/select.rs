//! `SelectContextualMatches` (§3.4): deciding which matches to present.
//!
//! Two policies are implemented:
//!
//! * **`MultiTable`** — for every target attribute, keep the single
//!   highest-confidence match regardless of which source table or view it
//!   comes from. Simple, but (as the paper's Figure 11 shows) it lets
//!   incoherent mixtures of sources through.
//! * **`QualTable`** — for every *target table*, first pick the source table
//!   whose standard matches have the highest total confidence, then accept a
//!   candidate view of that table only if it improves the table-level match
//!   quality by at least the improvement threshold ω. Following §3
//!   ("count the total improvement across all of the individual matches"),
//!   improvement is the sum over the table's prototype matches of the
//!   *confidence gain* the view produces for that match, measured in
//!   percentage points (so ω ranges over the paper's 5–30 scale). Matches the
//!   view does not improve contribute nothing — a semantically valid context
//!   improves several matches at once, while an invalid one produces only
//!   scattered, small gains, which is exactly the property the threshold
//!   exploits. Under `EarlyDisjuncts` only the single best qualifying view is
//!   kept (its condition may be disjunctive); under `LateDisjuncts` every
//!   qualifying view is kept, which amounts to disjuncting over the selected
//!   views.

use std::collections::{BTreeMap, BTreeSet};

use cxm_matching::{Match, MatchList};

use crate::config::{ContextMatchConfig, SelectionStrategy};

/// Select the contextual matches to present, given the accepted standard
/// matches and the scored contextual candidates.
pub fn select_contextual_matches(
    standard: &MatchList,
    candidates: &MatchList,
    config: &ContextMatchConfig,
) -> MatchList {
    match config.selection {
        SelectionStrategy::MultiTable => multi_table(standard, candidates),
        SelectionStrategy::QualTable => qual_table(standard, candidates, config),
    }
}

/// `MultiTable`: best match per target attribute across all sources and views.
fn multi_table(standard: &MatchList, candidates: &MatchList) -> MatchList {
    let mut best: BTreeMap<String, Match> = BTreeMap::new();
    for m in standard.iter().chain(candidates.iter()) {
        let key = m.target.to_string();
        match best.get(&key) {
            Some(existing) if existing.confidence >= m.confidence => {}
            _ => {
                best.insert(key, m.clone());
            }
        }
    }
    best.into_values().collect()
}

/// `QualTable`: coherent per-target-table selection gated by ω.
fn qual_table(
    standard: &MatchList,
    candidates: &MatchList,
    config: &ContextMatchConfig,
) -> MatchList {
    let mut selected = MatchList::new();
    let target_tables: BTreeSet<String> =
        standard.iter().chain(candidates.iter()).map(|m| m.target.table.clone()).collect();

    // Base confidence of each prototype match, for computing per-match deltas.
    let base_confidence: BTreeMap<(String, String, String, String), f64> = standard
        .iter()
        .map(|m| {
            (
                (
                    m.base_table.clone(),
                    m.source.attribute.clone(),
                    m.target.table.clone(),
                    m.target.attribute.clone(),
                ),
                m.confidence,
            )
        })
        .collect();

    for target_table in target_tables {
        // 1. Pick the source table with the highest total match confidence
        //    against this target table.
        let mut base_conf_totals: BTreeMap<String, f64> = BTreeMap::new();
        for m in standard.iter().filter(|m| m.target.table == target_table) {
            *base_conf_totals.entry(m.base_table.clone()).or_insert(0.0) += m.confidence;
        }
        let Some(best_source) = base_conf_totals
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| b.0.cmp(a.0))
            })
            .map(|(s, _)| s.clone())
        else {
            continue;
        };

        // 2. Total confidence improvement of each candidate view of that source
        //    table: the sum, over the prototype matches, of the confidence gain
        //    the view produces (in percentage points).
        let mut view_improvements: BTreeMap<String, f64> = BTreeMap::new();
        for c in candidates
            .iter()
            .filter(|c| c.base_table == best_source && c.target.table == target_table)
        {
            let key = (
                c.base_table.clone(),
                c.source.attribute.clone(),
                c.target.table.clone(),
                c.target.attribute.clone(),
            );
            let base = base_confidence.get(&key).copied().unwrap_or(0.0);
            let delta = (c.confidence - base) * 100.0;
            // Per-match noise floor: tiny gains are indistinguishable from
            // random fluctuation and must not accumulate into a spurious
            // table-level improvement.
            if delta >= config.min_match_improvement {
                *view_improvements.entry(c.source.table.clone()).or_insert(0.0) += delta;
            } else {
                view_improvements.entry(c.source.table.clone()).or_insert(0.0);
            }
        }

        // 3. Views whose total improvement clears ω.
        let mut passing: Vec<(String, f64)> = view_improvements
            .iter()
            .filter(|(_, &imp)| imp >= config.omega)
            .map(|(v, &imp)| (v.clone(), imp))
            .collect();
        passing.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });

        if passing.is_empty() {
            // No view qualifies: fall back to the standard matches of the best
            // source table.
            selected.extend(
                standard
                    .iter()
                    .filter(|m| m.base_table == best_source && m.target.table == target_table)
                    .cloned(),
            );
            continue;
        }

        let chosen_views: Vec<String> = if config.early_disjuncts {
            // Disjunctive conditions were already formed during inference, so a
            // single view suffices.
            vec![passing[0].0.clone()]
        } else {
            passing.into_iter().map(|(v, _)| v).collect()
        };

        for view in chosen_views {
            selected.extend(
                candidates
                    .iter()
                    .filter(|c| {
                        c.source.table == view
                            && c.base_table == best_source
                            && c.target.table == target_table
                    })
                    .cloned(),
            );
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ContextMatchConfig, SelectionStrategy};
    use cxm_relational::{AttrRef, Condition};

    fn std_match(src_table: &str, src: &str, tgt_table: &str, tgt: &str, conf: f64) -> Match {
        Match::standard(AttrRef::new(src_table, src), AttrRef::new(tgt_table, tgt), conf, conf)
    }

    fn ctx_match(
        base: &str,
        view: &str,
        src: &str,
        tgt_table: &str,
        tgt: &str,
        cond: Condition,
        conf: f64,
    ) -> Match {
        std_match(base, src, tgt_table, tgt, 0.5).with_context(view, cond, conf, conf)
    }

    /// Standard matches: inv matches both book and music tables reasonably.
    fn standard_fixture() -> MatchList {
        vec![
            std_match("inv", "name", "book", "title", 0.7),
            std_match("inv", "descr", "book", "format", 0.6),
            std_match("inv", "name", "music", "title", 0.65),
            std_match("inv", "descr", "music", "label", 0.55),
            // A second, worse source table.
            std_match("price", "price", "book", "title", 0.2),
        ]
    }

    /// Contextual candidates: the type=1 view improves the book matches, the
    /// type=2 view improves the music matches; crossed combinations are worse.
    fn candidate_fixture() -> MatchList {
        let v1 = "inv[type = 1]";
        let v2 = "inv[type = 2]";
        let c1 = Condition::eq("type", 1);
        let c2 = Condition::eq("type", 2);
        vec![
            ctx_match("inv", v1, "name", "book", "title", c1.clone(), 0.95),
            ctx_match("inv", v1, "descr", "book", "format", c1.clone(), 0.9),
            ctx_match("inv", v2, "name", "book", "title", c2.clone(), 0.3),
            ctx_match("inv", v2, "descr", "book", "format", c2.clone(), 0.25),
            ctx_match("inv", v2, "name", "music", "title", c2.clone(), 0.92),
            ctx_match("inv", v2, "descr", "music", "label", c2.clone(), 0.88),
            ctx_match("inv", v1, "name", "music", "title", c1.clone(), 0.2),
            ctx_match("inv", v1, "descr", "music", "label", c1, 0.2),
        ]
    }

    #[test]
    fn qual_table_selects_the_right_view_per_target_table() {
        let config = ContextMatchConfig::default()
            .with_selection(SelectionStrategy::QualTable)
            .with_omega(5.0)
            .with_early_disjuncts(true);
        let selected =
            select_contextual_matches(&standard_fixture(), &candidate_fixture(), &config);
        // Book matches come from the type=1 view, music matches from type=2.
        assert!(selected
            .iter()
            .filter(|m| m.target.table == "book")
            .all(|m| m.source.table == "inv[type = 1]"));
        assert!(selected
            .iter()
            .filter(|m| m.target.table == "music")
            .all(|m| m.source.table == "inv[type = 2]"));
        assert_eq!(selected.len(), 4);
        assert!(selected.iter().all(|m| m.is_contextual()));
    }

    #[test]
    fn qual_table_high_omega_falls_back_to_standard_matches() {
        let config = ContextMatchConfig::default()
            .with_selection(SelectionStrategy::QualTable)
            .with_omega(1000.0);
        let selected =
            select_contextual_matches(&standard_fixture(), &candidate_fixture(), &config);
        assert!(!selected.is_empty());
        assert!(selected.iter().all(|m| m.is_standard()));
        // Fallback keeps only the best source table (inv), not price.
        assert!(selected.iter().all(|m| m.base_table == "inv"));
    }

    #[test]
    fn late_disjuncts_can_select_multiple_views() {
        // Make two views both improve the book table.
        let mut candidates = candidate_fixture();
        candidates.push(ctx_match(
            "inv",
            "inv[type = 3]",
            "name",
            "book",
            "title",
            Condition::eq("type", 3),
            0.93,
        ));
        candidates.push(ctx_match(
            "inv",
            "inv[type = 3]",
            "descr",
            "book",
            "format",
            Condition::eq("type", 3),
            0.91,
        ));
        let late = ContextMatchConfig::default()
            .with_selection(SelectionStrategy::QualTable)
            .with_omega(5.0)
            .with_early_disjuncts(false);
        let selected = select_contextual_matches(&standard_fixture(), &candidates, &late);
        let book_views: BTreeSet<_> = selected
            .iter()
            .filter(|m| m.target.table == "book")
            .map(|m| m.source.table.clone())
            .collect();
        assert_eq!(book_views.len(), 2, "late disjuncts should keep both qualifying views");

        let early = late.with_early_disjuncts(true);
        let selected = select_contextual_matches(&standard_fixture(), &candidates, &early);
        let book_views: BTreeSet<_> = selected
            .iter()
            .filter(|m| m.target.table == "book")
            .map(|m| m.source.table.clone())
            .collect();
        assert_eq!(book_views.len(), 1, "early disjuncts keeps only the single best view");
    }

    #[test]
    fn multi_table_takes_best_per_target_attribute() {
        let config = ContextMatchConfig::default().with_selection(SelectionStrategy::MultiTable);
        let selected =
            select_contextual_matches(&standard_fixture(), &candidate_fixture(), &config);
        // One match per distinct target attribute (book.title, book.format,
        // music.title, music.label).
        assert_eq!(selected.len(), 4);
        let book_title =
            selected.iter().find(|m| m.target == AttrRef::new("book", "title")).unwrap();
        assert_eq!(book_title.source.table, "inv[type = 1]");
        assert!((book_title.confidence - 0.95).abs() < 1e-12);
    }

    #[test]
    fn multi_table_keeps_standard_match_when_it_is_best() {
        let standard = vec![std_match("inv", "name", "book", "title", 0.99)];
        let candidates = vec![ctx_match(
            "inv",
            "inv[type = 1]",
            "name",
            "book",
            "title",
            Condition::eq("type", 1),
            0.5,
        )];
        let config = ContextMatchConfig::default().with_selection(SelectionStrategy::MultiTable);
        let selected = select_contextual_matches(&standard, &candidates, &config);
        assert_eq!(selected.len(), 1);
        assert!(selected[0].is_standard());
    }

    #[test]
    fn empty_inputs_select_nothing() {
        let config = ContextMatchConfig::default();
        assert!(select_contextual_matches(&Vec::new(), &Vec::new(), &config).is_empty());
    }
}
