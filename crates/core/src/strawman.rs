//! The strawman configuration (§3, "A Strawman Approach" / §3.4).
//!
//! "The strawman approach to contextual matching described previously can be
//! obtained in this framework by using NaiveInfer for InferCandidateViews, and
//! MultiTable for SelectContextualMatches." The strawman accepts any condition
//! that improves an individual match, which is exactly the significance trap
//! the paper warns about; Figure 11 compares it against `QualTable`.

use crate::config::{ContextMatchConfig, SelectionStrategy, ViewInferenceStrategy};

/// The strawman configuration: `NaiveInfer` + `MultiTable`, late disjuncts.
pub fn strawman_config() -> ContextMatchConfig {
    ContextMatchConfig::default()
        .with_inference(ViewInferenceStrategy::Naive)
        .with_selection(SelectionStrategy::MultiTable)
        .with_early_disjuncts(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strawman_is_naive_plus_multitable() {
        let c = strawman_config();
        assert_eq!(c.inference, ViewInferenceStrategy::Naive);
        assert_eq!(c.selection, SelectionStrategy::MultiTable);
        assert!(!c.early_disjuncts);
        // Everything else keeps the paper's defaults.
        assert_eq!(c.omega, 5.0);
        assert_eq!(c.tau(), 0.5);
    }
}
