//! The two classifier constructions that plug into `ClusteredViewGen`.
//!
//! `ClusteredViewGen` (Figure 6) is parameterized by how the per-attribute
//! classifier `C_h` is built:
//!
//! * **`SrcClassInfer`** (§3.2.3) trains `C_h` directly on the *source* values:
//!   `C_h` is taught `t.h → t.l` for every training tuple — Naive Bayes over
//!   3-grams for text attributes, a statistical (Gaussian) classifier for
//!   numeric ones.
//! * **`TgtClassInfer`** (§3.2.4, Figure 7) first builds one classifier
//!   `C_D^T` per basic type domain `D`, trained on every compatible *target*
//!   column (value → "Table.attr" tag). During `doTraining` it collects
//!   `TBag(h, l)` — the bag of `(tag, l-value)` pairs — and computes
//!   `bestCAT(tag) = argmax_v acc(tag,v)·prec(tag,v)`; during `doTesting` the
//!   prediction for a value is `bestCAT(C_D^T.classify(value))`.
//!
//! Both are exposed through the [`LabelPredictor`] trait so the clustering
//! algorithm itself stays agnostic.

use std::collections::BTreeMap;

use cxm_classify::{Classifier, MajorityClassifier, ValueClassifier};
use cxm_relational::{DataType, Database};

/// A fitted prediction function from attribute values (as text) to categorical
/// labels, plus bookkeeping about the training label distribution that the
/// significance test needs.
pub struct FittedPredictor {
    predict: Box<dyn Fn(&str) -> String>,
    /// Count of the most common training label, `|v*|`.
    pub majority_count: usize,
    /// Number of training examples, `n_train`.
    pub n_train: usize,
}

impl FittedPredictor {
    /// Predict the label of one value.
    pub fn predict(&self, value: &str) -> String {
        (self.predict)(value)
    }
}

impl std::fmt::Debug for FittedPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedPredictor")
            .field("majority_count", &self.majority_count)
            .field("n_train", &self.n_train)
            .finish()
    }
}

/// Something that can fit a label predictor `C_h` from training pairs.
///
/// `numeric` states whether the classified attribute `h` is numeric, selecting
/// the statistical classifier instead of the 3-gram Naive Bayes one.
pub trait LabelPredictor {
    /// Fit a predictor on `(h value, l label)` training pairs.
    fn fit(&self, train: &[(String, String)], numeric: bool) -> FittedPredictor;

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Track the training-label distribution shared by both labelers.
fn label_stats(train: &[(String, String)]) -> (MajorityClassifier, usize, usize) {
    let mut majority = MajorityClassifier::new();
    for (_, label) in train {
        majority.teach_label(label);
    }
    let count = majority.majority_count();
    let total = majority.total();
    (majority, count, total)
}

/// `SrcClassInfer`'s classifier construction: train directly on source values.
#[derive(Debug, Clone, Copy, Default)]
pub struct SrcLabeler;

impl SrcLabeler {
    /// Create the source-value labeler.
    pub fn new() -> Self {
        SrcLabeler
    }
}

impl LabelPredictor for SrcLabeler {
    fn fit(&self, train: &[(String, String)], numeric: bool) -> FittedPredictor {
        let (majority, majority_count, n_train) = label_stats(train);
        let mut classifier = ValueClassifier::for_kind(numeric);
        for (doc, label) in train {
            classifier.teach(doc, label);
        }
        let fallback = majority.majority_label().unwrap_or("<none>").to_string();
        FittedPredictor {
            predict: Box::new(move |value: &str| {
                classifier.classify(value).unwrap_or_else(|| fallback.clone())
            }),
            majority_count,
            n_train,
        }
    }

    fn name(&self) -> &'static str {
        "SrcClassInfer"
    }
}

/// `TgtClassInfer`'s classifier construction: tag source values with the
/// target column they most resemble, then associate tags with labels.
pub struct TgtLabeler {
    /// Per-domain target classifiers `C_D^T` (here: one for textual domains,
    /// one for numeric domains).
    text_classifier: ValueClassifier,
    numeric_classifier: ValueClassifier,
    text_trained: bool,
    numeric_trained: bool,
}

impl std::fmt::Debug for TgtLabeler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TgtLabeler")
            .field("text_trained", &self.text_trained)
            .field("numeric_trained", &self.numeric_trained)
            .finish()
    }
}

impl TgtLabeler {
    /// `createTargetClassifier(D, ℛT)` for every basic domain `D` (Figure 7):
    /// teach each target value to the classifier of its domain under the tag
    /// `"Table.attr"`.
    pub fn from_target(target: &Database) -> Self {
        let mut text_classifier = ValueClassifier::text();
        let mut numeric_classifier = ValueClassifier::numeric();
        let mut text_trained = false;
        let mut numeric_trained = false;
        for table in target.tables() {
            for attr in table.schema().attributes() {
                let tag = format!("{}.{}", table.name(), attr.name);
                let numeric = attr.data_type.is_numeric();
                let values = table
                    .column_non_null(&attr.name)
                    .expect("attribute comes from the table's own schema");
                for v in values {
                    let text = v.as_text();
                    if text.is_empty() {
                        continue;
                    }
                    if numeric {
                        numeric_classifier.teach(&text, &tag);
                        numeric_trained = true;
                    } else {
                        text_classifier.teach(&text, &tag);
                        text_trained = true;
                    }
                }
            }
        }
        TgtLabeler { text_classifier, numeric_classifier, text_trained, numeric_trained }
    }

    /// Tag a source value with the qualified name of the most similar target
    /// column in the matching domain. Returns `"<untagged>"` when no target
    /// classifier for the domain has any training data.
    pub fn tag(&self, value: &str, numeric: bool) -> String {
        let classifier = if numeric && self.numeric_trained {
            &self.numeric_classifier
        } else if self.text_trained {
            &self.text_classifier
        } else if self.numeric_trained {
            &self.numeric_classifier
        } else {
            return "<untagged>".to_string();
        };
        classifier.classify(value).unwrap_or_else(|| "<untagged>".to_string())
    }

    /// The number of distinct target-column tags known to the labeler.
    pub fn known_tags(&self) -> usize {
        let mut tags = self.text_classifier.labels();
        tags.extend(self.numeric_classifier.labels());
        tags.sort();
        tags.dedup();
        tags.len()
    }

    /// Classifier domains compatible with [`DataType`] used when training —
    /// exposed for tests.
    pub fn domain_of(data_type: DataType) -> &'static str {
        if data_type.is_numeric() {
            "numeric"
        } else {
            "text"
        }
    }
}

impl LabelPredictor for TgtLabeler {
    fn fit(&self, train: &[(String, String)], numeric: bool) -> FittedPredictor {
        let (majority, majority_count, n_train) = label_stats(train);
        let fallback = majority.majority_label().unwrap_or("<none>").to_string();

        // Build TBag: (tag, label) occurrence counts, plus marginals.
        let mut pair_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut tag_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut label_counts: BTreeMap<String, usize> = BTreeMap::new();
        for (value, label) in train {
            let g = self.tag(value, numeric);
            *pair_counts.entry((g.clone(), label.clone())).or_insert(0) += 1;
            *tag_counts.entry(g).or_insert(0) += 1;
            *label_counts.entry(label.clone()).or_insert(0) += 1;
        }

        // bestCAT(g) = argmax_v acc(g,v)·prec(g,v), acc = P(g|v), prec = P(v|g);
        // ties break toward the more common v, then lexicographically.
        let mut best_cat: BTreeMap<String, String> = BTreeMap::new();
        for g in tag_counts.keys() {
            let mut best: Option<(f64, usize, &String)> = None;
            for (v, &v_count) in &label_counts {
                let pair = pair_counts.get(&(g.clone(), v.clone())).copied().unwrap_or(0) as f64;
                if pair == 0.0 {
                    continue;
                }
                let acc = pair / v_count as f64;
                let prec = pair / tag_counts[g] as f64;
                let score = acc * prec;
                let better = match &best {
                    None => true,
                    Some((s, c, bv)) => {
                        score > *s + 1e-12
                            || ((score - *s).abs() <= 1e-12
                                && (v_count > *c || (v_count == *c && v < *bv)))
                    }
                };
                if better {
                    best = Some((score, v_count, v));
                }
            }
            if let Some((_, _, v)) = best {
                best_cat.insert(g.clone(), v.clone());
            }
        }

        // Capture what the predictor needs. Unknown tags fall back to the
        // majority label ("an arbitrary categorical value is selected"); we use
        // the majority for determinism.
        let tagger_text = self.clone_classifier(false);
        let tagger_numeric = self.clone_classifier(true);
        let text_trained = self.text_trained;
        let numeric_trained = self.numeric_trained;
        FittedPredictor {
            predict: Box::new(move |value: &str| {
                let tag = {
                    let classifier = if numeric && numeric_trained {
                        &tagger_numeric
                    } else if text_trained {
                        &tagger_text
                    } else if numeric_trained {
                        &tagger_numeric
                    } else {
                        return fallback.clone();
                    };
                    classifier.classify(value).unwrap_or_else(|| "<untagged>".to_string())
                };
                best_cat.get(&tag).cloned().unwrap_or_else(|| fallback.clone())
            }),
            majority_count,
            n_train,
        }
    }

    fn name(&self) -> &'static str {
        "TgtClassInfer"
    }
}

impl TgtLabeler {
    fn clone_classifier(&self, numeric: bool) -> ValueClassifier {
        if numeric {
            self.numeric_classifier.clone()
        } else {
            self.text_classifier.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxm_relational::{tuple, Attribute, Table, TableSchema};

    fn train_pairs() -> Vec<(String, String)> {
        vec![
            ("leaves of grass hardcover".into(), "1".into()),
            ("heart of darkness paperback".into(), "1".into()),
            ("wasteland paperback classic".into(), "1".into()),
            ("moby dick hardcover edition".into(), "1".into()),
            ("the white album audio cd".into(), "2".into()),
            ("hotel california elektra cd".into(), "2".into()),
            ("kind of blue columbia cd".into(), "2".into()),
            ("abbey road remastered cd".into(), "2".into()),
        ]
    }

    fn target_db() -> Database {
        let book = Table::with_rows(
            TableSchema::new("book", vec![Attribute::text("title"), Attribute::text("format")]),
            vec![
                tuple!["the historian", "hardcover"],
                tuple!["war and peace", "paperback"],
                tuple!["to the lighthouse", "paperback edition"],
            ],
        )
        .unwrap();
        let music = Table::with_rows(
            TableSchema::new("music", vec![Attribute::text("title"), Attribute::text("label")]),
            vec![
                tuple!["x&y", "capitol audio cd"],
                tuple!["abbey road", "apple records cd"],
                tuple!["kind of blue", "columbia cd"],
            ],
        )
        .unwrap();
        Database::new("RT").with_table(book).with_table(music)
    }

    #[test]
    fn src_labeler_learns_book_vs_cd() {
        let fitted = SrcLabeler::new().fit(&train_pairs(), false);
        assert_eq!(fitted.n_train, 8);
        assert_eq!(fitted.majority_count, 4);
        assert_eq!(fitted.predict("middlemarch hardcover"), "1");
        assert_eq!(fitted.predict("dark side of the moon cd"), "2");
    }

    #[test]
    fn src_labeler_numeric_mode() {
        let train: Vec<(String, String)> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    ((10.0 + i as f64 * 0.1).to_string(), "low".to_string())
                } else {
                    ((200.0 + i as f64).to_string(), "high".to_string())
                }
            })
            .collect();
        let fitted = SrcLabeler::new().fit(&train, true);
        assert_eq!(fitted.predict("11"), "low");
        assert_eq!(fitted.predict("215"), "high");
    }

    #[test]
    fn src_labeler_empty_training_falls_back() {
        let fitted = SrcLabeler::new().fit(&[], false);
        assert_eq!(fitted.n_train, 0);
        assert_eq!(fitted.majority_count, 0);
        assert_eq!(fitted.predict("anything"), "<none>");
    }

    #[test]
    fn tgt_labeler_tags_values_with_target_columns() {
        let labeler = TgtLabeler::from_target(&target_db());
        assert!(labeler.known_tags() >= 3);
        let tag = labeler.tag("paperback special", false);
        assert_eq!(tag, "book.format");
        let tag = labeler.tag("sony records cd", false);
        assert_eq!(tag, "music.label");
    }

    #[test]
    fn tgt_labeler_fit_predicts_via_best_cat() {
        let labeler = TgtLabeler::from_target(&target_db());
        // Training pairs: descriptions with labels 1 (book) / 2 (music).
        let train = vec![
            ("hardcover".to_string(), "1".to_string()),
            ("paperback".to_string(), "1".to_string()),
            ("paperback classics".to_string(), "1".to_string()),
            ("audio cd".to_string(), "2".to_string()),
            ("elektra cd".to_string(), "2".to_string()),
            ("columbia records cd".to_string(), "2".to_string()),
        ];
        let fitted = labeler.fit(&train, false);
        assert_eq!(fitted.predict("hardcover reissue"), "1");
        assert_eq!(fitted.predict("capitol cd"), "2");
    }

    #[test]
    fn tgt_labeler_unknown_tag_falls_back_to_majority() {
        let labeler = TgtLabeler::from_target(&target_db());
        let train = vec![
            ("hardcover".to_string(), "1".to_string()),
            ("paperback".to_string(), "1".to_string()),
            ("audio cd".to_string(), "2".to_string()),
        ];
        let fitted = labeler.fit(&train, false);
        // Gibberish still resolves to some trained label (majority fallback).
        let p = fitted.predict("zzzzqqq");
        assert!(p == "1" || p == "2");
    }

    #[test]
    fn tgt_labeler_from_empty_target_is_safe() {
        let labeler = TgtLabeler::from_target(&Database::new("RT"));
        assert_eq!(labeler.known_tags(), 0);
        assert_eq!(labeler.tag("x", false), "<untagged>");
        let fitted = labeler.fit(&[("a".into(), "1".into())], false);
        assert_eq!(fitted.predict("a"), "1");
    }

    #[test]
    fn labeler_names_and_domains() {
        assert_eq!(SrcLabeler::new().name(), "SrcClassInfer");
        assert_eq!(TgtLabeler::from_target(&Database::new("RT")).name(), "TgtClassInfer");
        assert_eq!(TgtLabeler::domain_of(DataType::Int), "numeric");
        assert_eq!(TgtLabeler::domain_of(DataType::Text), "text");
    }
}
