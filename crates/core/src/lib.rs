//! # cxm-core
//!
//! The primary contribution of *Putting Context into Schema Matching*
//! (Bohannon, Elnahrawy, Fan, Flaster; VLDB 2006): **contextual schema
//! matching**, in which each attribute-level match is annotated with a
//! selection condition describing the context in which the match applies.
//!
//! The crate implements the full design space described in §3 of the paper:
//!
//! * [`context_match::ContextualMatcher`] — the overall `ContextMatch`
//!   algorithm (Figure 5): run `StandardMatch`, infer candidate views, re-score
//!   every prototype match against every candidate view, and select a coherent
//!   subset to present to the user.
//! * Candidate-view inference ([`candidate_views`]):
//!   * [`mod@naive_infer`] — `NaiveInfer`, one view per value of every
//!     categorical attribute (plus value subsets under early disjuncts);
//!   * [`clustered`] — `ClusteredViewGen` (Figure 6), which accepts a view
//!     family only when a classifier predicts the partitioning attribute
//!     significantly better than the majority-label null model;
//!   * [`labeler`] — the two classifier constructions that plug into
//!     `ClusteredViewGen`: `SrcClassInfer` (classifier trained on source
//!     values) and `TgtClassInfer` (classifier built from target-schema
//!     columns, Figure 7).
//! * Disjunction handling (§3.3): `EarlyDisjuncts` merges the most-confused
//!   value pairs during inference; `LateDisjuncts` unions high-scoring simple
//!   views at selection time.
//! * Match selection ([`select`], §3.4): `MultiTable` (best match per target
//!   attribute) and `QualTable` (best consistent source table or view set per
//!   target table, gated by the improvement threshold ω).
//! * Conjunctive contexts ([`conjunctive`], §3.5): iterative re-partitioning of
//!   the previous stage's views.
//! * The strawman configuration ([`strawman`]) = `NaiveInfer` + `MultiTable`,
//!   used as a baseline in the experiments.

pub mod bounded;
pub mod candidate_views;
pub mod clustered;
pub mod config;
pub mod conjunctive;
pub mod context_match;
pub mod labeler;
pub mod naive_infer;
pub mod result_cache;
pub mod score;
pub mod select;
pub mod strawman;

pub use bounded::BoundedCache;
pub use candidate_views::infer_candidate_views;
pub use clustered::{clustered_view_gen, FamilyQuality, ScoredFamily};
pub use config::{ContextMatchConfig, SelectionStrategy, ViewInferenceStrategy};
pub use conjunctive::conjunctive_context_match;
pub use context_match::{
    ContextMatchResult, ContextualMatcher, PreparedSourceColumns, PreparedTargets,
};
pub use labeler::{LabelPredictor, SrcLabeler, TgtLabeler};
pub use naive_infer::naive_infer;
pub use result_cache::{MatchResultCache, MatchResultKey};
pub use score::{
    condition_fingerprint, score_candidates, score_candidates_materializing,
    score_candidates_prepared, score_candidates_with_targets, RestrictedKey,
    RestrictedProfileCache, SharedSelections,
};
pub use select::select_contextual_matches;
pub use strawman::strawman_config;
