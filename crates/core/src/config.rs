//! Configuration of the contextual matcher.
//!
//! The experiments of §5 sweep exactly these knobs: the match-pruning
//! threshold τ, the improvement threshold ω, the `EarlyDisjuncts` /
//! `LateDisjuncts` policy, the view-inference algorithm (`NaiveInfer`,
//! `SrcClassInfer`, `TgtClassInfer`) and the selection algorithm (`MultiTable`,
//! `QualTable`).

use cxm_matching::MatchingConfig;
use cxm_relational::CategoricalPolicy;
use cxm_relational::SplitRatio;

/// Which `InferCandidateViews` implementation to use (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewInferenceStrategy {
    /// `NaiveInfer`: every value of every categorical attribute yields a view.
    Naive,
    /// `SrcClassInfer`: keep families whose partitioning attribute is
    /// significantly predicted by a classifier trained on source values.
    SrcClass,
    /// `TgtClassInfer`: like `SrcClass`, but the classifier first tags source
    /// values with the most similar target column.
    TgtClass,
}

impl ViewInferenceStrategy {
    /// Short name used in reports and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ViewInferenceStrategy::Naive => "Naive",
            ViewInferenceStrategy::SrcClass => "SrcClass",
            ViewInferenceStrategy::TgtClass => "TgtClass",
        }
    }

    /// All strategies, in the order the paper's figures list them.
    pub const ALL: [ViewInferenceStrategy; 3] = [
        ViewInferenceStrategy::SrcClass,
        ViewInferenceStrategy::TgtClass,
        ViewInferenceStrategy::Naive,
    ];
}

/// Which `SelectContextualMatches` implementation to use (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// Best match per target attribute, regardless of source table.
    MultiTable,
    /// Best consistent source table (or view set) per target table, gated by ω.
    QualTable,
}

impl SelectionStrategy {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::MultiTable => "MultiTable",
            SelectionStrategy::QualTable => "QualTable",
        }
    }
}

/// Full configuration of a `ContextMatch` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextMatchConfig {
    /// Standard-matcher configuration, including the pruning threshold τ.
    pub matching: MatchingConfig,
    /// Improvement threshold ω: the percentage by which a candidate view's
    /// total confidence (summed over the prototype matches to one target
    /// table) must exceed the base table's total confidence for the view to be
    /// selected by `QualTable`. The paper's default is 5.
    pub omega: f64,
    /// Disjunction policy: `true` = `EarlyDisjuncts`, `false` = `LateDisjuncts`.
    pub early_disjuncts: bool,
    /// View-inference strategy.
    pub inference: ViewInferenceStrategy,
    /// Match-selection strategy.
    pub selection: SelectionStrategy,
    /// Per-match noise floor for `QualTable`'s improvement computation: a
    /// prototype match only contributes to a view's total improvement when the
    /// view raises its confidence by at least this many percentage points.
    /// This keeps the accumulation of tiny random fluctuations across many
    /// matches from masquerading as a correlated improvement — the
    /// significance concern §3 raises about the strawman.
    pub min_match_improvement: f64,
    /// Significance threshold `T` for `ClusteredViewGen` (default 0.95).
    pub significance_threshold: f64,
    /// Categorical-attribute detection policy (§2.1 defaults).
    pub categorical: CategoricalPolicy,
    /// Train/test split ratio used by `ClusteredViewGen`.
    pub split_ratio: SplitRatio,
    /// Seed for the random train/test partition (experiments average over
    /// several seeds).
    pub seed: u64,
    /// Upper bound on the candidate views evaluated per source table — a guard
    /// against the exponential blow-up of naive early-disjunct enumeration.
    pub max_candidate_views: usize,
}

impl Default for ContextMatchConfig {
    fn default() -> Self {
        ContextMatchConfig {
            matching: MatchingConfig::default(),
            omega: 5.0,
            early_disjuncts: true,
            inference: ViewInferenceStrategy::TgtClass,
            selection: SelectionStrategy::QualTable,
            min_match_improvement: 5.0,
            significance_threshold: 0.95,
            categorical: CategoricalPolicy::default(),
            split_ratio: SplitRatio::two_thirds(),
            seed: 17,
            max_candidate_views: 2048,
        }
    }
}

impl ContextMatchConfig {
    /// The confidence threshold τ.
    pub fn tau(&self) -> f64 {
        self.matching.tau
    }

    /// Builder-style τ override.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.matching.tau = tau;
        self
    }

    /// Builder-style ω override.
    pub fn with_omega(mut self, omega: f64) -> Self {
        self.omega = omega;
        self
    }

    /// Builder-style inference-strategy override.
    pub fn with_inference(mut self, inference: ViewInferenceStrategy) -> Self {
        self.inference = inference;
        self
    }

    /// Builder-style selection-strategy override.
    pub fn with_selection(mut self, selection: SelectionStrategy) -> Self {
        self.selection = selection;
        self
    }

    /// Builder-style disjunct-policy override.
    pub fn with_early_disjuncts(mut self, early: bool) -> Self {
        self.early_disjuncts = early;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A deterministic signature of **every** knob of this configuration —
    /// the configuration third of a [`crate::MatchResultKey`]. Two
    /// configurations with equal signatures run identically on identical
    /// inputs, so a memoized result can be served across requests exactly
    /// when their signatures (and content keys) agree. Floats are folded in
    /// by bit pattern; enums by their declared position.
    pub fn signature(&self) -> u64 {
        let mut h = cxm_relational::Fnv64::with_seed(0x6378_6d5f_6366_6731);
        h.write_u64(self.matching.tau.to_bits());
        h.write_u64(self.matching.min_sample as u64);
        h.write_u64(self.omega.to_bits());
        h.write_u8(u8::from(self.early_disjuncts));
        h.write_u8(match self.inference {
            ViewInferenceStrategy::Naive => 0,
            ViewInferenceStrategy::SrcClass => 1,
            ViewInferenceStrategy::TgtClass => 2,
        });
        h.write_u8(match self.selection {
            SelectionStrategy::MultiTable => 0,
            SelectionStrategy::QualTable => 1,
        });
        h.write_u64(self.min_match_improvement.to_bits());
        h.write_u64(self.significance_threshold.to_bits());
        h.write_u64(self.categorical.value_fraction.to_bits());
        h.write_u64(self.categorical.tuple_fraction.to_bits());
        h.write_u64(self.categorical.small_sample_size as u64);
        h.write_u64(self.categorical.small_sample_values as u64);
        h.write_u64(self.categorical.small_sample_tuples as u64);
        h.write_u64(self.categorical.max_distinct as u64);
        h.write_u64(self.split_ratio.0.to_bits());
        h.write_u64(self.seed);
        h.write_u64(self.max_candidate_views as u64);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ContextMatchConfig::default();
        assert_eq!(c.tau(), 0.5);
        assert_eq!(c.omega, 5.0);
        assert_eq!(c.significance_threshold, 0.95);
        assert!(c.early_disjuncts);
        assert_eq!(c.inference, ViewInferenceStrategy::TgtClass);
        assert_eq!(c.selection, SelectionStrategy::QualTable);
    }

    #[test]
    fn builders_override_fields() {
        let c = ContextMatchConfig::default()
            .with_tau(0.8)
            .with_omega(15.0)
            .with_inference(ViewInferenceStrategy::Naive)
            .with_selection(SelectionStrategy::MultiTable)
            .with_early_disjuncts(false)
            .with_seed(99);
        assert_eq!(c.tau(), 0.8);
        assert_eq!(c.omega, 15.0);
        assert_eq!(c.inference, ViewInferenceStrategy::Naive);
        assert_eq!(c.selection, SelectionStrategy::MultiTable);
        assert!(!c.early_disjuncts);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn signatures_discriminate_every_knob() {
        let base = ContextMatchConfig::default();
        assert_eq!(base.signature(), ContextMatchConfig::default().signature());
        let variants = [
            base.with_tau(0.7),
            base.with_omega(9.0),
            base.with_early_disjuncts(false),
            base.with_inference(ViewInferenceStrategy::SrcClass),
            base.with_selection(SelectionStrategy::MultiTable),
            base.with_seed(18),
            ContextMatchConfig { max_candidate_views: 7, ..base },
            ContextMatchConfig { significance_threshold: 0.9, ..base },
        ];
        let mut signatures: Vec<u64> = variants.iter().map(|c| c.signature()).collect();
        signatures.push(base.signature());
        let distinct: std::collections::BTreeSet<u64> = signatures.iter().copied().collect();
        assert_eq!(distinct.len(), signatures.len(), "every knob must change the signature");
    }

    #[test]
    fn strategy_names() {
        assert_eq!(ViewInferenceStrategy::Naive.name(), "Naive");
        assert_eq!(ViewInferenceStrategy::SrcClass.name(), "SrcClass");
        assert_eq!(ViewInferenceStrategy::TgtClass.name(), "TgtClass");
        assert_eq!(SelectionStrategy::MultiTable.name(), "MultiTable");
        assert_eq!(SelectionStrategy::QualTable.name(), "QualTable");
        assert_eq!(ViewInferenceStrategy::ALL.len(), 3);
    }
}
