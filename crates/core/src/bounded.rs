//! The bounded insertion-order cache shared by every warm-artifact cache.
//!
//! [`crate::RestrictedProfileCache`], [`crate::MatchResultCache`] and the
//! service's source column-batch cache all need the same shape: a
//! capacity-bounded map evicting oldest-inserted first, with `0` meaning
//! "disabled", hit/miss/eviction counters for telemetry, and cheap clones
//! so a catalog can carry the cache across snapshots. This is that shape,
//! once.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A bounded map evicting oldest-inserted entries first.
///
/// * `with_capacity(0)` disables the cache entirely: inserts are dropped
///   and the cache stays empty (lookups still count misses, so callers that
///   skip lookups on disabled caches should check [`BoundedCache::capacity`]
///   first).
/// * Re-inserting an existing key replaces its value in place; its age is
///   unchanged.
/// * [`BoundedCache::get`] records a hit or miss; evictions are counted so
///   holders can surface capacity pressure instead of degrading silently.
#[derive(Debug, Clone)]
pub struct BoundedCache<K, V> {
    capacity: usize,
    // cxm-lint: allow(C001, reason = "this IS the bound: insert() evicts oldest-first past `capacity`")
    entries: HashMap<K, V>,
    // cxm-lint: allow(C001, reason = "one entry per `entries` key, popped in lock-step by eviction")
    order: VecDeque<K>,
    hits: usize,
    misses: usize,
    evictions: usize,
}

impl<K, V> Default for BoundedCache<K, V> {
    /// A disabled cache (capacity 0) — manual so `K`/`V` need not be
    /// `Default` themselves.
    fn default() -> Self {
        BoundedCache {
            capacity: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V> BoundedCache<K, V> {
    /// A cache retaining at most `capacity` entries (`0` disables caching).
    pub fn with_capacity(capacity: usize) -> Self {
        BoundedCache {
            capacity,
            entries: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups that found nothing so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// The value cached for `key`, recording a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.entries.get(key) {
            Some(value) => {
                self.hits += 1;
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Cache `value` under `key`, evicting oldest entries beyond the
    /// capacity (a no-op on a disabled cache).
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            match self.order.pop_front() {
                Some(evicted) => {
                    self.entries.remove(&evicted);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Iterate over the cached values (arbitrary order — callers must not
    /// let the visit order reach any deterministic output).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        // cxm-lint: allow(D001, reason = "order-independent use only: telemetry counting and set-shaped reductions")
        self.entries.values()
    }

    /// Iterate over `(key, value)` pairs in **insertion order** (oldest
    /// first) — the deterministic walk persistence uses to export a cache so
    /// a restored cache replays inserts in the original order and keeps the
    /// same eviction age ranking.
    pub fn iter_ordered(&self) -> impl Iterator<Item = (&K, &V)> {
        self.order.iter().filter_map(|key| self.entries.get(key).map(|value| (key, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_counts_and_replaces_in_place() {
        let mut cache: BoundedCache<u32, &str> = BoundedCache::with_capacity(2);
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 2);
        assert!(cache.get(&1).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        cache.insert(1, "a");
        cache.insert(2, "b");
        assert_eq!(cache.get(&1), Some(&"a"));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Re-inserting replaces without aging: 1 is still the oldest.
        cache.insert(1, "a2");
        assert_eq!(cache.len(), 2);
        cache.insert(3, "c");
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&1).is_none(), "oldest (1) evicted despite re-insert");
        assert_eq!(cache.get(&3), Some(&"c"));
        assert_eq!(cache.values().count(), 2);

        // Capacity 0 disables caching.
        let mut off: BoundedCache<u32, &str> = BoundedCache::with_capacity(0);
        off.insert(1, "a");
        assert!(off.is_empty());
    }
}
