//! Classifier evaluation on held-out data.
//!
//! `doTesting` in `ClusteredViewGen` presents the trained classifier with
//! unseen testing data and measures its quality as micro-averaged precision /
//! recall (combined with F-β). These helpers run that evaluation and return a
//! [`ConfusionMatrix`] whose `micro_average()` carries everything the
//! significance test and the disjunct-merging step need.

use cxm_stats::ConfusionMatrix;

use crate::classifier::Classifier;

/// Evaluate a trained classifier on (document, expected-label) pairs.
///
/// Items the classifier cannot answer (untrained) are recorded with the
/// pseudo-prediction `"<none>"`, which counts as an error for every real label.
pub fn evaluate<'a, C, I>(classifier: &C, test: I) -> ConfusionMatrix
where
    C: Classifier,
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut matrix = ConfusionMatrix::new();
    for (doc, expected) in test {
        let predicted = classifier.classify(doc).unwrap_or_else(|| "<none>".to_string());
        matrix.record(expected, predicted);
    }
    matrix
}

/// Train a fresh classifier on `train` pairs and evaluate it on `test` pairs.
pub fn train_and_evaluate<'a, C, I, J>(classifier: &mut C, train: I, test: J) -> ConfusionMatrix
where
    C: Classifier,
    I: IntoIterator<Item = (&'a str, &'a str)>,
    J: IntoIterator<Item = (&'a str, &'a str)>,
{
    for (doc, label) in train {
        classifier.teach(doc, label);
    }
    evaluate(classifier, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority::MajorityClassifier;
    use crate::naive_bayes::NaiveBayesClassifier;

    #[test]
    fn perfectly_separable_data_scores_one() {
        let train = vec![
            ("hardcover", "book"),
            ("paperback", "book"),
            ("audio cd", "music"),
            ("elektra cd", "music"),
        ];
        let test = vec![("hardcover", "book"), ("audio cd", "music")];
        let mut nb = NaiveBayesClassifier::with_qgrams(3);
        let matrix = train_and_evaluate(&mut nb, train, test);
        let micro = matrix.micro_average();
        assert_eq!(micro.correct, 2);
        assert_eq!(micro.total, 2);
        assert!((micro.f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn majority_classifier_gets_only_majority_right() {
        let train = vec![("x", "a"), ("y", "a"), ("z", "b")];
        let test = vec![("q", "a"), ("r", "a"), ("s", "b")];
        let mut m = MajorityClassifier::new();
        let matrix = train_and_evaluate(&mut m, train, test);
        assert_eq!(matrix.correct(), 2);
        assert_eq!(matrix.total(), 3);
        // The error is (b classified as a).
        let errors = matrix.pooled_errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].1, 1);
    }

    #[test]
    fn untrained_classifier_records_none_predictions() {
        let nb = NaiveBayesClassifier::with_qgrams(3);
        let matrix = evaluate(&nb, vec![("doc", "label")]);
        assert_eq!(matrix.correct(), 0);
        assert_eq!(matrix.total(), 1);
        assert!(matrix.labels().contains(&"<none>".to_string()));
    }

    #[test]
    fn empty_test_set_produces_empty_matrix() {
        let nb = NaiveBayesClassifier::with_qgrams(3);
        let matrix = evaluate(&nb, Vec::<(&str, &str)>::new());
        assert_eq!(matrix.total(), 0);
    }
}
