//! Process-wide instrumentation counting classifier work.
//!
//! One *work unit* is one (class, token) or (class, value) likelihood
//! evaluation — the inner-loop step both the Naive Bayes and the Gaussian
//! classifier spend their scoring time in, plus one unit per token taught.
//! The counter is a deterministic proxy for classifier runtime: for a fixed
//! input it always reads the same, unlike wall-clock time. The experiment
//! harness uses it to assert runtime *trends* (e.g. Figure 17's claim that
//! `TgtClassInfer`'s cost grows with target-schema width much faster than
//! `SrcClassInfer`'s) without flaking under CI load.

use std::sync::atomic::{AtomicUsize, Ordering};

static WORK_UNITS: AtomicUsize = AtomicUsize::new(0);

/// Total classifier work units recorded by this process so far. Monotone;
/// callers measure spans by differencing two reads.
pub fn work_units() -> usize {
    WORK_UNITS.load(Ordering::Relaxed)
}

/// Record `units` of classifier work (scoring inner-loop steps or tokens
/// taught).
pub fn record_work(units: usize) {
    WORK_UNITS.fetch_add(units, Ordering::Relaxed);
}
