//! The naive majority-class classifier `C_Naive`.
//!
//! §3.2.2: the significance test "compare\[s\] C_h to a naive classifier,
//! C_Naive, which always chooses the most common value of l, denoted by v*, as
//! the label, regardless of h." Besides serving as the null model, the majority
//! classifier doubles as the "arbitrary but deterministic" fallback label source
//! used by `TgtClassInfer` when a tag was never encountered during training.

use std::collections::BTreeMap;

use crate::classifier::Classifier;

/// A classifier that ignores the document and always answers the most common
/// training label (ties broken lexicographically for determinism).
#[derive(Debug, Clone, Default)]
pub struct MajorityClassifier {
    counts: BTreeMap<String, usize>,
    total: usize,
}

impl MajorityClassifier {
    /// Create an untrained majority classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Teach one label occurrence (the document is irrelevant).
    pub fn teach_label(&mut self, label: &str) {
        *self.counts.entry(label.to_string()).or_insert(0) += 1;
        self.total += 1;
    }

    /// The most common label `v*`, if any training data has been seen.
    pub fn majority_label(&self) -> Option<&str> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(l, _)| l.as_str())
    }

    /// The count of the most common label, `|v*|`.
    pub fn majority_count(&self) -> usize {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// The number of labels taught in total (`n_train` for the null model).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Frequency of a specific label among training examples.
    pub fn frequency(&self, label: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts.get(label).copied().unwrap_or(0) as f64 / self.total as f64
        }
    }
}

impl Classifier for MajorityClassifier {
    fn teach(&mut self, _document: &str, label: &str) {
        self.teach_label(label);
    }

    fn classify(&self, _document: &str) -> Option<String> {
        self.majority_label().map(str::to_string)
    }

    fn trained_examples(&self) -> usize {
        self.total
    }

    fn labels(&self) -> Vec<String> {
        self.counts.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_label_is_most_common() {
        let mut m = MajorityClassifier::new();
        for _ in 0..3 {
            m.teach("whatever", "book");
        }
        for _ in 0..5 {
            m.teach("anything", "cd");
        }
        assert_eq!(m.majority_label(), Some("cd"));
        assert_eq!(m.majority_count(), 5);
        assert_eq!(m.total(), 8);
        assert_eq!(m.classify("ignored").as_deref(), Some("cd"));
        assert!((m.frequency("cd") - 0.625).abs() < 1e-12);
        assert!((m.frequency("book") - 0.375).abs() < 1e-12);
        assert_eq!(m.frequency("dvd"), 0.0);
    }

    #[test]
    fn untrained_answers_none() {
        let m = MajorityClassifier::new();
        assert_eq!(m.classify("x"), None);
        assert_eq!(m.majority_label(), None);
        assert_eq!(m.majority_count(), 0);
        assert_eq!(m.frequency("x"), 0.0);
    }

    #[test]
    fn ties_break_lexicographically() {
        let mut m = MajorityClassifier::new();
        m.teach_label("zeta");
        m.teach_label("alpha");
        assert_eq!(m.majority_label(), Some("alpha"));
    }

    #[test]
    fn labels_sorted() {
        let mut m = MajorityClassifier::new();
        m.teach_label("b");
        m.teach_label("a");
        assert_eq!(m.labels(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(m.trained_examples(), 2);
    }
}
