//! Multinomial Naive Bayes over token (3-gram) features.
//!
//! This is the "standard Naive Bayesian classifier … with the values tokenized
//! into 3-grams" of §3.2.3, also used by `TgtClassInfer`'s per-domain target
//! classifiers for string attributes. Laplace (add-one) smoothing keeps unseen
//! tokens from zeroing out a class, and all probability work happens in log
//! space.

use std::collections::BTreeMap;

use crate::classifier::Classifier;
use crate::tokenize::TokenizerKind;

/// Per-class token counts.
#[derive(Debug, Clone, Default)]
struct ClassStats {
    /// Number of documents taught with this label (for the prior).
    doc_count: usize,
    /// Token → occurrence count.
    token_counts: BTreeMap<String, usize>,
    /// Total tokens taught for this label.
    total_tokens: usize,
}

/// A multinomial Naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayesClassifier {
    tokenizer: TokenizerKind,
    classes: BTreeMap<String, ClassStats>,
    vocabulary: BTreeMap<String, usize>,
    total_docs: usize,
    /// Laplace smoothing constant (add-α).
    alpha: f64,
}

impl NaiveBayesClassifier {
    /// Create a classifier using character q-grams of width `q`.
    pub fn with_qgrams(q: usize) -> Self {
        NaiveBayesClassifier::with_tokenizer(TokenizerKind::QGrams(q))
    }

    /// Create a classifier using word tokens.
    pub fn with_words() -> Self {
        NaiveBayesClassifier::with_tokenizer(TokenizerKind::Words)
    }

    /// Create a classifier with an explicit tokenizer.
    pub fn with_tokenizer(tokenizer: TokenizerKind) -> Self {
        NaiveBayesClassifier {
            tokenizer,
            classes: BTreeMap::new(),
            vocabulary: BTreeMap::new(),
            total_docs: 0,
            alpha: 1.0,
        }
    }

    /// Override the Laplace smoothing constant (default 1.0).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.max(1e-9);
        self
    }

    /// Log-probability scores for every known label, sorted by descending
    /// score. Returns an empty vector when untrained.
    pub fn scores(&self, document: &str) -> Vec<(String, f64)> {
        if self.total_docs == 0 {
            return Vec::new();
        }
        let tokens = self.tokenizer.tokenize(document);
        crate::telemetry::record_work(self.classes.len() * tokens.len().max(1));
        let vocab_size = self.vocabulary.len().max(1) as f64;
        let mut out: Vec<(String, f64)> = self
            .classes
            .iter()
            .map(|(label, stats)| {
                // Prior.
                let mut log_p = ((stats.doc_count as f64 + self.alpha)
                    / (self.total_docs as f64 + self.alpha * self.classes.len() as f64))
                    .ln();
                // Likelihood of each token under this class.
                let denom = stats.total_tokens as f64 + self.alpha * vocab_size;
                for t in &tokens {
                    let count = stats.token_counts.get(t).copied().unwrap_or(0) as f64;
                    log_p += ((count + self.alpha) / denom).ln();
                }
                (label.clone(), log_p)
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

impl Classifier for NaiveBayesClassifier {
    fn teach(&mut self, document: &str, label: &str) {
        let tokens = self.tokenizer.tokenize(document);
        crate::telemetry::record_work(tokens.len().max(1));
        let stats = self.classes.entry(label.to_string()).or_default();
        stats.doc_count += 1;
        stats.total_tokens += tokens.len();
        for t in tokens {
            *stats.token_counts.entry(t.clone()).or_insert(0) += 1;
            *self.vocabulary.entry(t).or_insert(0) += 1;
        }
        self.total_docs += 1;
    }

    fn classify(&self, document: &str) -> Option<String> {
        self.scores(document).into_iter().next().map(|(label, _)| label)
    }

    fn trained_examples(&self) -> usize {
        self.total_docs
    }

    fn labels(&self) -> Vec<String> {
        self.classes.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Train a small book-vs-CD classifier resembling the paper's inventory data.
    fn trained() -> NaiveBayesClassifier {
        let mut nb = NaiveBayesClassifier::with_qgrams(3);
        for (doc, label) in [
            ("hardcover", "book"),
            ("paperback", "book"),
            ("hardcover first edition", "book"),
            ("paperback reprint", "book"),
            ("audio cd", "music"),
            ("elektra cd", "music"),
            ("compact disc single", "music"),
            ("audio cd import", "music"),
        ] {
            nb.teach(doc, label);
        }
        nb
    }

    #[test]
    fn classifies_seen_patterns() {
        let nb = trained();
        assert_eq!(nb.classify("hardcover").as_deref(), Some("book"));
        assert_eq!(nb.classify("audio cd").as_deref(), Some("music"));
    }

    #[test]
    fn generalizes_to_unseen_but_similar_values() {
        let nb = trained();
        assert_eq!(nb.classify("paperback edition").as_deref(), Some("book"));
        assert_eq!(nb.classify("remastered cd").as_deref(), Some("music"));
    }

    #[test]
    fn untrained_classifier_returns_none() {
        let nb = NaiveBayesClassifier::with_qgrams(3);
        assert_eq!(nb.classify("x"), None);
        assert!(nb.scores("x").is_empty());
    }

    #[test]
    fn unseen_tokens_still_yield_a_known_label() {
        let mut nb = NaiveBayesClassifier::with_words();
        nb.teach("alpha", "a");
        nb.teach("alpha", "a");
        nb.teach("alpha", "a");
        nb.teach("beta", "b");
        // A document with no known tokens is still classified (smoothing keeps
        // every class's likelihood finite) and the answer is a trained label.
        let label = nb.classify("zzzz totally unseen").unwrap();
        assert!(nb.labels().contains(&label));
        // With balanced per-class token mass, the prior decides unseen input.
        let mut nb = NaiveBayesClassifier::with_words();
        nb.teach("alpha", "a");
        nb.teach("gamma", "a");
        nb.teach("beta", "b");
        assert_eq!(nb.classify("zzzz").as_deref(), Some("a"));
    }

    #[test]
    fn scores_are_sorted_descending() {
        let nb = trained();
        let scores = nb.scores("hardcover");
        assert_eq!(scores.len(), 2);
        assert!(scores[0].1 >= scores[1].1);
        assert_eq!(scores[0].0, "book");
    }

    #[test]
    fn labels_and_counts() {
        let nb = trained();
        assert_eq!(nb.labels(), vec!["book".to_string(), "music".to_string()]);
        assert_eq!(nb.trained_examples(), 8);
    }

    #[test]
    fn word_tokenizer_variant_works() {
        let mut nb = NaiveBayesClassifier::with_words();
        nb.teach("the quick brown fox", "animal");
        nb.teach("stock market crash", "finance");
        assert_eq!(nb.classify("brown fox jumps").as_deref(), Some("animal"));
        assert_eq!(nb.classify("market prices").as_deref(), Some("finance"));
    }

    #[test]
    fn alpha_smoothing_is_configurable() {
        let mut nb = NaiveBayesClassifier::with_qgrams(3).with_alpha(0.1);
        nb.teach("aaa", "x");
        nb.teach("bbb", "y");
        assert_eq!(nb.classify("aaa").as_deref(), Some("x"));
        // Alpha never goes to zero (guard against log(0)).
        let nb0 = NaiveBayesClassifier::with_qgrams(3).with_alpha(0.0);
        assert!(nb0.alpha > 0.0);
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let mut nb = NaiveBayesClassifier::with_words();
        nb.teach("same", "a");
        nb.teach("same", "b");
        // Both classes identical → the lexicographically first label wins.
        assert_eq!(nb.classify("same").as_deref(), Some("a"));
    }
}
