//! Tokenization of attribute values.
//!
//! The paper tokenizes text values into 3-grams ("the values tokenized into
//! 3-grams", §3.2.3; the target classifiers "one might think of a Naive Bayes
//! classifier on tokens or Q-grams", §3.2.2). Both a character q-gram tokenizer
//! and a word tokenizer are provided; the q-gram tokenizer is the default used
//! by the matching and view-inference code.

/// Which tokenizer a classifier or matcher should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenizerKind {
    /// Character q-grams of the given width (the paper uses 3).
    QGrams(usize),
    /// Whitespace/punctuation-delimited, lower-cased words.
    Words,
}

impl Default for TokenizerKind {
    fn default() -> Self {
        TokenizerKind::QGrams(3)
    }
}

impl TokenizerKind {
    /// Tokenize `text` with this tokenizer.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        match self {
            TokenizerKind::QGrams(q) => qgrams(text, *q),
            TokenizerKind::Words => words(text),
        }
    }
}

/// Normalize text before tokenization: lower-case and collapse runs of
/// non-alphanumeric characters into single spaces.
fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for c in ch.to_lowercase() {
                out.push(c);
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Character q-grams of the normalized text, padded with `q - 1` boundary
/// markers (`#`) on each side so that prefixes and suffixes are represented.
/// Text shorter than `q` yields the padded-window grams it has, never nothing
/// (unless the text normalizes to empty).
pub fn qgrams(text: &str, q: usize) -> Vec<String> {
    let q = q.max(1);
    let norm = normalize(text);
    if norm.is_empty() {
        return Vec::new();
    }
    let pad = "#".repeat(q - 1);
    let padded: Vec<char> = format!("{pad}{norm}{pad}").chars().collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Visit the character q-grams of `text` — the same grams, in the same
/// order, as [`qgrams`] — without allocating a `String` per gram: each gram
/// is presented in a reused scratch buffer. This is the allocation-free
/// path the interned profile builder in `cxm-matching` walks; [`qgrams`]
/// remains the convenient collected form.
pub fn for_each_qgram(text: &str, q: usize, mut visit: impl FnMut(&str)) {
    let q = q.max(1);
    let norm = normalize(text);
    if norm.is_empty() {
        return;
    }
    // Slide a q-char window over `#`-padding + norm + padding without
    // materializing the padded string: the window and the rendered gram are
    // the only buffers, both reused across grams (q is tiny, so the O(q)
    // shift beats a deque). The padded stream always spans at least q chars
    // (norm is non-empty and carries q-1 padding per side), so the window
    // fills and every text emits at least one gram — exactly like `qgrams`.
    let pad = q - 1;
    let mut window: Vec<char> = Vec::with_capacity(q);
    let mut scratch = String::with_capacity(4 * q);
    let stream =
        std::iter::repeat_n('#', pad).chain(norm.chars()).chain(std::iter::repeat_n('#', pad));
    for c in stream {
        if window.len() == q {
            window.remove(0);
        }
        window.push(c);
        if window.len() == q {
            scratch.clear();
            scratch.extend(window.iter());
            visit(&scratch);
        }
    }
}

/// Lower-cased word tokens of the text (alphanumeric runs).
pub fn words(text: &str) -> Vec<String> {
    normalize(text).split(' ').filter(|w| !w.is_empty()).map(|w| w.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_lowercases_and_strips_punctuation() {
        assert_eq!(normalize("Lance Armstrong's War!"), "lance armstrong s war");
        assert_eq!(normalize("  x&y  "), "x y");
        assert_eq!(normalize("***"), "");
    }

    #[test]
    fn word_tokenizer() {
        assert_eq!(words("Heart of Darkness"), vec!["heart", "of", "darkness"]);
        assert_eq!(words("B0006L16N8"), vec!["b0006l16n8"]);
        assert!(words("  --  ").is_empty());
    }

    #[test]
    fn qgram_padding_and_windows() {
        let grams = qgrams("cd", 3);
        // "##cd##" → ##c, #cd, cd#, d##
        assert_eq!(grams, vec!["##c", "#cd", "cd#", "d##"]);
    }

    #[test]
    fn for_each_qgram_matches_collected_qgrams() {
        for text in ["cd", "Lance Armstrong's War!", "a", "", "***", "héllo wörld", "x&y"] {
            for q in [0usize, 1, 2, 3, 5, 40] {
                let mut visited = Vec::new();
                for_each_qgram(text, q, |g| visited.push(g.to_string()));
                assert_eq!(visited, qgrams(text, q), "text {text:?}, q {q}");
            }
        }
    }

    #[test]
    fn qgram_counts_scale_with_length() {
        let short = qgrams("abc", 3);
        let long = qgrams("abcdefgh", 3);
        assert!(long.len() > short.len());
        // n characters with q=3 and 2-char padding on both sides → n + 2 grams.
        assert_eq!(long.len(), 8 + 2);
    }

    #[test]
    fn empty_and_punctuation_only_text() {
        assert!(qgrams("", 3).is_empty());
        assert!(qgrams("!!!", 3).is_empty());
    }

    #[test]
    fn unigrams_are_characters() {
        assert_eq!(qgrams("ab", 1), vec!["a", "b"]);
    }

    #[test]
    fn q_zero_is_clamped() {
        assert_eq!(qgrams("ab", 0), vec!["a", "b"]);
    }

    #[test]
    fn tokenizer_kind_dispatch() {
        assert_eq!(TokenizerKind::Words.tokenize("A b"), vec!["a", "b"]);
        assert_eq!(TokenizerKind::QGrams(2).tokenize("ab"), vec!["#a", "ab", "b#"]);
        assert_eq!(TokenizerKind::default(), TokenizerKind::QGrams(3));
    }

    #[test]
    fn similar_strings_share_many_grams() {
        let a: std::collections::BTreeSet<_> = qgrams("hardcover", 3).into_iter().collect();
        let b: std::collections::BTreeSet<_> = qgrams("hardcovers", 3).into_iter().collect();
        let c: std::collections::BTreeSet<_> = qgrams("audio cd", 3).into_iter().collect();
        let ab = a.intersection(&b).count();
        let ac = a.intersection(&c).count();
        assert!(ab > ac, "near-duplicates should overlap more than unrelated strings");
    }
}
