//! # cxm-classify
//!
//! Classification substrate for contextual schema matching
//! (*Putting Context into Schema Matching*, Bohannon et al., VLDB 2006).
//!
//! §3.2 of the paper builds its view-inference machinery on single-label
//! classifiers:
//!
//! * `SrcClassInfer` trains a classifier on a source attribute's values — "if h
//!   is a text attribute, a standard Naive Bayesian classifier is used, with
//!   the values tokenized into 3-grams. If h is a numeric attribute, a
//!   statistical classifier is used instead";
//! * `TgtClassInfer` keeps one classifier per basic type domain, trained on the
//!   values of every compatible *target* attribute, which tags source values
//!   with the target column they most resemble;
//! * the significance test compares either against `C_Naive`, the classifier
//!   that always answers the most common label.
//!
//! This crate provides exactly those pieces:
//!
//! * [`tokenize`] — 3-gram (q-gram) and word tokenizers,
//! * [`naive_bayes`] — a multinomial Naive Bayes text classifier over q-grams,
//! * [`numeric`] — a per-class Gaussian classifier for numeric values,
//! * [`majority`] — the naive majority-label classifier `C_Naive`,
//! * [`classifier`] — the common [`classifier::Classifier`] trait
//!   and a [`classifier::ValueClassifier`] that dispatches
//!   between the text and numeric classifiers based on the training data,
//! * [`eval`] — train/test evaluation producing a
//!   [`ConfusionMatrix`](cxm_stats::ConfusionMatrix).

pub mod classifier;
pub mod eval;
pub mod majority;
pub mod naive_bayes;
pub mod numeric;
pub mod telemetry;
pub mod tokenize;

pub use classifier::{Classifier, ValueClassifier};
pub use eval::{evaluate, train_and_evaluate};
pub use majority::MajorityClassifier;
pub use naive_bayes::NaiveBayesClassifier;
pub use numeric::GaussianClassifier;
pub use tokenize::{for_each_qgram, qgrams, words, TokenizerKind};
