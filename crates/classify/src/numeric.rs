//! Per-class Gaussian classifier for numeric attributes.
//!
//! §3.2.3: "If h is a numeric attribute, a statistical classifier is used
//! instead." Each class keeps the running mean and variance of the numeric
//! values taught for it; classification picks the class with the highest
//! Gaussian log-likelihood (plus a log prior). A small variance floor keeps
//! constant-valued classes from producing infinities.

use std::collections::BTreeMap;

use cxm_stats::Moments;

use crate::classifier::Classifier;

/// A Gaussian (one-dimensional) per-class classifier.
#[derive(Debug, Clone, Default)]
pub struct GaussianClassifier {
    classes: BTreeMap<String, Moments>,
    total: usize,
}

/// Variance floor to avoid division by zero for constant-valued classes.
const MIN_VARIANCE: f64 = 1e-6;

impl GaussianClassifier {
    /// Create an untrained classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Teach one numeric example.
    pub fn teach_value(&mut self, value: f64, label: &str) {
        crate::telemetry::record_work(1);
        self.classes.entry(label.to_string()).or_default().push(value);
        self.total += 1;
    }

    /// Classify a numeric value.
    pub fn classify_value(&self, value: f64) -> Option<String> {
        self.scores_value(value).into_iter().next().map(|(l, _)| l)
    }

    /// Log-likelihood scores (including log prior) for each class, sorted
    /// descending. Empty when untrained.
    pub fn scores_value(&self, value: f64) -> Vec<(String, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        crate::telemetry::record_work(self.classes.len());
        let mut out: Vec<(String, f64)> = self
            .classes
            .iter()
            .map(|(label, m)| {
                let mean = m.mean();
                let var = m.population_variance().max(MIN_VARIANCE);
                let prior = (m.count() as f64 / self.total as f64).ln();
                let ll = -0.5
                    * ((value - mean).powi(2) / var + var.ln() + (2.0 * std::f64::consts::PI).ln());
                (label.clone(), prior + ll)
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// Mean of the values taught for one label (for inspection/tests).
    pub fn class_mean(&self, label: &str) -> Option<f64> {
        self.classes.get(label).map(|m| m.mean())
    }
}

impl Classifier for GaussianClassifier {
    fn teach(&mut self, document: &str, label: &str) {
        if let Ok(x) = document.trim().parse::<f64>() {
            self.teach_value(x, label);
        }
    }

    fn classify(&self, document: &str) -> Option<String> {
        document.trim().parse::<f64>().ok().and_then(|x| self.classify_value(x))
    }

    fn trained_examples(&self) -> usize {
        self.total
    }

    fn labels(&self) -> Vec<String> {
        self.classes.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> GaussianClassifier {
        let mut g = GaussianClassifier::new();
        // Book prices around 15, CD prices around 100 (exaggerated separation).
        for x in [14.0, 15.0, 16.0, 15.5, 14.5] {
            g.teach_value(x, "book");
        }
        for x in [95.0, 100.0, 105.0, 98.0, 102.0] {
            g.teach_value(x, "cd");
        }
        g
    }

    #[test]
    fn separable_classes_classify_correctly() {
        let g = trained();
        assert_eq!(g.classify_value(15.2).as_deref(), Some("book"));
        assert_eq!(g.classify_value(99.0).as_deref(), Some("cd"));
        assert_eq!(g.classify_value(0.0).as_deref(), Some("book"));
        assert_eq!(g.classify_value(1000.0).as_deref(), Some("cd"));
    }

    #[test]
    fn untrained_returns_none() {
        let g = GaussianClassifier::new();
        assert_eq!(g.classify_value(1.0), None);
        assert!(g.scores_value(1.0).is_empty());
        assert_eq!(g.trained_examples(), 0);
    }

    #[test]
    fn string_interface_parses_numbers() {
        let mut g = GaussianClassifier::new();
        g.teach("10", "low");
        g.teach("11", "low");
        g.teach("90", "high");
        g.teach("95", "high");
        assert_eq!(g.classify("10.5").as_deref(), Some("low"));
        assert_eq!(g.classify("92").as_deref(), Some("high"));
        // Non-numeric strings are ignored when teaching and unanswerable when classifying.
        g.teach("not a number", "junk");
        assert_eq!(g.trained_examples(), 4);
        assert_eq!(g.classify("not a number"), None);
    }

    #[test]
    fn constant_valued_class_does_not_blow_up() {
        let mut g = GaussianClassifier::new();
        for _ in 0..5 {
            g.teach_value(7.0, "seven");
        }
        for x in [100.0, 101.0, 99.0] {
            g.teach_value(x, "hundred");
        }
        assert_eq!(g.classify_value(7.0).as_deref(), Some("seven"));
        assert_eq!(g.classify_value(100.0).as_deref(), Some("hundred"));
    }

    #[test]
    fn prior_breaks_ties_for_distant_values() {
        let mut g = GaussianClassifier::new();
        // Identical spread and symmetric means around the query, but class "a"
        // has twice the examples, so its prior wins the tie.
        for x in [1.0, 2.0, 3.0, 1.0, 2.0, 3.0] {
            g.teach_value(x, "a");
        }
        for x in [7.0, 8.0, 9.0] {
            g.teach_value(x, "b");
        }
        assert_eq!(g.classify_value(5.0).as_deref(), Some("a"));
    }

    #[test]
    fn class_means_are_tracked() {
        let g = trained();
        assert!((g.class_mean("book").unwrap() - 15.0).abs() < 0.5);
        assert!((g.class_mean("cd").unwrap() - 100.0).abs() < 1.0);
        assert!(g.class_mean("dvd").is_none());
    }

    #[test]
    fn labels_are_sorted() {
        let g = trained();
        assert_eq!(g.labels(), vec!["book".to_string(), "cd".to_string()]);
    }
}
