//! The common classifier interface and a type-dispatching wrapper.
//!
//! Everything the paper calls a classifier — the per-attribute `C_h` of
//! `ClusteredViewGen`, the per-domain target classifiers `C_D^T` of
//! `TgtClassInfer`, and the naive null model `C_Naive` — fits one interface:
//! teach it (document, label) pairs, then ask it to classify unseen documents.
//!
//! Documents here are attribute *values* rendered as text; labels are strings
//! (categorical attribute values, or qualified target column names).

use crate::naive_bayes::NaiveBayesClassifier;
use crate::numeric::GaussianClassifier;

/// A trainable single-label classifier over textual documents.
pub trait Classifier {
    /// Teach one (document, label) example.
    fn teach(&mut self, document: &str, label: &str);

    /// Classify a document, returning the most probable label, or `None` if the
    /// classifier has seen no training data.
    fn classify(&self, document: &str) -> Option<String>;

    /// Number of training examples seen.
    fn trained_examples(&self) -> usize;

    /// The set of labels seen during training, sorted.
    fn labels(&self) -> Vec<String>;
}

/// A classifier over attribute values that dispatches between a numeric
/// (Gaussian) model and a textual (Naive Bayes over 3-grams) model.
///
/// §3.2.3: *"If h is a text attribute, a standard Naive Bayesian classifier is
/// used, with the values tokenized into 3-grams. If h is a numeric attribute, a
/// statistical classifier is used instead."* The caller states up front whether
/// the attribute is numeric; values that fail to parse as numbers in numeric
/// mode fall back to the text model so dirty data degrades gracefully instead
/// of being dropped.
#[derive(Debug, Clone)]
pub struct ValueClassifier {
    numeric_mode: bool,
    text: NaiveBayesClassifier,
    numeric: GaussianClassifier,
}

impl ValueClassifier {
    /// Create a classifier for a textual attribute.
    pub fn text() -> Self {
        ValueClassifier {
            numeric_mode: false,
            text: NaiveBayesClassifier::with_qgrams(3),
            numeric: GaussianClassifier::new(),
        }
    }

    /// Create a classifier for a numeric attribute.
    pub fn numeric() -> Self {
        ValueClassifier { numeric_mode: true, ..ValueClassifier::text() }
    }

    /// Create a classifier appropriate for the attribute kind.
    pub fn for_kind(numeric: bool) -> Self {
        if numeric {
            ValueClassifier::numeric()
        } else {
            ValueClassifier::text()
        }
    }

    /// Whether this classifier is in numeric mode.
    pub fn is_numeric(&self) -> bool {
        self.numeric_mode
    }
}

impl Classifier for ValueClassifier {
    fn teach(&mut self, document: &str, label: &str) {
        if self.numeric_mode {
            if let Ok(x) = document.trim().parse::<f64>() {
                self.numeric.teach_value(x, label);
                return;
            }
        }
        self.text.teach(document, label);
    }

    fn classify(&self, document: &str) -> Option<String> {
        if self.numeric_mode {
            if let Ok(x) = document.trim().parse::<f64>() {
                if let Some(label) = self.numeric.classify_value(x) {
                    return Some(label);
                }
            }
        }
        self.text.classify(document)
    }

    fn trained_examples(&self) -> usize {
        self.text.trained_examples() + self.numeric.trained_examples()
    }

    fn labels(&self) -> Vec<String> {
        let mut labels = self.text.labels();
        labels.extend(self.numeric.labels());
        labels.sort();
        labels.dedup();
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_mode_routes_to_naive_bayes() {
        let mut c = ValueClassifier::text();
        c.teach("leaves of grass", "book");
        c.teach("heart of darkness", "book");
        c.teach("the white album", "cd");
        c.teach("hotel california", "cd");
        assert!(!c.is_numeric());
        assert_eq!(c.trained_examples(), 4);
        assert_eq!(c.labels(), vec!["book".to_string(), "cd".to_string()]);
        assert_eq!(c.classify("leaves of grass").as_deref(), Some("book"));
    }

    #[test]
    fn numeric_mode_routes_to_gaussian() {
        let mut c = ValueClassifier::numeric();
        for x in [10.0, 11.0, 12.0f64] {
            c.teach(&x.to_string(), "low");
        }
        for x in [100.0, 110.0, 120.0f64] {
            c.teach(&x.to_string(), "high");
        }
        assert!(c.is_numeric());
        assert_eq!(c.classify("11.5").as_deref(), Some("low"));
        assert_eq!(c.classify("105").as_deref(), Some("high"));
    }

    #[test]
    fn numeric_mode_falls_back_to_text_for_unparseable_values() {
        let mut c = ValueClassifier::numeric();
        c.teach("not-a-number-aaa", "alpha");
        c.teach("not-a-number-bbb", "beta");
        c.teach("5.0", "num");
        // A textual query is answered by the text model.
        assert_eq!(c.classify("not-a-number-aaa").as_deref(), Some("alpha"));
        // Labels include both models' labels.
        assert_eq!(c.labels().len(), 3);
    }

    #[test]
    fn untrained_classifier_answers_none() {
        let c = ValueClassifier::text();
        assert_eq!(c.classify("anything"), None);
        assert_eq!(c.trained_examples(), 0);
        assert!(c.labels().is_empty());
    }

    #[test]
    fn for_kind_dispatch() {
        assert!(ValueClassifier::for_kind(true).is_numeric());
        assert!(!ValueClassifier::for_kind(false).is_numeric());
    }
}
