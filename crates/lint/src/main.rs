//! The `cxm-lint` binary — the CI invariant gate.
//!
//! ```text
//! cxm-lint [--root DIR] [--json] [--write-baseline FILE] [--check-baseline FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (or baseline drift), `2` usage/IO
//! error. `--json` writes the full machine-readable report to stdout;
//! `--check-baseline` additionally diffs the per-rule suppression counts
//! against the committed baseline so new escape hatches cannot ship
//! silently (`--write-baseline` regenerates it after a reviewed change).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut write_baseline: Option<PathBuf> = None;
    let mut check_baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--write-baseline" => match args.next() {
                Some(f) => write_baseline = Some(PathBuf::from(f)),
                None => return usage("--write-baseline needs a file"),
            },
            "--check-baseline" => match args.next() {
                Some(f) => check_baseline = Some(PathBuf::from(f)),
                None => return usage("--check-baseline needs a file"),
            },
            "--help" | "-h" => {
                println!(
                    "cxm-lint — workspace invariant checker\n\n\
                     USAGE: cxm-lint [--root DIR] [--json] [--write-baseline FILE] \
                     [--check-baseline FILE]\n\nRULES:"
                );
                for (id, summary) in cxm_lint::RULES {
                    println!("  {id}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let report = match cxm_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cxm-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.human());
    }

    if let Some(path) = write_baseline {
        if let Err(err) = std::fs::write(&path, report.baseline_json()) {
            eprintln!("cxm-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("cxm-lint: baseline written to {}", path.display());
    }

    let mut failed = !report.is_clean();
    if let Some(path) = check_baseline {
        match std::fs::read_to_string(&path) {
            Ok(text) => match cxm_lint::parse_baseline(&text) {
                Ok(baseline) => {
                    let live = report.suppression_counts();
                    let mut rules: Vec<&str> = baseline.keys().map(String::as_str).collect();
                    rules.extend(live.keys());
                    rules.sort_unstable();
                    rules.dedup();
                    for rule in rules {
                        let pinned = baseline.get(rule).copied().unwrap_or(0);
                        let now = live.get(rule).copied().unwrap_or(0);
                        if now > pinned {
                            eprintln!(
                                "cxm-lint: {rule} suppressions grew {pinned} -> {now}; justify \
                                 the new allow, then regenerate with --write-baseline"
                            );
                            failed = true;
                        } else if now < pinned {
                            eprintln!(
                                "cxm-lint: {rule} suppressions shrank {pinned} -> {now}; \
                                 baseline is stale, regenerate with --write-baseline"
                            );
                            failed = true;
                        }
                    }
                }
                Err(err) => {
                    eprintln!("cxm-lint: bad baseline {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(err) => {
                eprintln!("cxm-lint: cannot read {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cxm-lint: {msg} (see --help)");
    ExitCode::from(2)
}
