//! The rule set. Every rule has an ID, a one-line summary, and a
//! token-pattern implementation; `docs/INVARIANTS.md` documents the
//! invariant each one protects, with worked examples and known limits.

use crate::scan::{Scanned, Token};
use std::collections::BTreeSet;

/// `(ID, summary)` of every enforceable rule, plus the two directive
/// meta-rules. The order here is the order of the documentation.
pub const RULES: &[(&str, &str)] = &[
    ("D001", "no iteration over HashMap/HashSet in deterministic-output crates"),
    ("D002", "no Instant::now/SystemTime outside harness/bench/telemetry"),
    ("D003", "no float sum/fold fed directly by a hash-collection iterator"),
    ("P001", "no unwrap()/expect() on lock guards in cxm-service/cxm-server"),
    ("P002", "every #[ignore] must carry a reason string"),
    ("C001", "growable collection fields in *Cache types must be annotated"),
    ("A001", "malformed cxm-lint directive (bare allow, unknown ID, bad syntax)"),
    ("A002", "allow directive that suppresses nothing"),
];

/// The IDs an `allow(...)` may name (the meta-rules cannot be allowed).
pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|(id, _)| *id).filter(|id| !id.starts_with('A')).collect()
}

/// Crates whose output must be byte-identical across runs, schedules, and
/// warm/cold paths (ROADMAP "Invariants"): D001/D003 fire here.
const DETERMINISTIC_CRATES: &[&str] =
    &["relational", "matching", "classify", "core", "service", "server", "persist"];

/// Crates that measure wall-clock time as their purpose: D002 exempt.
const TIMING_CRATES: &[&str] = &["harness", "bench"];

/// Hash-ordered collection types D001 tracks.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that iterate a hash collection in nondeterministic order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

/// Growable collection types C001 requires an annotation for when they are
/// direct fields of a `*Cache*` type.
const GROWABLE_TYPES: &[&str] =
    &["HashMap", "HashSet", "Vec", "VecDeque", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// A rule hit before allow-filtering.
#[derive(Debug)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// Run every rule over one scanned file. `crate_name` is the directory
/// under `crates/` (or `"tests"` for the workspace integration-test crate);
/// `rel_path` is workspace-relative and only used to recognize telemetry
/// modules.
pub fn check(crate_name: &str, rel_path: &str, scanned: &Scanned) -> Vec<RawFinding> {
    let toks = &scanned.tokens;
    let mut findings = Vec::new();
    let deterministic = DETERMINISTIC_CRATES.contains(&crate_name);

    let hash_names = collect_hash_names(toks);
    findings.extend(hash_iteration(toks, &hash_names, deterministic));
    if !TIMING_CRATES.contains(&crate_name) && !rel_path.contains("telemetry") {
        findings.extend(wall_clock(toks));
    }
    if matches!(crate_name, "service" | "server") {
        findings.extend(lock_unwrap(toks));
    }
    findings.extend(ignore_without_reason(toks));
    findings.extend(cache_fields(toks));
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Collection types whose iteration order IS deterministic; a name declared
/// with one of these *and* a hash type in the same file is ambiguous
/// (tracking is per-file and name-based), so it is dropped from tracking
/// rather than risk a false positive on the ordered one.
const ORDERED_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "Vec", "VecDeque"];

/// Pass 1 of D001/D003: names declared in this file with a hash-collection
/// type — `name: HashMap<…>` (incl. path-qualified, `&`, `mut`) and
/// `let [mut] name = HashMap::new()/with_capacity/default/from(…)`.
fn collect_hash_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut ordered = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        let hash = HASH_TYPES.contains(&ident);
        if !hash && !ORDERED_TYPES.contains(&ident) {
            continue;
        }
        let names = if hash { &mut names } else { &mut ordered };
        // `HashMap::new()`-style initializer: walk forward over `::method`,
        // then backward over `=`, to the bound name.
        if i + 2 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks
                .get(i + 3)
                .and_then(Token::ident)
                .is_some_and(|m| matches!(m, "new" | "with_capacity" | "default" | "from"))
        {
            let mut j = i as isize - 1;
            // Skip a path prefix (`std::collections::`) written before the type.
            while j >= 1 && toks[j as usize].is_punct(':') && toks[j as usize - 1].is_punct(':') {
                j -= 2;
                if j >= 0 && toks[j as usize].ident().is_some() {
                    j -= 1;
                }
            }
            if j >= 1 && toks[j as usize].is_punct('=') {
                if let Some(name) = toks[j as usize - 1].ident() {
                    names.insert(name.to_string());
                }
            }
            continue;
        }
        // Type-annotation form: `name : [&] [path::]HashMap <`.
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        let mut j = i as isize - 1;
        // Skip the path prefix before the type name.
        while j >= 1 && toks[j as usize].is_punct(':') && toks[j as usize - 1].is_punct(':') {
            j -= 2;
            if j >= 0 && toks[j as usize].ident().is_some() {
                j -= 1;
            } else {
                break;
            }
        }
        // Skip reference/mut sigils.
        while j >= 0
            && (toks[j as usize].is_punct('&')
                || toks[j as usize].is_ident("mut")
                || toks[j as usize].is_punct('\''))
        {
            j -= 1;
        }
        if j >= 1
            && toks[j as usize].is_punct(':')
            && !toks[j as usize - 1].is_punct(':')
            && toks.get(j as usize + 1).is_none_or(|t| !t.is_punct(':'))
        {
            if let Some(name) = toks[j as usize - 1].ident() {
                names.insert(name.to_string());
            }
        }
    }
    names.difference(&ordered).cloned().collect()
}

/// Pass 2 of D001/D003: iteration over a tracked hash name — method chains
/// (`name.values()`, `recv.name.iter()`) and `for … in` whose expression
/// ends in a tracked name. When the same statement feeds the iterator into
/// `.fold(` or `.sum::<f64>()`, the finding upgrades to D003 (unordered
/// float accumulation), which fires in *every* crate.
fn hash_iteration(
    toks: &[Token],
    hash_names: &BTreeSet<String>,
    deterministic: bool,
) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if let Some(name) = t.ident() {
            if hash_names.contains(name)
                && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            {
                if let Some(method) = toks.get(i + 2).and_then(Token::ident) {
                    if ITER_METHODS.contains(&method) {
                        if let Some(line) = float_accumulation_after(toks, i + 3) {
                            findings.push(RawFinding {
                                rule: "D003",
                                line,
                                message: format!(
                                    "float accumulation over hash-ordered `{name}.{method}()` — \
                                     FP addition is not associative, so the result depends on \
                                     iteration order; sort first or accumulate integers"
                                ),
                            });
                        } else if deterministic {
                            findings.push(RawFinding {
                                rule: "D001",
                                line: toks[i + 2].line,
                                message: format!(
                                    "iteration over hash-ordered `{name}.{method}()` in a \
                                     deterministic-output crate — use BTreeMap/BTreeSet or sort \
                                     before consuming"
                                ),
                            });
                        }
                    }
                }
            }
            if deterministic && name == "for" {
                // `for <pat> in <expr> {` — flag when <expr>'s last token is
                // a tracked hash name (method-call forms are caught above).
                if let Some(in_pos) =
                    toks[i..].iter().take(24).position(|t| t.is_ident("in")).map(|p| p + i)
                {
                    if let Some(brace) = toks[in_pos..]
                        .iter()
                        .take(24)
                        .position(|t| t.is_punct('{'))
                        .map(|p| p + in_pos)
                    {
                        if brace > in_pos + 1 {
                            if let Some(last) = toks[brace - 1].ident() {
                                if hash_names.contains(last) {
                                    findings.push(RawFinding {
                                        rule: "D001",
                                        line: toks[brace - 1].line,
                                        message: format!(
                                            "`for … in {last}` iterates a hash-ordered collection \
                                             in a deterministic-output crate — use \
                                             BTreeMap/BTreeSet or sort first"
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    findings
}

/// Scan forward from an iteration call to the end of the statement for
/// `.fold(` or `.sum::<f64|f32>()`; returns the accumulator's line.
fn float_accumulation_after(toks: &[Token], start: usize) -> Option<u32> {
    let mut i = start;
    let mut guard = 0;
    while i < toks.len() && guard < 160 {
        let t = &toks[i];
        if t.is_punct(';') || t.is_punct('{') {
            return None;
        }
        if t.is_punct('.') {
            if toks.get(i + 1).is_some_and(|t| t.is_ident("fold"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                return Some(toks[i + 1].line);
            }
            if toks.get(i + 1).is_some_and(|t| t.is_ident("sum"))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('<'))
                && toks.get(i + 5).and_then(Token::ident).is_some_and(|t| t == "f64" || t == "f32")
            {
                return Some(toks[i + 1].line);
            }
        }
        i += 1;
        guard += 1;
    }
    None
}

/// D002: wall-clock reads. `Instant::now(…)` and any `SystemTime` use make
/// output and cache decisions time-dependent; clocks belong to the harness,
/// the benches, and telemetry modules.
fn wall_clock(toks: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            findings.push(RawFinding {
                rule: "D002",
                line: t.line,
                message: "`Instant::now` outside harness/bench/telemetry — wall-clock reads \
                          make behaviour time-dependent"
                    .into(),
            });
        }
        if t.is_ident("SystemTime") {
            findings.push(RawFinding {
                rule: "D002",
                line: t.line,
                message: "`SystemTime` outside harness/bench/telemetry — wall-clock reads make \
                          behaviour time-dependent"
                    .into(),
            });
        }
    }
    findings
}

/// P001: `.lock()/.read()/.write()` followed by `.unwrap()/.expect(` — a
/// poisoned lock panics the request path. `cxm-service` and `cxm-server`
/// handle poisoning deliberately via the `lock_or_recover` helpers.
fn lock_unwrap(toks: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .and_then(Token::ident)
                .is_some_and(|m| matches!(m, "lock" | "read" | "write"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 5)
                .and_then(Token::ident)
                .is_some_and(|m| matches!(m, "unwrap" | "expect"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct('('))
        {
            let guard = toks[i + 1].ident().unwrap_or_default();
            let consumer = toks[i + 5].ident().unwrap_or_default();
            findings.push(RawFinding {
                rule: "P001",
                line: toks[i + 5].line,
                message: format!(
                    "`.{guard}().{consumer}(…)` panics on a poisoned lock — use the service's \
                     `lock_or_recover`/`read_or_recover`/`write_or_recover` helpers"
                ),
            });
        }
    }
    findings
}

/// P002: `#[ignore]` without `= "reason"`. An unexplained ignored test rots
/// invisibly; the scheduled CI job runs them, and the reason says what a
/// failure means.
fn ignore_without_reason(toks: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("ignore"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(']'))
        {
            findings.push(RawFinding {
                rule: "P002",
                line: toks[i + 2].line,
                message: "`#[ignore]` without a reason — write `#[ignore = \"why\"]` so the \
                          scheduled ignored-tests job knows what a failure means"
                    .into(),
            });
        }
    }
    findings
}

/// C001: direct growable-collection fields of a type whose name contains
/// `Cache` must carry an allow annotation stating the bound (or why none is
/// needed). Warm caches live for the process lifetime; an unbounded field
/// is a slow leak.
fn cache_fields(toks: &[Token]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_ident("struct")
            && toks.get(i + 1).and_then(Token::ident).is_some_and(|n| n.contains("Cache")))
        {
            i += 1;
            continue;
        }
        let struct_name = toks[i + 1].ident().unwrap_or_default().to_string();
        // Find the body start; `;` or `(` first means unit/tuple struct.
        let mut j = i + 2;
        let body = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('{') => break Some(j),
                Some(t) if t.is_punct(';') || t.is_punct('(') => break None,
                Some(_) => j += 1,
            }
        };
        let Some(open) = body else {
            i += 2;
            continue;
        };
        let mut depth = 1usize;
        let mut k = open + 1;
        let mut at_field_start = true;
        while k < toks.len() && depth > 0 {
            let t = &toks[k];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if depth == 1 {
                if t.is_punct(',') {
                    at_field_start = true;
                } else if t.is_punct('#') && toks.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                    // Skip an attribute.
                    let mut b = 1usize;
                    k += 2;
                    while k < toks.len() && b > 0 {
                        if toks[k].is_punct('[') {
                            b += 1;
                        } else if toks[k].is_punct(']') {
                            b -= 1;
                        }
                        k += 1;
                    }
                    continue;
                } else if at_field_start {
                    // `[pub [(…)]] name : TYPE` — check TYPE's head.
                    let mut f = k;
                    if toks[f].is_ident("pub") {
                        f += 1;
                        if toks.get(f).is_some_and(|t| t.is_punct('(')) {
                            while f < toks.len() && !toks[f].is_punct(')') {
                                f += 1;
                            }
                            f += 1;
                        }
                    }
                    if toks.get(f).and_then(Token::ident).is_some()
                        && toks.get(f + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(f + 2).is_some_and(|t| !t.is_punct(':'))
                    {
                        let field = toks[f].ident().unwrap_or_default().to_string();
                        if let Some((head, line)) = type_head(toks, f + 2) {
                            if GROWABLE_TYPES.contains(&head.as_str()) {
                                findings.push(RawFinding {
                                    rule: "C001",
                                    line,
                                    message: format!(
                                        "`{struct_name}.{field}` is a growable `{head}` in a \
                                         cache type — state its bound in an allow(C001) \
                                         annotation or bound it (e.g. via BoundedCache)"
                                    ),
                                });
                            }
                        }
                        k = f + 2;
                        at_field_start = false;
                        continue;
                    }
                    at_field_start = false;
                }
            }
            k += 1;
        }
        i = k;
    }
    findings
}

/// The head identifier of a field type starting at `toks[start]`, skipping
/// `&`, lifetimes, `mut`, and a leading path (`std::collections::X` → `X`).
fn type_head(toks: &[Token], start: usize) -> Option<(String, u32)> {
    let mut i = start;
    while i < toks.len()
        && (toks[i].is_punct('&') || toks[i].is_punct('\'') || toks[i].is_ident("mut"))
    {
        i += 1;
    }
    // A lifetime name directly after `'` was consumed as an ident; skip it
    // when the *next* token continues the type.
    let mut head: Option<(String, u32)> = None;
    while let Some(t) = toks.get(i) {
        match t.ident() {
            Some(ident) => {
                head = Some((ident.to_string(), t.line));
                if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                {
                    i += 3;
                    continue;
                }
                break;
            }
            None => break,
        }
    }
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(crate_name: &str, src: &str) -> Vec<RawFinding> {
        check(crate_name, &format!("crates/{crate_name}/src/lib.rs"), &scan(src))
    }

    #[test]
    fn d001_tracks_declarations_and_fields() {
        let src = "struct S { distributions: HashMap<K, V> }\n\
                   fn f(other: S) { for (k, v) in other.distributions {} }\n";
        let hits = run("matching", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!((hits[0].rule, hits[0].line), ("D001", 2));
        assert!(run("harness", src).is_empty(), "non-deterministic crate exempt");
    }

    #[test]
    fn d001_method_chains_and_lookups() {
        let src = "fn f() { let m: std::collections::HashMap<u32, f64> = make();\n\
                   let _ = m.get(&1);\n\
                   let v: Vec<_> = m.keys().collect(); }\n";
        let hits = run("core", src);
        assert_eq!(hits.len(), 1, "lookup is fine, keys() is not: {hits:?}");
        assert_eq!((hits[0].rule, hits[0].line), ("D001", 3));
    }

    #[test]
    fn d003_upgrades_float_accumulation_everywhere() {
        let src = "fn f() { let m = HashMap::new();\n\
                   let s: f64 = m.values().map(|v| v * 2.0).sum::<f64>(); }\n";
        let hits = run("datagen", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "D003");
        let hits = run("core", src);
        assert_eq!(hits.len(), 1, "D003 replaces D001, not joins it: {hits:?}");
        assert_eq!(hits[0].rule, "D003");
    }

    #[test]
    fn d002_flags_clocks_outside_timing_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(run("core", src).len(), 1);
        assert!(run("bench", src).is_empty());
        assert!(check("classify", "crates/classify/src/telemetry.rs", &scan(src)).is_empty());
    }

    #[test]
    fn p001_catches_multiline_chains_in_serving_crates_only() {
        let src = "fn f() { let g = self.current\n.read()\n.unwrap(); }";
        let hits = run("service", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!((hits[0].rule, hits[0].line), ("P001", 3));
        let hits = run("server", src);
        assert_eq!(hits.len(), 1, "the front-end request path is covered too: {hits:?}");
        assert!(run("core", src).is_empty());
    }

    #[test]
    fn p002_requires_reason() {
        assert_eq!(run("harness", "#[ignore]\nfn t() {}").len(), 1);
        assert!(run("harness", "#[ignore = \"rng recalibration\"]\nfn t() {}").is_empty());
    }

    #[test]
    fn c001_flags_direct_growable_cache_fields_only() {
        let src = "pub struct FooCache<K> {\n\
                   pub entries: HashMap<K, u32>,\n\
                   order: std::collections::VecDeque<K>,\n\
                   bounded: BoundedCache<K, u32>,\n\
                   memo: OnceLock<Arc<Vec<u32>>>,\n\
                   capacity: usize,\n}\n\
                   struct PlainMemo { v: Vec<u8> }\n";
        let hits = run("relational", src);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == "C001"));
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 3);
    }
}
