//! The in-source escape hatch: `// cxm-lint: allow(ID, reason = "…")`.
//!
//! A directive must be the start of its comment (leading doc-comment
//! markers and whitespace ignored), may list several rule IDs, and **must**
//! carry a non-empty reason — a bare allow is itself a finding (`A001`), as
//! is an allow that suppresses nothing (`A002`): suppressions are meant to
//! document a justified exception, not to accumulate.
//!
//! Placement: a trailing directive covers findings on its own line; a
//! standalone comment line covers the next line that has code.

use crate::report::Finding;
use crate::rules::rule_ids;
use crate::scan::Scanned;

/// One parsed allow directive.
#[derive(Debug)]
pub struct Allow {
    /// Line the directive comment sits on.
    pub line: u32,
    /// The code line this directive covers.
    pub target_line: Option<u32>,
    /// Rule IDs listed, e.g. `["D001"]`.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// Which of `rules` actually suppressed a finding (same indices).
    pub used: Vec<bool>,
}

/// Extract every directive from a file's comments. Malformed directives
/// (missing reason, unknown rule ID, bad syntax) become findings
/// immediately.
pub fn parse_allows(scanned: &Scanned, path: &str) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for comment in &scanned.comments {
        let text = comment.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix("cxm-lint:") else { continue };
        let bad = |message: String| Finding {
            rule: "A001",
            path: path.to_string(),
            line: comment.line,
            message,
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow") else {
            findings.push(bad(format!("unknown cxm-lint directive: `{text}`")));
            continue;
        };
        let rest = rest.trim();
        let Some(body) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) else {
            findings.push(bad("malformed allow: expected `allow(ID, reason = \"…\")`".into()));
            continue;
        };
        let mut rules = Vec::new();
        let mut reason: Option<String> = None;
        // The reason string may itself contain commas; split on commas only
        // outside quotes.
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(value) = part.strip_prefix("reason") {
                let value = value.trim().strip_prefix('=').map(str::trim);
                match value.and_then(unquote) {
                    Some(r) if !r.trim().is_empty() => reason = Some(r.trim().to_string()),
                    _ => {
                        findings.push(bad("allow reason must be a non-empty quoted string".into()));
                        reason = None;
                        rules.clear();
                        break;
                    }
                }
            } else if rule_ids().contains(&part) {
                rules.push(part.to_string());
            } else {
                findings.push(bad(format!("unknown rule ID in allow: `{part}`")));
                rules.clear();
                break;
            }
        }
        if rules.is_empty() {
            // Either malformed (already reported) or listed no rule at all.
            if findings.last().map(|f| f.line) != Some(comment.line) {
                findings.push(bad("allow lists no rule ID".into()));
            }
            continue;
        }
        let Some(reason) = reason else {
            findings.push(bad(format!(
                "bare allow({}) without a reason — every suppression must say why",
                rules.join(", ")
            )));
            continue;
        };
        let target_line = if scanned.line_has_code(comment.line) {
            Some(comment.line)
        } else {
            scanned.next_code_line(comment.line)
        };
        let used = vec![false; rules.len()];
        allows.push(Allow { line: comment.line, target_line, rules, reason, used });
    }
    (allows, findings)
}

/// After the rules ran: every listed rule that never fired is a stale
/// suppression (`A002`).
pub fn unused_allow_findings(allows: &[Allow], path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for allow in allows {
        for (rule, used) in allow.rules.iter().zip(&allow.used) {
            if !used {
                findings.push(Finding {
                    rule: "A002",
                    path: path.to_string(),
                    line: allow.line,
                    message: format!(
                        "allow({rule}) suppresses nothing on its target line — remove it"
                    ),
                });
            }
        }
    }
    findings
}

fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                parts.push(&s[start..i]);
                start = i + 1;
                escaped = false;
            }
            _ => escaped = false,
        }
    }
    parts.push(&s[start..]);
    parts
}

fn unquote(s: &str) -> Option<String> {
    let s = s.trim();
    s.strip_prefix('"').and_then(|s| s.strip_suffix('"')).map(|s| s.replace("\\\"", "\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn parses_trailing_and_standalone_allows() {
        let src = "let a = 1; // cxm-lint: allow(D001, reason = \"keyed, not ordered\")\n\
                   // cxm-lint: allow(P001, D002, reason = \"test-only; x, y\")\n\
                   let b = 2;\n";
        let scanned = scan(src);
        let (allows, findings) = parse_allows(&scanned, "f.rs");
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].target_line, Some(1));
        assert_eq!(allows[0].rules, vec!["D001"]);
        assert_eq!(allows[1].target_line, Some(3));
        assert_eq!(allows[1].rules, vec!["P001", "D002"]);
        assert_eq!(allows[1].reason, "test-only; x, y");
    }

    #[test]
    fn bare_allow_and_unknown_rule_are_findings() {
        let src = "// cxm-lint: allow(D001)\n// cxm-lint: allow(Z999, reason = \"no\")\n\
                   // cxm-lint: allow(D001, reason = \"\")\nlet a = 1;\n";
        let (allows, findings) = parse_allows(&scan(src), "f.rs");
        assert!(allows.is_empty());
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.rule == "A001"));
        assert!(findings[0].message.contains("without a reason"));
    }

    #[test]
    fn prose_mentions_are_not_directives() {
        let src = "//! The escape hatch is `cxm-lint: allow(D001, reason = \"…\")`.\nlet a = 1;\n";
        let (allows, findings) = parse_allows(&scan(src), "f.rs");
        assert!(allows.is_empty());
        assert!(findings.is_empty());
    }
}
