//! Lexical scanning: turn Rust source into a token stream the rules can
//! pattern-match, with string literals and comments stripped, plus the
//! comment text itself (for `cxm-lint: allow(...)` directives).
//!
//! This is deliberately **not** a parser. The rules this workspace enforces
//! (hash-order iteration, wall-clock reads, lock-guard unwraps, unannotated
//! cache fields) are all recognizable from short token sequences, and a
//! token-level scanner has no dependencies — the build environment has no
//! crates.io access, so `syn` is not an option. The trade-off is documented
//! per rule in `docs/INVARIANTS.md`: matching is per-file and name-based,
//! and the escape hatch exists precisely because a scanner cannot prove
//! intent.

/// One lexical token of the comment- and string-stripped source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or numeric literal text.
    Ident(String),
    /// A single punctuation character (`::` is two `:` tokens).
    Punct(char),
    /// A string literal (content dropped — rules never read string bodies).
    Str,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, text: &str) -> bool {
        matches!(&self.tok, Tok::Ident(t) if t == text)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(t) => Some(t.as_str()),
            _ => None,
        }
    }
}

/// One comment's text (without the `//` / `/*` markers; block comments yield
/// one entry per line) and the line it sits on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The scan of one source file.
#[derive(Debug, Default)]
pub struct Scanned {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Scanned {
    /// True when `line` carries at least one code token (used to decide
    /// whether a standalone allow-comment targets the next code line).
    pub fn line_has_code(&self, line: u32) -> bool {
        // Tokens are in line order; a binary search would work but files are
        // small and this is called a handful of times per file.
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The first line after `line` that carries a code token, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }
}

/// Scan `source`, producing code tokens and comments.
pub fn scan(source: &str) -> Scanned {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let push_comment = |out: &mut Scanned, text: &str, line: u32| {
        out.comments.push(Comment { text: text.to_string(), line });
    };

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment (incl. doc comments).
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                push_comment(&mut out, &bytes[start..j].iter().collect::<String>(), line);
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut text = String::new();
                while j < n && depth > 0 {
                    if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if bytes[j] == '\n' {
                            push_comment(&mut out, &text, line);
                            text.clear();
                            line += 1;
                        } else {
                            text.push(bytes[j]);
                        }
                        j += 1;
                    }
                }
                push_comment(&mut out, &text, line);
                i = j;
            }
            '"' => {
                // Ordinary (escaped) string literal.
                let mut j = i + 1;
                while j < n {
                    match bytes[j] {
                        '\\' => j += 2,
                        '"' => break,
                        '\n' => {
                            line += 1;
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                out.tokens.push(Token { tok: Tok::Str, line });
                i = (j + 1).min(n);
            }
            '\'' => {
                // Char literal vs lifetime. `'\...'` and `'x'` are chars;
                // anything else (`'a`, `'static`) is a lifetime — skip just
                // the quote and let the identifier tokenize normally.
                if i + 1 < n && bytes[i + 1] == '\\' {
                    let mut j = i + 2;
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    out.tokens.push(Token { tok: Tok::Str, line });
                    i = (j + 1).min(n);
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    out.tokens.push(Token { tok: Tok::Str, line });
                    i += 3;
                } else {
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                // Raw / byte string prefixes: r".."  r#".."#  br".."  b"..".
                if j < n
                    && (bytes[j] == '"' || bytes[j] == '#')
                    && matches!(text.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr")
                {
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < n && bytes[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && bytes[k] == '"' {
                        if text.contains('r') || hashes > 0 {
                            // Raw string: ends at `"` followed by `hashes` #s.
                            let mut m = k + 1;
                            'raw: while m < n {
                                if bytes[m] == '\n' {
                                    line += 1;
                                } else if bytes[m] == '"' {
                                    let mut h = 0usize;
                                    while m + 1 + h < n && bytes[m + 1 + h] == '#' && h < hashes {
                                        h += 1;
                                    }
                                    if h == hashes {
                                        m += 1 + hashes;
                                        break 'raw;
                                    }
                                }
                                m += 1;
                            }
                            out.tokens.push(Token { tok: Tok::Str, line });
                            i = m;
                            continue;
                        }
                        // b"..." — ordinary escaping; fall through by leaving
                        // the quote for the next loop iteration.
                        out.tokens.push(Token { tok: Tok::Ident(text), line });
                        i = j;
                        continue;
                    }
                }
                out.tokens.push(Token { tok: Tok::Ident(text), line });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n
                    && (bytes[j].is_alphanumeric()
                        || bytes[j] == '_'
                        || (bytes[j] == '.' && j + 1 < n && bytes[j + 1].is_ascii_digit()))
                {
                    j += 1;
                }
                out.tokens.push(Token { tok: Tok::Ident(bytes[i..j].iter().collect()), line });
                i = j;
            }
            other => {
                out.tokens.push(Token { tok: Tok::Punct(other), line });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &str) -> Vec<String> {
        scan(s).tokens.iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // HashMap in a comment
            let x = "HashMap in a string"; /* and /* nested */ here */
            let y = r#"raw HashMap"#;
            let c = 'h';
            let l: &'static str = "s";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"static".to_string()));
        let s = scan(src);
        assert!(s.comments.iter().any(|c| c.text.contains("HashMap in a comment")));
        assert!(s.comments.iter().any(|c| c.text.contains("nested")));
    }

    #[test]
    fn tokens_carry_lines_and_code_detection_works() {
        let src = "let a = 1;\n// only a comment\nlet b = 2;\n";
        let s = scan(src);
        assert!(s.line_has_code(1));
        assert!(!s.line_has_code(2));
        assert!(s.line_has_code(3));
        assert_eq!(s.next_code_line(2), Some(3));
        let first = &s.tokens[0];
        assert!(first.is_ident("let") && first.line == 1);
    }

    #[test]
    fn char_literals_do_not_swallow_code() {
        let src = "let c = 'x'; let d = '\\n'; let e = vec!['a', 'b'];";
        let s = scan(src);
        let opens = s.tokens.iter().filter(|t| t.is_punct('[')).count();
        let closes = s.tokens.iter().filter(|t| t.is_punct(']')).count();
        assert_eq!(opens, closes);
        assert!(s.tokens.iter().any(|t| t.is_ident("vec")));
    }
}
