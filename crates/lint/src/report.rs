//! Findings, suppressions, and the machine-readable report.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (`D001`, `P001`, … or the directive meta-rules `A001`/`A002`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the triggering token.
    pub line: u32,
    pub message: String,
}

/// One rule violation silenced by an in-source
/// `// cxm-lint: allow(ID, reason = "…")` directive. Suppressions are part
/// of the report: the baseline check diffs their per-rule counts so new
/// escape hatches cannot ship silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub reason: String,
}

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressions: Vec<Suppression>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Violations per rule ID (only rules that fired).
    pub fn finding_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Used suppressions per rule ID — the quantity the committed baseline
    /// (`LINT_BASELINE.json`) pins.
    pub fn suppression_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for s in &self.suppressions {
            *counts.entry(s.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Human-readable diagnostics, one finding per line, `path:line: [ID]`.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} finding(s), {} suppression(s) in use",
            self.files_scanned,
            self.findings.len(),
            self.suppressions.len()
        );
        out
    }

    /// The full machine-readable report. Flat, stable formatting: one
    /// finding/suppression per line, counts one rule per line, so shell
    /// tooling can grep it even without a JSON parser.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}",
                f.rule,
                escape(&f.path),
                f.line,
                escape(&f.message),
                comma
            );
        }
        out.push_str("  ],\n  \"suppressions\": [\n");
        for (i, s) in self.suppressions.iter().enumerate() {
            let comma = if i + 1 < self.suppressions.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}",
                s.rule,
                escape(&s.path),
                s.line,
                escape(&s.reason),
                comma
            );
        }
        out.push_str("  ],\n  \"finding_counts\": {\n");
        write_counts(&mut out, &self.finding_counts());
        out.push_str("  },\n  \"suppression_counts\": {\n");
        write_counts(&mut out, &self.suppression_counts());
        out.push_str("  }\n}\n");
        out
    }

    /// Just the per-rule suppression counts — the baseline file format.
    pub fn baseline_json(&self) -> String {
        let mut out = String::from("{\n");
        write_counts(&mut out, &self.suppression_counts());
        out.push_str("}\n");
        out
    }
}

fn write_counts(out: &mut String, counts: &BTreeMap<&'static str, usize>) {
    let len = counts.len();
    for (i, (rule, count)) in counts.iter().enumerate() {
        let comma = if i + 1 < len { "," } else { "" };
        let _ = writeln!(out, "    \"{rule}\": {count}{comma}");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a flat `{"RULE": count, …}` baseline file (the exact shape
/// [`Report::baseline_json`] writes). Tolerates whitespace; anything else
/// is an error — the file is machine-written.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| "baseline is not a JSON object".to_string())?;
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) =
            part.split_once(':').ok_or_else(|| format!("malformed baseline entry: {part:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("malformed baseline count for {key}: {value:?}"))?;
        counts.insert(key, value);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_round_trips_baseline_counts() {
        let report = Report {
            findings: vec![Finding {
                rule: "D001",
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "iteration over `map`".into(),
            }],
            suppressions: vec![
                Suppression {
                    rule: "C001",
                    path: "a.rs".into(),
                    line: 1,
                    reason: "bounded \"by\" capacity".into(),
                },
                Suppression { rule: "C001", path: "a.rs".into(), line: 2, reason: "r".into() },
            ],
            files_scanned: 2,
        };
        let json = report.to_json();
        assert!(json.contains("\"D001\": 1"));
        assert!(json.contains("\\\"by\\\""));
        let baseline = parse_baseline(&report.baseline_json()).unwrap();
        assert_eq!(baseline.get("C001"), Some(&2));
        assert_eq!(baseline.len(), 1);
    }
}
