//! `cxm-lint` — the workspace invariant checker.
//!
//! Every optimization in this repository stands on two invariants the Rust
//! compiler cannot see (ROADMAP "Invariants"): **determinism** — warm,
//! sharded, interned and indexed paths must stay byte-identical to their
//! serial references — and **warm soundness** — every cache-reuse decision
//! must reduce to fingerprint equality. The equivalence tests catch
//! violations *after* they ship a wrong score; this tool catches the hazard
//! classes at the source level:
//!
//! * `D001` — iteration over `HashMap`/`HashSet` in deterministic-output
//!   crates (keyed lookup is fine; iteration order is not reproducible);
//! * `D002` — `Instant::now`/`SystemTime` outside harness/bench/telemetry;
//! * `D003` — float accumulation fed directly by a hash-collection
//!   iterator (FP addition is not associative);
//! * `P001` — `.unwrap()`/`.expect(…)` on lock guards in `cxm-service` and
//!   `cxm-server`;
//! * `P002` — `#[ignore]` without a reason;
//! * `C001` — growable collection fields in `*Cache*` types without a
//!   bound annotation.
//!
//! The escape hatch is an allow directive at the start of a comment —
//! trailing on the offending line or standalone on the line above:
//!
//! ```text
//! let v: Vec<_> = m.values().collect(); // cxm-lint: allow(D001, reason = "sorted below")
//! ```
//!
//! A bare allow without a reason is itself an error (`A001`), and an allow
//! that suppresses nothing is too (`A002`), so suppressions stay few,
//! current, and justified. The committed `LINT_BASELINE.json` pins per-rule
//! suppression counts; `cxm-lint --check-baseline` fails when a change adds
//! one silently.
//!
//! The implementation is a hand-rolled token-level scanner (see
//! [`scan`]) — no `syn`, no crates.io. `docs/INVARIANTS.md` catalogues each
//! rule, the invariant it protects, worked examples, and the scanner's
//! known limits.

pub mod directives;
pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use report::{parse_baseline, Finding, Report, Suppression};
pub use rules::RULES;

/// Lint one file's source text. `crate_name` is the workspace member
/// directory under `crates/` (or `"tests"`); `rel_path` appears in
/// diagnostics and selects telemetry-module exemptions.
pub fn lint_source(
    crate_name: &str,
    rel_path: &str,
    source: &str,
) -> (Vec<Finding>, Vec<Suppression>) {
    let scanned = scan::scan(source);
    let (mut allows, mut findings) = directives::parse_allows(&scanned, rel_path);
    let raw = rules::check(crate_name, rel_path, &scanned);
    let mut suppressions = Vec::new();
    'raw: for r in raw {
        for allow in allows.iter_mut() {
            if allow.target_line == Some(r.line) {
                if let Some(idx) = allow.rules.iter().position(|id| id == r.rule) {
                    allow.used[idx] = true;
                    suppressions.push(Suppression {
                        rule: r.rule,
                        path: rel_path.to_string(),
                        line: r.line,
                        reason: allow.reason.clone(),
                    });
                    continue 'raw;
                }
            }
        }
        findings.push(Finding {
            rule: r.rule,
            path: rel_path.to_string(),
            line: r.line,
            message: r.message,
        });
    }
    findings.extend(directives::unused_allow_findings(&allows, rel_path));
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (findings, suppressions)
}

/// Lint the whole workspace rooted at `root`: every `crates/*/src/**/*.rs`
/// plus the integration-test crate `tests/`. Walk order (and therefore
/// report order) is path-sorted and deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory — not a workspace root", root.display()),
        ));
    }
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
        collect_rs(&dir.join("src"), &mut files, &name)?;
    }
    collect_rs(&root.join("tests"), &mut files, "tests")?;

    let mut report = Report::default();
    for (crate_name, path) in &files {
        let source = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let (findings, suppressions) = lint_source(crate_name, &rel, &source);
        report.findings.extend(findings);
        report.suppressions.extend(suppressions);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn collect_rs(dir: &Path, files: &mut Vec<(String, PathBuf)>, crate_name: &str) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, files, crate_name)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push((crate_name.to_string(), path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_suppress_and_unused_allows_report() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   // cxm-lint: allow(D001, reason = \"order-independent count\")\n\
                   fn f(s: S) { let n = s.m.values().count(); }\n\
                   // cxm-lint: allow(P002, reason = \"stale\")\n\
                   fn g() {}\n";
        let (findings, suppressions) = lint_source("core", "crates/core/src/x.rs", src);
        assert_eq!(suppressions.len(), 1, "{suppressions:?}");
        assert_eq!(suppressions[0].rule, "D001");
        assert_eq!(suppressions[0].reason, "order-independent count");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "A002");
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: S) { for x in s.m {} } // cxm-lint: allow(D001, reason = \"sink is a set\")\n";
        let (findings, suppressions) = lint_source("core", "x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressions.len(), 1);
    }
}
