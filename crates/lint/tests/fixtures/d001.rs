//! D001 fixture: hash-order iteration in a deterministic-output crate.
//! Linted as crate `core`; never compiled (cargo ignores tests/ subdirs).
use std::collections::HashMap;

fn order_leaks(scores: &HashMap<String, f64>) -> Vec<String> {
    let mut out = Vec::new();
    for key in scores {
        out.push(key.0.clone());
    }
    out
}

fn key_list(scores: &HashMap<String, f64>) -> Vec<String> {
    scores.keys().cloned().collect()
}

fn keyed_lookup_is_fine(scores: &HashMap<String, f64>) -> Option<f64> {
    scores.get("isbn").copied()
}

fn suppressed(scores: &HashMap<String, f64>) -> usize {
    // cxm-lint: allow(D001, reason = "feeds a count; any visit order gives the same total")
    scores.values().count()
}

fn bare_allow_is_rejected(scores: &HashMap<String, f64>) -> usize {
    // cxm-lint: allow(D001)
    scores.values().count()
}
