//! Directive meta-rule fixture: unknown IDs and unused allows.
//! Linted as crate `core`; never compiled (cargo ignores tests/ subdirs).

// cxm-lint: allow(D999, reason = "no such rule id")
fn unknown_rule_id() {}

// cxm-lint: allow(D001, reason = "nothing on the next line violates D001")
fn unused_allow() {}

fn clean() -> u32 {
    41 + 1
}
