//! D003 fixture: float accumulation fed by a hash-collection iterator.
//! Linted as crate `datagen` (NOT a deterministic-output crate) to pin that
//! D003 fires everywhere; never compiled (cargo ignores tests/ subdirs).
use std::collections::HashMap;

fn order_dependent_sum(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}

fn order_dependent_fold(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().fold(0.0, |acc, w| acc + w)
}

fn suppressed(weights: &HashMap<u32, f64>) -> f64 {
    // cxm-lint: allow(D003, reason = "values are small integers stored as f64; addition is exact")
    weights.values().sum::<f64>()
}

fn bare_allow_is_rejected(weights: &HashMap<u32, f64>) -> f64 {
    // cxm-lint: allow(D003)
    weights.values().sum::<f64>()
}
