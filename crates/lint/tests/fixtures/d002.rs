//! D002 fixture: wall-clock reads outside harness/bench/telemetry.
//! Linted as crate `core`; never compiled (cargo ignores tests/ subdirs).

fn stamps_behaviour() -> std::time::Duration {
    let started = std::time::Instant::now();
    started.elapsed()
}

fn epoch_read() -> u64 {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

fn suppressed() -> std::time::Duration {
    // cxm-lint: allow(D002, reason = "coarse log stamp; never reaches a score or cache key")
    let started = std::time::Instant::now();
    started.elapsed()
}

fn bare_allow_is_rejected() -> std::time::Duration {
    // cxm-lint: allow(D002)
    let started = std::time::Instant::now();
    started.elapsed()
}
