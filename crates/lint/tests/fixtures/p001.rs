//! P001 fixture: panicking lock acquisition in the service crate.
//! Linted as crate `service`; never compiled (cargo ignores tests/ subdirs).
use std::sync::{Mutex, RwLock};

fn panics_on_poison(counter: &Mutex<u32>) -> u32 {
    *counter.lock().unwrap()
}

fn multiline_chain(snapshot: &RwLock<Vec<u32>>) -> usize {
    snapshot
        .read()
        .expect("snapshot lock")
        .len()
}

fn suppressed(counter: &Mutex<u32>) -> u32 {
    // cxm-lint: allow(P001, reason = "demo of the escape hatch; production code uses lock_or_recover")
    *counter.lock().unwrap()
}

fn bare_allow_is_rejected(counter: &Mutex<u32>) -> u32 {
    // cxm-lint: allow(P001)
    *counter.lock().unwrap()
}
