//! C001 fixture: growable collection fields in `*Cache*` types.
//! Linted as crate `relational`; never compiled (cargo ignores tests/ subdirs).
use std::collections::HashMap;

struct ResultCache {
    entries: HashMap<u64, f64>,
    hits: usize,
}

struct AnnotatedCache {
    // cxm-lint: allow(C001, reason = "bounded: insert() evicts oldest past `capacity`")
    entries: HashMap<u64, f64>,
    capacity: usize,
}

struct WrappedIsFine {
    memo: std::sync::OnceLock<std::sync::Arc<Vec<u64>>>,
}

struct BareAllowCache {
    // cxm-lint: allow(C001)
    entries: HashMap<u64, f64>,
}
