//! The live gate, as a test: the workspace this crate ships in must lint
//! clean, and the suppressions in use must match the committed baseline
//! (`LINT_BASELINE.json`) exactly — the same check CI runs via
//! `cxm-lint --check-baseline`, so `cargo test` catches drift locally.

use std::collections::BTreeMap;
use std::path::Path;

#[test]
fn live_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let report = cxm_lint::lint_workspace(root).expect("lint the live workspace");
    assert!(report.files_scanned > 50, "walked the real tree, not a stub");
    assert!(report.is_clean(), "live workspace has findings:\n{}", report.human());

    let baseline_path = root.join("LINT_BASELINE.json");
    let text = std::fs::read_to_string(&baseline_path).expect("committed LINT_BASELINE.json");
    let baseline = cxm_lint::parse_baseline(&text).expect("parse baseline");
    let live: BTreeMap<String, usize> =
        report.suppression_counts().into_iter().map(|(rule, n)| (rule.to_string(), n)).collect();
    assert_eq!(
        live, baseline,
        "suppression counts drifted from LINT_BASELINE.json — regenerate with \
         `cargo run -p cxm-lint -- --write-baseline LINT_BASELINE.json` after review"
    );
    // Every suppression in the live tree carries a non-empty reason by
    // construction (bare allows are A001 findings); spot-check the invariant.
    for s in &report.suppressions {
        assert!(!s.reason.trim().is_empty(), "{s:?}");
    }
}
