//! Fixture coverage: every rule ID has a positive hit, an
//! allow-with-reason suppression, and a bare-allow rejection, exercised on
//! real files under `tests/fixtures/` (cargo does not compile tests/
//! subdirectories, and `lint_workspace` only walks `crates/*/src`, so the
//! deliberately-violating fixtures never reach a build or the live gate).

use cxm_lint::{lint_source, Finding, Suppression};

/// Run one fixture as if it lived in `crate_name`.
fn run(crate_name: &str, name: &str, source: &str) -> (Vec<Finding>, Vec<Suppression>) {
    lint_source(crate_name, &format!("crates/lint/tests/fixtures/{name}"), source)
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn d001_hash_iteration() {
    let (findings, suppressions) = run("core", "d001.rs", include_str!("fixtures/d001.rs"));
    // `for … in scores`, `scores.keys()`, and the bare-allow site still fire;
    // the keyed `.get` lookup does not.
    assert_eq!(count(&findings, "D001"), 3, "{findings:#?}");
    assert_eq!(count(&findings, "A001"), 1, "bare allow is rejected");
    assert_eq!(findings.len(), 4);
    assert_eq!(suppressions.len(), 1);
    assert_eq!(suppressions[0].rule, "D001");
    assert!(suppressions[0].reason.contains("count"));
}

#[test]
fn d001_is_scoped_to_deterministic_crates() {
    let (findings, _) = run("harness", "d001.rs", include_str!("fixtures/d001.rs"));
    // The same source in a timing crate keeps only the directive findings:
    // A001 for the bare allow, A002 for the now-unused reasoned allow.
    assert_eq!(count(&findings, "D001"), 0, "{findings:#?}");
    assert_eq!(count(&findings, "A001"), 1);
    assert_eq!(count(&findings, "A002"), 1);
}

#[test]
fn d002_wall_clock() {
    let (findings, suppressions) = run("core", "d002.rs", include_str!("fixtures/d002.rs"));
    assert_eq!(count(&findings, "D002"), 3, "{findings:#?}");
    assert_eq!(count(&findings, "A001"), 1);
    assert_eq!(findings.len(), 4);
    assert_eq!(suppressions.len(), 1);
    assert_eq!(suppressions[0].rule, "D002");
}

#[test]
fn d002_exempts_timing_crates_and_telemetry_modules() {
    let (findings, _) = run("bench", "d002.rs", include_str!("fixtures/d002.rs"));
    assert_eq!(count(&findings, "D002"), 0, "{findings:#?}");
    let (findings, _) =
        lint_source("core", "crates/core/src/telemetry.rs", include_str!("fixtures/d002.rs"));
    assert_eq!(count(&findings, "D002"), 0, "{findings:#?}");
}

#[test]
fn d003_float_accumulation() {
    // Linted as `datagen`, which D001 skips: D003 fires in every crate.
    let (findings, suppressions) = run("datagen", "d003.rs", include_str!("fixtures/d003.rs"));
    assert_eq!(count(&findings, "D003"), 3, "{findings:#?}");
    assert_eq!(count(&findings, "D001"), 0, "D003 replaces D001 on the same chain");
    assert_eq!(count(&findings, "A001"), 1);
    assert_eq!(suppressions.len(), 1);
    assert_eq!(suppressions[0].rule, "D003");
}

#[test]
fn p001_lock_unwrap() {
    let (findings, suppressions) = run("service", "p001.rs", include_str!("fixtures/p001.rs"));
    // The single-line unwrap, the rustfmt-split expect chain, and the
    // bare-allow site.
    assert_eq!(count(&findings, "P001"), 3, "{findings:#?}");
    assert_eq!(count(&findings, "A001"), 1);
    assert_eq!(suppressions.len(), 1);
    assert_eq!(suppressions[0].rule, "P001");

    let (findings, _) = run("core", "p001.rs", include_str!("fixtures/p001.rs"));
    assert_eq!(count(&findings, "P001"), 0, "P001 is service-only: {findings:#?}");
}

#[test]
fn p002_ignore_reason() {
    let (findings, suppressions) = run("tests", "p002.rs", include_str!("fixtures/p002.rs"));
    assert_eq!(count(&findings, "P002"), 2, "{findings:#?}");
    assert_eq!(count(&findings, "A001"), 1);
    assert_eq!(suppressions.len(), 1);
    assert_eq!(suppressions[0].rule, "P002");
}

#[test]
fn c001_cache_fields() {
    let (findings, suppressions) = run("relational", "c001.rs", include_str!("fixtures/c001.rs"));
    // ResultCache.entries and the bare-allow site; the OnceLock-wrapped
    // field and the non-Cache struct stay clean.
    assert_eq!(count(&findings, "C001"), 2, "{findings:#?}");
    assert_eq!(count(&findings, "A001"), 1);
    assert_eq!(suppressions.len(), 1);
    assert_eq!(suppressions[0].rule, "C001");
    assert!(suppressions[0].reason.contains("bounded"));
}

#[test]
fn directive_meta_rules() {
    let (findings, suppressions) = run("core", "allow.rs", include_str!("fixtures/allow.rs"));
    assert_eq!(count(&findings, "A001"), 1, "unknown rule ID: {findings:#?}");
    assert_eq!(count(&findings, "A002"), 1, "unused allow: {findings:#?}");
    assert_eq!(findings.len(), 2);
    assert!(suppressions.is_empty());
}

#[test]
fn findings_carry_stable_spans() {
    let (findings, _) = run("core", "d001.rs", include_str!("fixtures/d001.rs"));
    for f in &findings {
        assert!(f.line > 0, "1-based lines: {f:?}");
        assert!(f.path.starts_with("crates/lint/tests/fixtures/"), "{f:?}");
        assert!(!f.message.is_empty());
    }
    // Findings are sorted by (line, rule) for deterministic reports.
    let keys: Vec<_> = findings.iter().map(|f| (f.line, f.rule)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
