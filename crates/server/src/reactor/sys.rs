//! The vendored epoll shim — the reactor's **only** unsafe confinement.
//!
//! `cxm-server` deliberately vendors no async runtime and no `libc` crate;
//! the three raw syscalls the readiness loop needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`) are declared here as `extern "C"` symbols,
//! which resolve against the libc the Rust standard library already links
//! on Linux. Errno is read through `io::Error::last_os_error()`, so no
//! further FFI is required.
//!
//! The workspace denies `unsafe_code`; this file carries the one scoped
//! exception (see `docs/INVARIANTS.md`). The boundary is deliberate: every
//! `unsafe` block in the serving layer lives in this module, behind the
//! safe [`Poller`] API, and the module's unit tests run under the scheduled
//! ThreadSanitizer CI job. Everything above this file — connection state
//! machines, admission, dispatch — is ordinary safe Rust.
//!
//! On non-Linux targets the same [`Poller`] API degrades to a ticking
//! poller with **no unsafe at all**: `wait` sleeps up to 10 ms and then
//! reports every registered descriptor ready for its registered interest.
//! That is a correct level-triggered superset — callers must already treat
//! `WouldBlock` as "not actually ready" — just a busy one, which keeps the
//! crate building everywhere while Linux gets the real readiness loop.
#![allow(unsafe_code)]

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor is readable.
    pub read: bool,
    /// Wake when the descriptor is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { read: true, write: false };
    /// No interest — stay registered, report nothing (the parked state of a
    /// connection whose request is at the workers).
    pub const NONE: Interest = Interest { read: false, write: false };
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `u64` token the descriptor was registered with.
    pub token: u64,
    /// Readable (or listener has a pending accept).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup — the owner should close.
    pub closed: bool,
}

/// Raw file descriptor alias, so the non-Linux fallback compiles without
/// `std::os::fd`.
#[cfg(unix)]
pub type Fd = std::os::fd::RawFd;
#[cfg(not(unix))]
pub type Fd = u64;

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Fd, Interest};
    use std::io;

    // Constants from <sys/epoll.h>; stable kernel ABI.
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x8_0000;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64; other
    /// architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // These symbols come from the libc std already links — declarations
    // only, no new dependency.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.read {
            bits |= EPOLLIN;
        }
        if interest.write {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// The Linux poller: one epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes a flag word and returns a new fd
            // or -1; no pointers cross the boundary.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: Fd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = match event.as_mut() {
                Some(e) => e as *mut EpollEvent,
                None => std::ptr::null_mut(),
            };
            // SAFETY: `ptr` is null (allowed for EPOLL_CTL_DEL since Linux
            // 2.6.9) or points at a live stack-owned EpollEvent that the
            // kernel only reads during the call.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent { events: interest_bits(interest), data: token }),
            )
        }

        pub fn modify(&self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent { events: interest_bits(interest), data: token }),
            )
        }

        pub fn delete(&self, fd: Fd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
            loop {
                // SAFETY: `raw` is a live, writable buffer of `raw.len()`
                // events; the kernel fills at most that many.
                let n = unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    // A signal landing mid-wait is not an error; retry.
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for ev in raw.iter().take(n as usize) {
                    // Copy the fields out — references into a packed struct
                    // are not allowed.
                    let bits = ev.events;
                    let token = ev.data;
                    events.push(Event {
                        token,
                        readable: bits & EPOLLIN != 0,
                        writable: bits & EPOLLOUT != 0,
                        closed: bits & (EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is the epoll fd this struct owns; closing it
            // once at drop cannot double-close.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Fd, Interest};
    use std::collections::BTreeMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Degraded fallback: a registry that reports everything ready on a
    /// 10 ms tick. Level-triggered-correct (callers handle `WouldBlock`),
    /// just busier than real readiness.
    #[derive(Debug)]
    pub struct Poller {
        fds: Mutex<BTreeMap<Fd, (u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { fds: Mutex::new(BTreeMap::new()) })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<Fd, (u64, Interest)>> {
            self.fds.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        pub fn add(&self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
            self.lock().insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
            self.lock().insert(fd, (token, interest));
            Ok(())
        }

        pub fn delete(&self, fd: Fd) -> io::Result<()> {
            self.lock().remove(&fd);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let tick = if timeout_ms < 0 { 10 } else { timeout_ms.min(10) as u64 };
            std::thread::sleep(Duration::from_millis(tick));
            for (_, (token, interest)) in self.lock().iter() {
                if interest.read || interest.write {
                    events.push(Event {
                        token: *token,
                        readable: interest.read,
                        writable: interest.write,
                        closed: false,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readiness_follows_data_and_interest() {
        let poller = Poller::new().expect("poller");
        let (mut tx, mut rx) = pair();
        poller.add(rx.as_raw_fd(), 42, Interest::READ).expect("add");

        // Nothing written yet: a zero-timeout wait reports nothing (on the
        // fallback poller everything registered reports ready, so only
        // assert emptiness on Linux, where readiness is real).
        let mut events = Vec::new();
        poller.wait(&mut events, 0).expect("wait");
        #[cfg(target_os = "linux")]
        assert!(events.is_empty(), "{events:?}");

        tx.write_all(b"ping").expect("write");
        poller.wait(&mut events, 1000).expect("wait");
        let ev = events.iter().find(|e| e.token == 42).expect("readable event");
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        let n = rx.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");

        // Write interest on an idle socket reports writable immediately.
        poller.modify(rx.as_raw_fd(), 42, Interest { read: true, write: true }).expect("modify");
        poller.wait(&mut events, 1000).expect("wait");
        assert!(events.iter().any(|e| e.token == 42 && e.writable), "{events:?}");

        // Parked interest reports nothing even with data pending.
        tx.write_all(b"more").expect("write");
        poller.modify(rx.as_raw_fd(), 42, Interest::NONE).expect("modify");
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.iter().all(|e| e.token != 42), "{events:?}");

        poller.delete(rx.as_raw_fd()).expect("delete");
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.iter().all(|e| e.token != 42), "deleted fds stay silent");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn hangup_is_reported_as_closed() {
        let poller = Poller::new().expect("poller");
        let (tx, rx) = pair();
        poller.add(rx.as_raw_fd(), 7, Interest::READ).expect("add");
        drop(tx);
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        let ev = events.iter().find(|e| e.token == 7).expect("event after peer close");
        // A closed peer is readable (EOF) and flagged hung-up.
        assert!(ev.closed || ev.readable, "{ev:?}");
    }

    #[test]
    fn tokens_round_trip_the_full_u64_width() {
        let poller = Poller::new().expect("poller");
        let (mut tx, rx) = pair();
        let token = (u64::from(u32::MAX) << 32) | 12345;
        poller.add(rx.as_raw_fd(), token, Interest::READ).expect("add");
        tx.write_all(b"x").expect("write");
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        assert!(events.iter().any(|e| e.token == token), "{events:?}");
    }
}
