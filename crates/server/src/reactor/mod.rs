//! The readiness-driven connection reactor.
//!
//! One thread owns the listener and **every** connection: non-blocking
//! sockets registered with the [`sys::Poller`], a per-connection state
//! machine assembling frames through [`FrameDecoder`] and draining a write
//! buffer under backpressure. Resident threads are `workers + 1` — this
//! thread — independent of connection count, which is the whole point:
//! ten thousand mostly-idle tenant connections cost file descriptors and
//! buffers, not stacks.
//!
//! Division of labor with the worker pool:
//!
//! * **cheap, ordering-sensitive work runs here** — frame assembly, request
//!   parsing, control ops (`register`/`stats`/`shutdown`/…), and *admission*
//!   of submissions. Single-threaded admission is what makes the per-tenant
//!   in-flight cap race-free: the check and the increment happen on one
//!   thread.
//! * **expensive work runs on the workers** — a [`Handler::handle`] that
//!   returns [`Action::Pending`] has handed the request to the pool; the
//!   worker answers later by pushing a [`Completion`] through
//!   [`ReactorShared::complete`], which wakes this thread to stream the
//!   response back out.
//!
//! One request is in flight per connection at a time (the protocol promises
//! strictly ordered replies); while a submission is at the workers the
//! connection's read interest is parked, so a client pipelining requests
//! applies backpressure to itself, never to the reactor. A byte-dribbling
//! (slow-loris) peer costs one parked connection and nothing else — no
//! worker, no thread — and the idle sweep reclaims it: **only complete
//! frames and flushed responses count as progress**, so dribbled partial
//! frames do not keep a connection alive past the idle timeout.
//!
//! Connection governance — the global connection limit, the idle timeout —
//! lives here too, both rejecting/closing explicitly (an error frame where
//! a peer is still listening, a close where it is gone), never hanging.

pub mod sys;

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cxm_service::MutexExt;

use crate::frame::FrameDecoder;
use crate::telemetry::{bump, monotonic_ms, ServerCounters};
use sys::{Event, Interest, Poller};

#[cfg(unix)]
use std::os::fd::AsRawFd;

/// Poller token of the listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poller token of the waker's read end.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Identifies a live connection across the worker round-trip. The slot
/// indexes the reactor's connection table; the generation fences stale
/// completions — a slot reused by a new connection has a new generation, so
/// a response to a connection that died mid-flight is dropped, never
/// delivered to the wrong peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnId {
    slot: u32,
    generation: u32,
}

impl ConnId {
    fn token(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.slot)
    }

    fn from_token(token: u64) -> ConnId {
        ConnId { slot: token as u32, generation: (token >> 32) as u32 }
    }
}

/// What [`Handler::handle`] decided about one complete request frame.
#[derive(Debug)]
pub enum Action {
    /// Answer now with these pre-framed wire bytes.
    Reply(Vec<u8>),
    /// The request went to the worker pool; a [`Completion`] will arrive.
    Pending,
}

/// A worker's finished response, addressed by connection identity.
#[derive(Debug)]
pub struct Completion {
    /// The connection the response belongs to.
    pub conn: ConnId,
    /// Pre-framed wire bytes.
    pub frame: Vec<u8>,
}

/// The server logic the reactor drives. Implemented by the serving layer's
/// shared state; kept as a trait so the reactor's own tests can drive it
/// with a trivial echo handler (which is also what the ThreadSanitizer job
/// runs).
pub trait Handler: Send + Sync + 'static {
    /// Whether new connections are still admitted (false once draining).
    fn accepting(&self) -> bool;
    /// Handle one complete request payload from `conn`.
    fn handle(&self, conn: ConnId, payload: &[u8]) -> Action;
    /// The pre-framed error frame sent (best-effort) to a connection
    /// refused by the global connection limit.
    fn limit_reject_frame(&self) -> Vec<u8>;
}

/// The cross-thread half of the reactor: workers push completions and wake
/// it; the owner signals exit. Wrapped in an `Arc` shared between the
/// reactor thread, the worker pool, and the server handle.
#[derive(Debug)]
pub struct ReactorShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    exit: AtomicBool,
}

impl ReactorShared {
    /// A fresh shared half (creates the waker pipe).
    pub fn new() -> io::Result<ReactorShared> {
        Ok(ReactorShared {
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            exit: AtomicBool::new(false),
        })
    }

    /// Deliver a worker's finished response and wake the reactor.
    pub fn complete(&self, completion: Completion) {
        self.completions.lock_or_recover().push(completion);
        self.waker.wake();
    }

    /// Wake the reactor without a completion (drain notification).
    pub fn wake(&self) {
        self.waker.wake();
    }

    /// Tell the reactor to flush what it can and exit. Call only after the
    /// workers have been joined — completions pushed after the reactor
    /// exits are dropped.
    pub fn signal_exit(&self) {
        self.exit.store(true, Ordering::Release);
        self.waker.wake();
    }
}

/// Self-pipe waker: one byte down a non-blocking socketpair makes the
/// poller's wait return. A full pipe means a wake is already pending, so a
/// `WouldBlock` on write is success.
#[derive(Debug)]
struct Waker {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        #[cfg(unix)]
        {
            let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok(Waker { tx, rx })
        }
        #[cfg(not(unix))]
        {
            // The fallback poller ticks on its own; no pipe needed.
            Ok(Waker {})
        }
    }

    fn wake(&self) {
        #[cfg(unix)]
        {
            let _ = (&self.tx).write(&[1]);
        }
    }

    fn drain(&self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

/// Reactor construction parameters (the serving layer's connection
/// governance knobs).
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Per-frame payload bound, enforced by each connection's decoder.
    pub max_frame_bytes: usize,
    /// Global cap on concurrently open connections; one over the cap is
    /// answered with [`Handler::limit_reject_frame`] and closed.
    pub max_connections: usize,
    /// Close connections that made no progress (no complete frame in, no
    /// response flushed out) for this long. `None` disables the sweep.
    pub idle_timeout_ms: Option<u64>,
}

/// Why a connection was closed (drives which counter the close bumps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// Peer hung up or the transport failed.
    Peer,
    /// Protocol violation (oversized frame header).
    Protocol,
    /// Idle-timeout sweep.
    Idle,
    /// Reactor exit.
    Drain,
}

/// One connection's state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    id: ConnId,
    decoder: FrameDecoder,
    write_buf: Vec<u8>,
    written: usize,
    /// A request is at the workers; reads are parked until its completion.
    in_flight: bool,
    interest: Interest,
    /// [`monotonic_ms`] of the last complete frame or flushed response.
    /// Deliberately **not** updated by partial reads or partial writes, so
    /// a byte-dribbling peer looks idle to the sweep.
    last_progress_ms: u64,
}

impl Conn {
    fn wants(&self) -> Interest {
        Interest { read: !self.in_flight, write: self.written < self.write_buf.len() }
    }
}

/// The reactor: listener + connection table + poller, consumed by
/// [`Reactor::run`] on its own thread.
pub struct Reactor<H: Handler> {
    poller: Poller,
    listener: TcpListener,
    handler: Arc<H>,
    shared: Arc<ReactorShared>,
    counters: Arc<ServerCounters>,
    config: ReactorConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    generation: u32,
}

impl<H: Handler> Reactor<H> {
    /// Build a reactor over an already-bound listener. The listener is
    /// switched to non-blocking and registered; errors here surface before
    /// the serving thread spawns.
    pub fn new(
        listener: TcpListener,
        handler: Arc<H>,
        shared: Arc<ReactorShared>,
        counters: Arc<ServerCounters>,
        config: ReactorConfig,
    ) -> io::Result<Reactor<H>> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        #[cfg(unix)]
        {
            poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
            poller.add(shared.waker.rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
        }
        #[cfg(not(unix))]
        poller.add(TOKEN_LISTENER, TOKEN_LISTENER, Interest::READ)?;
        Ok(Reactor {
            poller,
            listener,
            handler,
            shared,
            counters,
            config,
            conns: Vec::new(),
            free: Vec::new(),
            open: 0,
            generation: 0,
        })
    }

    /// The event loop. Returns after [`ReactorShared::signal_exit`]: final
    /// completions are delivered, pending responses get a bounded blocking
    /// flush, every connection is closed.
    pub fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = match self.config.idle_timeout_ms {
                // Sweep granularity: a fraction of the timeout, floored so
                // tiny timeouts don't busy-spin.
                Some(ms) => (ms / 4).clamp(5, 500) as i32,
                None => -1,
            };
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller cannot be recovered from here; back off so
                // a transient error (EINTR storms aside) cannot spin a core.
                std::thread::sleep(Duration::from_millis(5));
            }
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.shared.waker.drain(),
                    _ => self.conn_ready(ev),
                }
            }
            self.process_completions();
            if let Some(timeout_ms) = self.config.idle_timeout_ms {
                self.sweep_idle(timeout_ms);
            }
            if self.shared.exit.load(Ordering::Acquire) {
                self.shutdown_flush();
                return;
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if !self.handler.accepting() {
                        // Draining: late connections are closed unserved,
                        // exactly like the threaded accept loop before.
                        drop(stream);
                        continue;
                    }
                    if self.open >= self.config.max_connections {
                        self.reject_over_limit(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.install(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failure (EMFILE, aborted handshake):
                    // yield briefly, let the next readiness event retry.
                    std::thread::sleep(Duration::from_millis(1));
                    return;
                }
            }
        }
    }

    /// Explicit refusal at the connection limit: best-effort error frame
    /// (a tiny frame fits the socket send buffer, so a single non-blocking
    /// write delivers it to any live peer), then close. Never a hang.
    fn reject_over_limit(&mut self, stream: TcpStream) {
        bump(&self.counters.connection_limit_rejects);
        let frame = self.handler.limit_reject_frame();
        if stream.set_nonblocking(true).is_ok() {
            let _ = (&stream).write(&frame);
        }
    }

    fn install(&mut self, stream: TcpStream) {
        self.generation = self.generation.wrapping_add(1);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let id = ConnId { slot: slot as u32, generation: self.generation };
        #[cfg(unix)]
        let registered = self.poller.add(stream.as_raw_fd(), id.token(), Interest::READ);
        #[cfg(not(unix))]
        let registered = self.poller.add(id.token(), id.token(), Interest::READ);
        if registered.is_err() {
            self.free.push(slot);
            return;
        }
        self.counters.connection_opened();
        self.open += 1;
        self.conns[slot] = Some(Conn {
            stream,
            id,
            decoder: FrameDecoder::new(self.config.max_frame_bytes),
            write_buf: Vec::new(),
            written: 0,
            in_flight: false,
            interest: Interest::READ,
            last_progress_ms: monotonic_ms(),
        });
    }

    fn conn_ready(&mut self, ev: Event) {
        let id = ConnId::from_token(ev.token);
        let slot = id.slot as usize;
        match self.conns.get(slot) {
            Some(Some(conn)) if conn.id == id => {}
            // Stale event for a closed or reused slot.
            _ => return,
        }
        if ev.closed {
            self.close_conn(slot, CloseReason::Peer);
            return;
        }
        if ev.writable && !self.flush(slot) {
            return;
        }
        if ev.readable {
            self.read_ready(slot);
        }
    }

    /// Read until `WouldBlock` (or a park/close), feeding the decoder and
    /// dispatching complete frames.
    fn read_ready(&mut self, slot: usize) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let outcome = {
                let Some(conn) = self.conns[slot].as_mut() else { return };
                if conn.in_flight {
                    // Parked: the pending request's completion will unpark.
                    break;
                }
                (&conn.stream).read(&mut buf)
            };
            match outcome {
                Ok(0) => {
                    self.close_conn(slot, CloseReason::Peer);
                    return;
                }
                Ok(n) => {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.decoder.extend(&buf[..n]);
                    }
                    if !self.drain_frames(slot) {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot, CloseReason::Peer);
                    return;
                }
            }
        }
        self.update_interest(slot);
    }

    /// Dispatch every complete buffered frame until the decoder runs dry or
    /// a request goes in flight. Returns false when the connection closed.
    fn drain_frames(&mut self, slot: usize) -> bool {
        let handler = Arc::clone(&self.handler);
        loop {
            let (id, payload) = {
                let Some(conn) = self.conns[slot].as_mut() else { return false };
                if conn.in_flight {
                    return true;
                }
                match conn.decoder.next_frame() {
                    Ok(Some(payload)) => {
                        conn.last_progress_ms = monotonic_ms();
                        (conn.id, payload)
                    }
                    Ok(None) => return true,
                    Err(_) => {
                        // Oversized header: the stream position is inside a
                        // frame we refuse to buffer — close, like the
                        // blocking server did.
                        self.close_conn(slot, CloseReason::Protocol);
                        return false;
                    }
                }
            };
            match handler.handle(id, &payload) {
                Action::Reply(frame) => {
                    if !self.queue_write(slot, &frame) {
                        return false;
                    }
                }
                Action::Pending => {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.in_flight = true;
                    }
                    self.update_interest(slot);
                }
            }
        }
    }

    /// Append response bytes and flush what the socket will take now.
    /// Returns false when the connection closed.
    fn queue_write(&mut self, slot: usize, frame: &[u8]) -> bool {
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.write_buf.extend_from_slice(frame);
        }
        self.flush(slot)
    }

    /// Write until the buffer empties or the socket blocks. A fully
    /// flushed response counts as progress. Returns false when closed.
    fn flush(&mut self, slot: usize) -> bool {
        loop {
            let outcome = {
                let Some(conn) = self.conns[slot].as_mut() else { return false };
                if conn.written == conn.write_buf.len() {
                    if !conn.write_buf.is_empty() {
                        conn.write_buf.clear();
                        conn.written = 0;
                        conn.last_progress_ms = monotonic_ms();
                    }
                    break;
                }
                let range = conn.written..;
                let buf = &conn.write_buf[range];
                (&conn.stream).write(buf)
            };
            match outcome {
                Ok(0) => {
                    self.close_conn(slot, CloseReason::Peer);
                    return false;
                }
                Ok(n) => {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.written += n;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot, CloseReason::Peer);
                    return false;
                }
            }
        }
        self.update_interest(slot);
        true
    }

    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else { return };
        let wants = conn.wants();
        if wants == conn.interest {
            return;
        }
        conn.interest = wants;
        #[cfg(unix)]
        let fd = conn.stream.as_raw_fd();
        #[cfg(not(unix))]
        let fd = conn.id.token();
        let token = conn.id.token();
        let _ = self.poller.modify(fd, token, wants);
    }

    /// Deliver worker completions: unpark the connection, stream the
    /// response, then dispatch any requests the client pipelined behind the
    /// one that was in flight.
    fn process_completions(&mut self) {
        let batch = std::mem::take(&mut *self.shared.completions.lock_or_recover());
        for Completion { conn: id, frame } in batch {
            let slot = id.slot as usize;
            match self.conns.get_mut(slot) {
                Some(Some(conn)) if conn.id == id => conn.in_flight = false,
                // The connection died while its request was at the workers;
                // the response has nowhere to go.
                _ => continue,
            }
            if self.queue_write(slot, &frame) {
                self.drain_frames(slot);
                self.update_interest(slot);
            }
        }
    }

    /// Close connections that made no progress for `timeout_ms`. A parked
    /// in-flight connection is waiting on *us*, not on the peer, so it is
    /// exempt; a dribbled partial frame is not progress (see [`Conn`]).
    fn sweep_idle(&mut self, timeout_ms: u64) {
        let now = monotonic_ms();
        let stale: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, conn)| {
                let conn = conn.as_ref()?;
                let idle =
                    !conn.in_flight && now.saturating_sub(conn.last_progress_ms) >= timeout_ms;
                idle.then_some(slot)
            })
            .collect();
        for slot in stale {
            self.close_conn(slot, CloseReason::Idle);
        }
    }

    fn close_conn(&mut self, slot: usize, reason: CloseReason) {
        let Some(conn) = self.conns[slot].take() else { return };
        #[cfg(unix)]
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        #[cfg(not(unix))]
        let _ = self.poller.delete(conn.id.token());
        if reason == CloseReason::Idle {
            bump(&self.counters.idle_timeout_closes);
        }
        self.counters.connection_closed();
        self.open -= 1;
        self.free.push(slot);
        drop(conn);
        let _ = reason;
    }

    /// Exit path: deliver the final completions (the workers are already
    /// joined, so no more can arrive), give each pending response a bounded
    /// blocking flush, and close everything.
    fn shutdown_flush(&mut self) {
        self.process_completions();
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns[slot].as_mut() {
                if conn.written < conn.write_buf.len() {
                    let _ = conn.stream.set_nonblocking(false);
                    let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let pending = conn.write_buf[conn.written..].to_vec();
                    let _ = conn.stream.write_all(&pending);
                }
            }
            self.close_conn(slot, CloseReason::Drain);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{frame_bytes, read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
    use std::net::TcpListener;

    /// Echoes frames back; payloads starting with `+` go through a fake
    /// worker thread (the [`Action::Pending`] path).
    struct Echo {
        shared: Arc<ReactorShared>,
        accepting: AtomicBool,
    }

    impl Handler for Echo {
        fn accepting(&self) -> bool {
            self.accepting.load(Ordering::Relaxed)
        }

        fn handle(&self, conn: ConnId, payload: &[u8]) -> Action {
            if payload.first() == Some(&b'+') {
                let shared = Arc::clone(&self.shared);
                let response = payload.to_vec();
                std::thread::spawn(move || {
                    shared.complete(Completion { conn, frame: frame_bytes(&response) });
                });
                Action::Pending
            } else {
                Action::Reply(frame_bytes(payload))
            }
        }

        fn limit_reject_frame(&self) -> Vec<u8> {
            frame_bytes(b"limit")
        }
    }

    struct Rig {
        addr: std::net::SocketAddr,
        shared: Arc<ReactorShared>,
        thread: std::thread::JoinHandle<()>,
        counters: Arc<ServerCounters>,
    }

    fn rig(config: ReactorConfig) -> Rig {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shared = Arc::new(ReactorShared::new().expect("shared"));
        let counters = Arc::new(ServerCounters::default());
        let handler =
            Arc::new(Echo { shared: Arc::clone(&shared), accepting: AtomicBool::new(true) });
        let reactor =
            Reactor::new(listener, handler, Arc::clone(&shared), Arc::clone(&counters), config)
                .expect("reactor");
        let thread = std::thread::spawn(move || reactor.run());
        Rig { addr, shared, thread, counters }
    }

    fn default_config() -> ReactorConfig {
        ReactorConfig {
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_connections: 64,
            idle_timeout_ms: None,
        }
    }

    #[test]
    fn echoes_inline_and_pending_replies_in_order() {
        let rig = rig(default_config());
        let mut stream = TcpStream::connect(rig.addr).expect("connect");
        // Mix inline echoes and worker-routed (+) requests; replies must
        // come back strictly in order.
        for round in 0..8 {
            let payload: Vec<u8> = if round % 2 == 0 {
                format!("inline-{round}").into_bytes()
            } else {
                format!("+worker-{round}").into_bytes()
            };
            write_frame(&mut stream, &payload).expect("write");
            let reply = read_frame(&mut stream, 1 << 20).expect("read").expect("frame");
            assert_eq!(reply, payload, "round {round}");
        }
        // Pipelined burst: three requests in one write, three ordered
        // replies (the middle one routed through the fake worker).
        let mut burst = Vec::new();
        burst.extend_from_slice(&frame_bytes(b"a"));
        burst.extend_from_slice(&frame_bytes(b"+b"));
        burst.extend_from_slice(&frame_bytes(b"c"));
        (&stream).write_all(&burst).expect("burst");
        for expected in [b"a".to_vec(), b"+b".to_vec(), b"c".to_vec()] {
            let reply = read_frame(&mut stream, 1 << 20).expect("read").expect("frame");
            assert_eq!(reply, expected);
        }
        drop(stream);
        rig.shared.signal_exit();
        rig.thread.join().expect("reactor thread");
        assert_eq!(rig.counters.open_connections.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn connection_limit_rejects_with_a_frame_and_closes() {
        let rig = rig(ReactorConfig { max_connections: 1, ..default_config() });
        let mut first = TcpStream::connect(rig.addr).expect("connect");
        write_frame(&mut first, b"hold").expect("write");
        assert_eq!(read_frame(&mut first, 1 << 20).expect("read").expect("frame"), b"hold");

        let mut second = TcpStream::connect(rig.addr).expect("connect");
        let reply = read_frame(&mut second, 1 << 20).expect("read").expect("reject frame");
        assert_eq!(reply, b"limit");
        assert!(
            read_frame(&mut second, 1 << 20).expect("eof after reject").is_none(),
            "rejected connection is closed after the frame"
        );
        assert_eq!(rig.counters.connection_limit_rejects.load(Ordering::Relaxed), 1);

        // The held connection still works; closing it frees the slot.
        write_frame(&mut first, b"still").expect("write");
        assert_eq!(read_frame(&mut first, 1 << 20).expect("read").expect("frame"), b"still");
        drop(first);
        let mut third = loop {
            let mut candidate = TcpStream::connect(rig.addr).expect("connect");
            write_frame(&mut candidate, b"again").expect("write");
            match read_frame(&mut candidate, 1 << 20).expect("read") {
                Some(reply) if reply == b"again" => break candidate,
                // The reactor has not yet reaped the dropped connection (or
                // rejected us); retry until the slot frees.
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
        };
        write_frame(&mut third, b"bye").expect("write");
        assert_eq!(read_frame(&mut third, 1 << 20).expect("read").expect("frame"), b"bye");

        rig.shared.signal_exit();
        rig.thread.join().expect("reactor thread");
    }

    #[test]
    fn idle_sweep_reclaims_dribblers_but_not_inflight_requests() {
        let rig = rig(ReactorConfig { idle_timeout_ms: Some(60), ..default_config() });
        // A dribbler: writes a frame header and stops. Partial frames are
        // not progress, so the sweep closes it.
        let mut loris = TcpStream::connect(rig.addr).expect("connect");
        loris.write_all(&[0, 0]).expect("dribble");
        // An active client completing frames stays alive through several
        // sweep periods.
        let mut active = TcpStream::connect(rig.addr).expect("connect");
        for i in 0..6 {
            write_frame(&mut active, format!("tick-{i}").as_bytes()).expect("write");
            let reply = read_frame(&mut active, 1 << 20).expect("read").expect("frame");
            assert_eq!(reply, format!("tick-{i}").as_bytes());
            std::thread::sleep(Duration::from_millis(20));
        }
        // The dribbler is gone: its socket reports EOF (or reset).
        loris.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = [0u8; 8];
        match (&loris).read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("dribbler got {n} unexpected bytes"),
        }
        assert!(
            rig.counters.idle_timeout_closes.load(Ordering::Relaxed) >= 1,
            "the sweep counted the close"
        );
        rig.shared.signal_exit();
        rig.thread.join().expect("reactor thread");
    }
}
