//! The serving front-end: a readiness-driven connection reactor feeding a
//! sized worker pool through the bounded admission queue.
//!
//! Concurrency model (no async runtime — the workspace vendors none):
//!
//! * one **reactor thread** ([`crate::reactor`]) owns the listener and every
//!   connection: non-blocking sockets, per-connection frame state machines,
//!   write backpressure. Cheap control ops (`register`/`replace`/`drop`/
//!   `stats`/`persist`/`shutdown`) are answered inline on this thread;
//!   `submit`s are *admitted* here — through the bounded [`AdmissionQueue`],
//!   never blocking, so a full queue is an instant explicit reject — and
//!   answered later by a worker's completion. Resident threads are
//!   `workers + 1`, independent of connection count.
//! * a sized **worker pool** pops submissions and runs the match pipeline,
//!   checking the request's [`Deadline`] at dequeue, after source decoding,
//!   and after matching. A request that expires before the match phase does
//!   zero classifier work. Finished responses go back to the reactor as
//!   completions and are streamed out by the event loop.
//!
//! Connection governance rides on the same explicit-reject discipline as
//! admission: a **global connection limit** (refused connections get an
//! `overloaded` error frame, best-effort, then a close), a **per-tenant
//! in-flight cap** (checked race-free on the reactor thread), and an
//! optional **idle timeout** (progress-based, so slow-loris dribblers are
//! reclaimed). Never a hang: every refusal is a frame or a close, never
//! silence on an open socket.
//!
//! Shutdown is a graceful drain: the `shutdown` op (or
//! [`ServerHandle::shutdown`]) closes admission, already-queued submissions
//! still complete and get their replies, new ones get `shutting_down`, and
//! [`ServerHandle::join`] waits for the workers, then tells the reactor to
//! flush pending responses and exit.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cxm_core::ContextMatchConfig;
use cxm_service::MutexExt;

use crate::admission::{AdmissionQueue, AdmitError};
use crate::frame::{frame_bytes, DEFAULT_MAX_FRAME_BYTES};
use crate::json::{parse, Json};
use crate::protocol::{
    decode_database, encode_result, encode_server_stats, encode_tenant_stats, encode_update,
    error_frame, ok_frame, ErrorCode, Request,
};
use crate::reactor::{Action, Completion, ConnId, Handler, Reactor, ReactorConfig, ReactorShared};
use crate::telemetry::{
    bump, retry_hint_ms, Deadline, ServerCounters, ServerStats, Stopwatch, TenantStats,
};
use crate::tenant::{QuotaCeilings, Tenant, TenantRegistry};

/// Construction parameters of a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free loopback port.
    pub addr: String,
    /// Worker threads draining the admission queue (min 1).
    pub workers: usize,
    /// Admission-queue bound: submissions beyond this many pending are
    /// rejected with `overloaded` (min 1).
    pub queue_capacity: usize,
    /// Per-frame payload bound.
    pub max_frame_bytes: usize,
    /// Global bound on concurrently open connections; one over the limit is
    /// answered with an `overloaded` error frame and closed.
    pub max_connections: usize,
    /// Per-tenant bound on in-flight (admitted, unanswered) submissions;
    /// one over the cap is rejected `overloaded`. `None` disables the cap.
    pub max_inflight_per_tenant: Option<usize>,
    /// Close connections that complete no frame and receive no response for
    /// this long. Progress-based: dribbled partial frames do not count, so
    /// a slow-loris peer is reclaimed. `None` (default) disables the sweep.
    pub idle_timeout_ms: Option<u64>,
    /// The `ContextMatch` configuration every tenant's service runs.
    pub context: ContextMatchConfig,
    /// Ceilings on per-tenant warm-state quotas.
    pub quota_ceilings: QuotaCeilings,
    /// Deadline budget applied to submissions that carry none
    /// (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Floor on the `retry_after_ms` hint sent with `overloaded` rejects.
    /// The hint itself scales with observed queue depth and service time
    /// (see [`retry_hint_ms`]); before any submission completes it is
    /// exactly this value.
    pub retry_after_ms: u64,
    /// Warm-state snapshot file. When set, [`serve`] restores every tenant
    /// from it on start (validation-first — anything stale or corrupt
    /// degrades to a cold rebuild), [`ServerHandle::join`] snapshots on
    /// drain, and the `persist` op snapshots on demand. `None` disables
    /// persistence entirely.
    pub persist_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_connections: 8192,
            max_inflight_per_tenant: None,
            idle_timeout_ms: None,
            context: ContextMatchConfig::default(),
            quota_ceilings: QuotaCeilings::default(),
            default_deadline_ms: None,
            retry_after_ms: 25,
            persist_path: None,
        }
    }
}

/// One queued submission: everything the worker needs, plus the connection
/// identity its completion is addressed to.
struct SubmitJob {
    conn: ConnId,
    tenant: Arc<Tenant>,
    source: Json,
    deadline: Deadline,
}

/// What dispatch decided about one request.
enum Dispatch {
    /// Answer now.
    Reply(Json),
    /// Admitted to the worker pool; the completion answers.
    Pending,
}

/// State shared by the reactor thread and the workers.
struct Shared {
    registry: TenantRegistry,
    queue: AdmissionQueue<SubmitJob>,
    counters: Arc<ServerCounters>,
    draining: AtomicBool,
    local_addr: SocketAddr,
    workers: usize,
    default_deadline_ms: Option<u64>,
    retry_after_ms: u64,
    max_inflight_per_tenant: Option<usize>,
    persist_path: Option<PathBuf>,
    /// Serializes snapshot writes: concurrent `persist` ops (or a `persist`
    /// racing the drain snapshot) must not interleave their temp files.
    persist_lock: Mutex<()>,
    reactor: Arc<ReactorShared>,
}

impl Shared {
    /// Snapshot every tenant's warm state to the configured path.
    fn persist(&self) -> io::Result<crate::persist::SaveOutcome> {
        let Some(path) = &self.persist_path else {
            return Err(io::Error::new(io::ErrorKind::Unsupported, "no persist path configured"));
        };
        let _guard = self.persist_lock.lock_or_recover();
        crate::persist::save_registry(&self.registry, path)
    }

    fn stats(&self) -> ServerStats {
        let mut stats = self.counters.snapshot();
        stats.workers = self.workers;
        stats.queue_depth = self.queue.depth();
        stats.queue_capacity = self.queue.capacity();
        stats.tenants = self.registry.len();
        stats.draining = self.draining.load(Ordering::Relaxed);
        stats
    }

    /// The current `retry_after_ms` hint: estimated queue drain time over
    /// the observed service-time average, floored at the configured value.
    fn retry_hint(&self) -> u64 {
        retry_hint_ms(
            self.retry_after_ms,
            self.queue.depth(),
            self.counters.service_time.service_ms(),
            self.workers,
        )
    }

    /// Begin the graceful drain. Idempotent: closes admission, wakes the
    /// reactor so it observes the drain promptly, lets queued work finish.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        self.reactor.wake();
    }
}

impl Handler for Shared {
    fn accepting(&self) -> bool {
        !self.draining.load(Ordering::SeqCst)
    }

    fn handle(&self, conn: ConnId, payload: &[u8]) -> Action {
        match self.dispatch(conn, payload) {
            Dispatch::Reply(frame) => Action::Reply(frame_bytes(&frame.to_bytes())),
            Dispatch::Pending => Action::Pending,
        }
    }

    fn limit_reject_frame(&self) -> Vec<u8> {
        let frame =
            error_frame(ErrorCode::Overloaded, "connection limit reached", Some(self.retry_hint()));
        frame_bytes(&frame.to_bytes())
    }
}

/// A running server: the bound address, the reactor thread, and the worker
/// pool. Dropping the handle begins a graceful background drain (queued
/// work still gets its replies); call [`ServerHandle::join`] after a
/// shutdown to wait for it instead.
pub struct ServerHandle {
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Bind and start serving. Returns once the listener is live — requests can
/// be sent the moment this returns.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    // Restore-on-start: tenants come back warm before the first connection
    // is accepted, so a restarted server's first submit already reuses every
    // artifact that survived validation.
    let registry = match &config.persist_path {
        Some(path) => {
            crate::persist::restore_registry(config.context, config.quota_ceilings, path)?
        }
        None => TenantRegistry::new(config.context, config.quota_ceilings),
    };
    let reactor_shared = Arc::new(ReactorShared::new()?);
    let shared = Arc::new(Shared {
        registry,
        queue: AdmissionQueue::with_capacity(config.queue_capacity),
        counters: Arc::new(ServerCounters::default()),
        draining: AtomicBool::new(false),
        local_addr,
        workers: config.workers.max(1),
        default_deadline_ms: config.default_deadline_ms,
        retry_after_ms: config.retry_after_ms,
        max_inflight_per_tenant: config.max_inflight_per_tenant,
        persist_path: config.persist_path,
        persist_lock: Mutex::new(()),
        reactor: Arc::clone(&reactor_shared),
    });

    let workers = (0..shared.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cxm-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let reactor = Reactor::new(
        listener,
        Arc::clone(&shared),
        reactor_shared,
        Arc::clone(&shared.counters),
        ReactorConfig {
            max_frame_bytes: config.max_frame_bytes,
            max_connections: config.max_connections.max(1),
            idle_timeout_ms: config.idle_timeout_ms,
        },
    )?;
    let reactor =
        std::thread::Builder::new().name("cxm-reactor".to_string()).spawn(move || reactor.run())?;

    Ok(ServerHandle { shared, reactor: Some(reactor), workers })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Server-level stats snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Per-tenant stats snapshots, in tenant-name order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.shared.registry.stats(None)
    }

    /// Begin the graceful drain (same effect as a `shutdown` frame).
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Snapshot every tenant's warm state to the configured persist path
    /// (same effect as a `persist` frame). Errors with
    /// [`io::ErrorKind::Unsupported`] when no path is configured.
    pub fn persist(&self) -> io::Result<crate::persist::SaveOutcome> {
        self.shared.persist()
    }

    /// Wait for the drain to complete: the workers exit once admission is
    /// closed and the queue is empty, then the reactor flushes every
    /// pending response and exits. Call [`ServerHandle::shutdown`] (or send
    /// a `shutdown` frame) first — joining a server nobody shut down blocks
    /// until somebody does.
    ///
    /// With a persist path configured, the drained state is snapshotted
    /// after the last worker exits — snapshot-on-drain is what makes a
    /// rolling restart start warm. Best-effort: a failed write leaves the
    /// previous snapshot in place (the write is atomic), never blocks the
    /// shutdown.
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Only after the workers are gone: no more completions can arrive,
        // so the reactor's exit flush delivers every queued reply.
        self.shared.reactor.signal_exit();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        if self.shared.persist_path.is_some() {
            let _ = self.shared.persist();
        }
    }
}

impl Drop for ServerHandle {
    /// Dropping without [`ServerHandle::join`] still drains gracefully: a
    /// detached shutdown thread joins the workers and then retires the
    /// reactor, so admitted submissions get their replies and the listener
    /// port is released — the drop is just not waited on.
    fn drop(&mut self) {
        self.shared.begin_drain();
        if let Some(reactor) = self.reactor.take() {
            let workers: Vec<_> = self.workers.drain(..).collect();
            let shared = Arc::clone(&self.shared);
            let _ = std::thread::Builder::new().name("cxm-shutdown".to_string()).spawn(move || {
                for worker in workers {
                    let _ = worker.join();
                }
                shared.reactor.signal_exit();
                let _ = reactor.join();
            });
        }
    }
}

impl Shared {
    /// Produce the outcome for one request payload, on the reactor thread.
    /// For `shutdown` the drain only closes *admission*, so the reply below
    /// is still delivered — in-flight responses are never cut off.
    fn dispatch(&self, conn: ConnId, payload: &[u8]) -> Dispatch {
        let frame = match parse(payload) {
            Ok(frame) => frame,
            Err(e) => {
                return Dispatch::Reply(error_frame(
                    ErrorCode::BadRequest,
                    &format!("invalid JSON: {e}"),
                    None,
                ))
            }
        };
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(message) => {
                return Dispatch::Reply(error_frame(ErrorCode::BadRequest, &message, None))
            }
        };
        bump(&self.counters.requests);
        let draining = self.draining.load(Ordering::SeqCst);
        let reply = match request {
            Request::Register { tenant, tables, policy, quotas } => {
                if draining {
                    return Dispatch::Reply(error_frame(
                        ErrorCode::ShuttingDown,
                        "server is draining",
                        None,
                    ));
                }
                let tenant = self.registry.register(&tenant, policy, &quotas);
                let mut target = cxm_relational::Database::new("target");
                for table in tables {
                    target.replace_table(table);
                }
                let update = tenant.service.register_target(&target);
                let mut members = vec![("tenant".into(), Json::str(tenant.name.clone()))];
                members.extend(encode_update(&update));
                ok_frame("register", members)
            }
            Request::Replace { tenant, table } => {
                let Some(tenant) = self.registry.get(&tenant) else {
                    return Dispatch::Reply(error_frame(ErrorCode::UnknownTenant, &tenant, None));
                };
                match tenant.service.replace_table(table) {
                    Ok(update) => {
                        let mut members = vec![("tenant".into(), Json::str(tenant.name.clone()))];
                        members.extend(encode_update(&update));
                        ok_frame("replace", members)
                    }
                    Err(e) => error_frame(ErrorCode::UnknownTable, &e.to_string(), None),
                }
            }
            Request::Drop { tenant, table } => {
                let Some(tenant) = self.registry.get(&tenant) else {
                    return Dispatch::Reply(error_frame(ErrorCode::UnknownTenant, &tenant, None));
                };
                match tenant.service.drop_table(&table) {
                    Some(update) => {
                        let mut members = vec![("tenant".into(), Json::str(tenant.name.clone()))];
                        members.extend(encode_update(&update));
                        ok_frame("drop", members)
                    }
                    None => error_frame(ErrorCode::UnknownTable, &table, None),
                }
            }
            Request::Stats { tenant } => {
                let tenants = self.registry.stats(tenant.as_deref());
                if tenant.is_some() && tenants.is_empty() {
                    return Dispatch::Reply(error_frame(
                        ErrorCode::UnknownTenant,
                        "no such tenant",
                        None,
                    ));
                }
                ok_frame(
                    "stats",
                    vec![
                        ("server".into(), encode_server_stats(&self.stats())),
                        (
                            "tenants".into(),
                            Json::Array(tenants.iter().map(encode_tenant_stats).collect()),
                        ),
                    ],
                )
            }
            Request::Persist => match self.persist() {
                Ok(outcome) => ok_frame(
                    "persist",
                    vec![
                        ("tenants".into(), Json::Int(outcome.tenants as i64)),
                        ("bytes".into(), Json::Int(outcome.bytes as i64)),
                    ],
                ),
                Err(e) if e.kind() == io::ErrorKind::Unsupported => {
                    error_frame(ErrorCode::BadRequest, "no persist path configured", None)
                }
                Err(e) => error_frame(ErrorCode::Internal, &format!("persist failed: {e}"), None),
            },
            Request::Shutdown => {
                self.begin_drain();
                ok_frame("shutdown", vec![("draining".into(), Json::Bool(true))])
            }
            Request::Submit { tenant, source, deadline_ms } => {
                return self.submit(conn, &tenant, source, deadline_ms, draining)
            }
        };
        Dispatch::Reply(reply)
    }

    /// Admission, on the reactor thread: per-tenant in-flight cap, then the
    /// bounded queue. Single-threaded admission makes the cap check
    /// race-free — the gauge cannot be concurrently incremented between the
    /// check and [`crate::telemetry::TenantCounters::inflight_admitted`].
    fn submit(
        &self,
        conn: ConnId,
        tenant: &str,
        source: Json,
        deadline_ms: Option<u64>,
        draining: bool,
    ) -> Dispatch {
        let Some(tenant) = self.registry.get(tenant) else {
            return Dispatch::Reply(error_frame(ErrorCode::UnknownTenant, tenant, None));
        };
        bump(&tenant.counters.submits);
        if draining {
            return Dispatch::Reply(error_frame(
                ErrorCode::ShuttingDown,
                "server is draining",
                None,
            ));
        }
        if let Some(cap) = self.max_inflight_per_tenant {
            if tenant.counters.inflight.load(Ordering::Relaxed) >= cap {
                bump(&self.counters.admission_rejects);
                bump(&tenant.counters.admission_rejects);
                bump(&tenant.counters.inflight_rejects);
                return Dispatch::Reply(error_frame(
                    ErrorCode::Overloaded,
                    "tenant in-flight cap reached",
                    Some(self.retry_hint()),
                ));
            }
        }
        // The budget starts at admission, so queueing time counts against
        // it — that is what makes a deadline a *latency* promise, not a
        // compute one.
        let deadline = Deadline::after_ms(deadline_ms.or(self.default_deadline_ms));
        tenant.counters.inflight_admitted();
        let job = SubmitJob { conn, tenant: Arc::clone(&tenant), source, deadline };
        match self.queue.try_push(job) {
            Ok(()) => {
                bump(&self.counters.submits);
                Dispatch::Pending
            }
            Err((job, AdmitError::Full)) => {
                job.tenant.counters.inflight_finished();
                bump(&self.counters.admission_rejects);
                bump(&tenant.counters.admission_rejects);
                Dispatch::Reply(error_frame(
                    ErrorCode::Overloaded,
                    "admission queue is full",
                    Some(self.retry_hint()),
                ))
            }
            Err((job, AdmitError::Closed)) => {
                job.tenant.counters.inflight_finished();
                Dispatch::Reply(error_frame(ErrorCode::ShuttingDown, "server is draining", None))
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let SubmitJob { conn, tenant, source, deadline } = job;
        let watch = Stopwatch::start();
        let frame =
            catch_unwind(AssertUnwindSafe(|| process_submit(shared, &tenant, &source, deadline)))
                .unwrap_or_else(|_| {
                    error_frame(ErrorCode::Internal, "request panicked in the pipeline", None)
                });
        // Every dequeued job feeds the estimator — expired ones drain the
        // queue too, and the retry hint estimates drain time, not compute.
        shared.counters.service_time.record(watch.elapsed());
        tenant.counters.inflight_finished();
        shared.reactor.complete(Completion { conn, frame: frame_bytes(&frame.to_bytes()) });
    }
}

/// The worker-side pipeline: deadline gate → decode → deadline gate →
/// match → deadline gate → encode.
fn process_submit(
    shared: &Arc<Shared>,
    tenant: &Arc<Tenant>,
    source: &Json,
    deadline: Deadline,
) -> Json {
    let expired = |stage: &str| {
        bump(&shared.counters.deadline_expiries);
        bump(&tenant.counters.deadline_expiries);
        error_frame(ErrorCode::DeadlineExceeded, &format!("deadline expired {stage}"), None)
    };
    if deadline.expired() {
        // Checked before any decoding or matching: an expired request does
        // zero classifier work — the acceptance criterion the deadline
        // tests pin.
        return expired("while queued");
    }
    let db = match decode_database(source) {
        Ok(db) => db,
        Err(message) => return error_frame(ErrorCode::BadRequest, &message, None),
    };
    if deadline.expired() {
        return expired("after source decoding");
    }
    let response = match tenant.service.submit(&db) {
        Ok(response) => response,
        Err(e) => return error_frame(ErrorCode::BadRequest, &e.to_string(), None),
    };
    if deadline.expired() {
        return expired("during matching");
    }
    if response.telemetry.result_cache_hit {
        bump(&tenant.counters.result_cache_hits);
    }
    bump(&shared.counters.completed);
    let policy = tenant.policy();
    ok_frame(
        "submit",
        vec![
            ("tenant".into(), Json::str(tenant.name.clone())),
            ("catalog_version".into(), Json::Int(response.telemetry.catalog_version as i64)),
            ("result_cache_hit".into(), Json::Bool(response.telemetry.result_cache_hit)),
            ("result".into(), encode_result(&response.result, &policy)),
        ],
    )
}
