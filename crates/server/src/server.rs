//! The threaded server: accept loop, per-connection handlers, and the
//! worker pool draining the admission queue.
//!
//! Concurrency model (no async runtime — the workspace vendors none):
//!
//! * one **accept thread** turns connections into detached handler threads;
//! * each **handler** owns its connection, reads frames, answers cheap ops
//!   (`register`/`replace`/`drop`/`stats`/`shutdown`) inline, and funnels
//!   `submit`s through the bounded [`AdmissionQueue`] — blocking on the
//!   response channel, never inside the queue, so a full queue is an
//!   instant explicit reject, not a stall;
//! * a sized **worker pool** pops submissions and runs the match pipeline,
//!   checking the request's [`Deadline`] at dequeue, after source decoding,
//!   and after matching. A request that expires before the match phase does
//!   zero classifier work.
//!
//! Shutdown is a graceful drain: the `shutdown` op (or
//! [`ServerHandle::shutdown`]) closes admission, already-queued submissions
//! still complete and get their replies, new ones get `shutting_down`, and
//! [`ServerHandle::join`] returns when the accept thread and every worker
//! have exited.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cxm_core::ContextMatchConfig;
use cxm_service::MutexExt;

use crate::admission::{AdmissionQueue, AdmitError};
use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
use crate::json::{parse, Json};
use crate::protocol::{
    decode_database, encode_result, encode_server_stats, encode_tenant_stats, encode_update,
    error_frame, ok_frame, ErrorCode, Request,
};
use crate::telemetry::{bump, Deadline, ServerCounters, ServerStats, TenantStats};
use crate::tenant::{QuotaCeilings, Tenant, TenantRegistry};

/// Construction parameters of a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free loopback port.
    pub addr: String,
    /// Worker threads draining the admission queue (min 1).
    pub workers: usize,
    /// Admission-queue bound: submissions beyond this many pending are
    /// rejected with `overloaded` (min 1).
    pub queue_capacity: usize,
    /// Per-frame payload bound.
    pub max_frame_bytes: usize,
    /// The `ContextMatch` configuration every tenant's service runs.
    pub context: ContextMatchConfig,
    /// Ceilings on per-tenant warm-state quotas.
    pub quota_ceilings: QuotaCeilings,
    /// Deadline budget applied to submissions that carry none
    /// (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// The `retry_after_ms` hint sent with `overloaded` rejects.
    pub retry_after_ms: u64,
    /// Warm-state snapshot file. When set, [`serve`] restores every tenant
    /// from it on start (validation-first — anything stale or corrupt
    /// degrades to a cold rebuild), [`ServerHandle::join`] snapshots on
    /// drain, and the `persist` op snapshots on demand. `None` disables
    /// persistence entirely.
    pub persist_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            context: ContextMatchConfig::default(),
            quota_ceilings: QuotaCeilings::default(),
            default_deadline_ms: None,
            retry_after_ms: 25,
            persist_path: None,
        }
    }
}

/// One queued submission: everything the worker needs, plus the rendezvous
/// channel its handler blocks on.
struct SubmitJob {
    tenant: Arc<Tenant>,
    source: Json,
    deadline: Deadline,
    reply: SyncSender<Json>,
}

/// State shared by the accept thread, handlers, and workers.
struct Shared {
    registry: TenantRegistry,
    queue: AdmissionQueue<SubmitJob>,
    counters: ServerCounters,
    draining: AtomicBool,
    local_addr: SocketAddr,
    workers: usize,
    max_frame_bytes: usize,
    default_deadline_ms: Option<u64>,
    retry_after_ms: u64,
    persist_path: Option<PathBuf>,
    /// Serializes snapshot writes: concurrent `persist` ops (or a `persist`
    /// racing the drain snapshot) must not interleave their temp files.
    persist_lock: Mutex<()>,
}

impl Shared {
    /// Snapshot every tenant's warm state to the configured path.
    fn persist(&self) -> io::Result<crate::persist::SaveOutcome> {
        let Some(path) = &self.persist_path else {
            return Err(io::Error::new(io::ErrorKind::Unsupported, "no persist path configured"));
        };
        let _guard = self.persist_lock.lock_or_recover();
        crate::persist::save_registry(&self.registry, path)
    }

    fn stats(&self) -> ServerStats {
        let mut stats = self.counters.snapshot();
        stats.workers = self.workers;
        stats.queue_depth = self.queue.depth();
        stats.queue_capacity = self.queue.capacity();
        stats.tenants = self.registry.len();
        stats.draining = self.draining.load(Ordering::Relaxed);
        stats
    }

    /// Begin the graceful drain. Idempotent: closes admission, wakes the
    /// accept thread with a throwaway self-connection, lets queued work
    /// finish.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // The accept thread blocks in `accept()`; a loopback connection is
        // the portable way to wake it so it can observe `draining`.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running server: the bound address, the accept thread, and the worker
/// pool. Dropping the handle begins a drain (without waiting); call
/// [`ServerHandle::join`] after a shutdown to wait for it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Bind and start serving. Returns once the listener is live — requests can
/// be sent the moment this returns.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    // Restore-on-start: tenants come back warm before the first connection
    // is accepted, so a restarted server's first submit already reuses every
    // artifact that survived validation.
    let registry = match &config.persist_path {
        Some(path) => {
            crate::persist::restore_registry(config.context, config.quota_ceilings, path)?
        }
        None => TenantRegistry::new(config.context, config.quota_ceilings),
    };
    let shared = Arc::new(Shared {
        registry,
        queue: AdmissionQueue::with_capacity(config.queue_capacity),
        counters: ServerCounters::default(),
        draining: AtomicBool::new(false),
        local_addr,
        workers: config.workers.max(1),
        max_frame_bytes: config.max_frame_bytes,
        default_deadline_ms: config.default_deadline_ms,
        retry_after_ms: config.retry_after_ms,
        persist_path: config.persist_path,
        persist_lock: Mutex::new(()),
    });

    let workers = (0..shared.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cxm-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cxm-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(ServerHandle { shared, accept: Some(accept), workers })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Server-level stats snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Per-tenant stats snapshots, in tenant-name order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.shared.registry.stats(None)
    }

    /// Begin the graceful drain (same effect as a `shutdown` frame).
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Snapshot every tenant's warm state to the configured persist path
    /// (same effect as a `persist` frame). Errors with
    /// [`io::ErrorKind::Unsupported`] when no path is configured.
    pub fn persist(&self) -> io::Result<crate::persist::SaveOutcome> {
        self.shared.persist()
    }

    /// Wait for the drain to complete: the accept thread and every worker
    /// exit once admission is closed and the queue is empty. Call
    /// [`ServerHandle::shutdown`] (or send a `shutdown` frame) first —
    /// joining a server nobody shut down blocks until somebody does.
    ///
    /// With a persist path configured, the drained state is snapshotted
    /// after the last worker exits — snapshot-on-drain is what makes a
    /// rolling restart start warm. Best-effort: a failed write leaves the
    /// previous snapshot in place (the write is atomic), never blocks the
    /// shutdown.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if self.shared.persist_path.is_some() {
            let _ = self.shared.persist();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_drain();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining.load(Ordering::SeqCst) {
                    // The wake-up self-connection (or a late client) during
                    // drain: close it and stop accepting.
                    drop(stream);
                    return;
                }
                bump(&shared.counters.connections);
                let shared = Arc::clone(shared);
                // Handlers are detached: they exit when their peer closes
                // (or on a write error), and submissions they hold are
                // answered by the drain contract, so join() need not track
                // them.
                let _ = std::thread::Builder::new()
                    .name("cxm-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept error (EMFILE, aborted handshake):
                // yield briefly and keep serving.
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader, shared.max_frame_bytes) {
            Ok(Some(payload)) => payload,
            // Clean EOF or a broken connection: either way the peer is
            // done; there is nobody left to answer.
            Ok(None) | Err(_) => return,
        };
        let response = respond(&payload, shared);
        let sent = write_frame(&mut writer, &response.to_bytes()).and_then(|()| writer.flush());
        if sent.is_err() {
            return;
        }
    }
}

/// Produce the response frame for one request payload. For `shutdown` the
/// drain only closes *admission*, so the caller still delivers this reply —
/// in-flight responses are never cut off.
fn respond(payload: &[u8], shared: &Arc<Shared>) -> Json {
    let frame = match parse(payload) {
        Ok(frame) => frame,
        Err(e) => return error_frame(ErrorCode::BadRequest, &format!("invalid JSON: {e}"), None),
    };
    let request = match Request::from_json(&frame) {
        Ok(request) => request,
        Err(message) => return error_frame(ErrorCode::BadRequest, &message, None),
    };
    bump(&shared.counters.requests);
    let draining = shared.draining.load(Ordering::SeqCst);
    match request {
        Request::Register { tenant, tables, policy, quotas } => {
            if draining {
                return error_frame(ErrorCode::ShuttingDown, "server is draining", None);
            }
            let tenant = shared.registry.register(&tenant, policy, &quotas);
            let mut target = cxm_relational::Database::new("target");
            for table in tables {
                target.replace_table(table);
            }
            let update = tenant.service.register_target(&target);
            let mut members = vec![("tenant".into(), Json::str(tenant.name.clone()))];
            members.extend(encode_update(&update));
            ok_frame("register", members)
        }
        Request::Replace { tenant, table } => {
            let Some(tenant) = shared.registry.get(&tenant) else {
                return error_frame(ErrorCode::UnknownTenant, &tenant, None);
            };
            match tenant.service.replace_table(table) {
                Ok(update) => {
                    let mut members = vec![("tenant".into(), Json::str(tenant.name.clone()))];
                    members.extend(encode_update(&update));
                    ok_frame("replace", members)
                }
                Err(e) => error_frame(ErrorCode::UnknownTable, &e.to_string(), None),
            }
        }
        Request::Drop { tenant, table } => {
            let Some(tenant) = shared.registry.get(&tenant) else {
                return error_frame(ErrorCode::UnknownTenant, &tenant, None);
            };
            match tenant.service.drop_table(&table) {
                Some(update) => {
                    let mut members = vec![("tenant".into(), Json::str(tenant.name.clone()))];
                    members.extend(encode_update(&update));
                    ok_frame("drop", members)
                }
                None => error_frame(ErrorCode::UnknownTable, &table, None),
            }
        }
        Request::Stats { tenant } => {
            let tenants = shared.registry.stats(tenant.as_deref());
            if tenant.is_some() && tenants.is_empty() {
                return error_frame(ErrorCode::UnknownTenant, "no such tenant", None);
            }
            ok_frame(
                "stats",
                vec![
                    ("server".into(), encode_server_stats(&shared.stats())),
                    (
                        "tenants".into(),
                        Json::Array(tenants.iter().map(encode_tenant_stats).collect()),
                    ),
                ],
            )
        }
        Request::Persist => match shared.persist() {
            Ok(outcome) => ok_frame(
                "persist",
                vec![
                    ("tenants".into(), Json::Int(outcome.tenants as i64)),
                    ("bytes".into(), Json::Int(outcome.bytes as i64)),
                ],
            ),
            Err(e) if e.kind() == io::ErrorKind::Unsupported => {
                error_frame(ErrorCode::BadRequest, "no persist path configured", None)
            }
            Err(e) => error_frame(ErrorCode::Internal, &format!("persist failed: {e}"), None),
        },
        Request::Shutdown => {
            shared.begin_drain();
            ok_frame("shutdown", vec![("draining".into(), Json::Bool(true))])
        }
        Request::Submit { tenant, source, deadline_ms } => {
            submit(shared, &tenant, source, deadline_ms, draining)
        }
    }
}

fn submit(
    shared: &Arc<Shared>,
    tenant: &str,
    source: Json,
    deadline_ms: Option<u64>,
    draining: bool,
) -> Json {
    let Some(tenant) = shared.registry.get(tenant) else {
        return error_frame(ErrorCode::UnknownTenant, tenant, None);
    };
    bump(&tenant.counters.submits);
    if draining {
        return error_frame(ErrorCode::ShuttingDown, "server is draining", None);
    }
    // The budget starts at admission, so queueing time counts against it —
    // that is what makes a deadline a *latency* promise, not a compute one.
    let deadline = Deadline::after_ms(deadline_ms.or(shared.default_deadline_ms));
    let (reply, response) = sync_channel(1);
    let job = SubmitJob { tenant: Arc::clone(&tenant), source, deadline, reply };
    match shared.queue.try_push(job) {
        Ok(()) => {
            bump(&shared.counters.submits);
            match response.recv() {
                Ok(frame) => frame,
                Err(_) => error_frame(ErrorCode::Internal, "worker dropped the request", None),
            }
        }
        Err((_job, AdmitError::Full)) => {
            bump(&shared.counters.admission_rejects);
            bump(&tenant.counters.admission_rejects);
            error_frame(
                ErrorCode::Overloaded,
                "admission queue is full",
                Some(shared.retry_after_ms),
            )
        }
        Err((_job, AdmitError::Closed)) => {
            error_frame(ErrorCode::ShuttingDown, "server is draining", None)
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let SubmitJob { tenant, source, deadline, reply } = job;
        let frame =
            catch_unwind(AssertUnwindSafe(|| process_submit(shared, &tenant, &source, deadline)))
                .unwrap_or_else(|_| {
                    error_frame(ErrorCode::Internal, "request panicked in the pipeline", None)
                });
        // A vanished handler (client hung up mid-wait) is not an error.
        let _ = reply.send(frame);
    }
}

/// The worker-side pipeline: deadline gate → decode → deadline gate →
/// match → deadline gate → encode.
fn process_submit(
    shared: &Arc<Shared>,
    tenant: &Arc<Tenant>,
    source: &Json,
    deadline: Deadline,
) -> Json {
    let expired = |stage: &str| {
        bump(&shared.counters.deadline_expiries);
        bump(&tenant.counters.deadline_expiries);
        error_frame(ErrorCode::DeadlineExceeded, &format!("deadline expired {stage}"), None)
    };
    if deadline.expired() {
        // Checked before any decoding or matching: an expired request does
        // zero classifier work — the acceptance criterion the deadline
        // tests pin.
        return expired("while queued");
    }
    let db = match decode_database(source) {
        Ok(db) => db,
        Err(message) => return error_frame(ErrorCode::BadRequest, &message, None),
    };
    if deadline.expired() {
        return expired("after source decoding");
    }
    let response = match tenant.service.submit(&db) {
        Ok(response) => response,
        Err(e) => return error_frame(ErrorCode::BadRequest, &e.to_string(), None),
    };
    if deadline.expired() {
        return expired("during matching");
    }
    if response.telemetry.result_cache_hit {
        bump(&tenant.counters.result_cache_hits);
    }
    bump(&shared.counters.completed);
    let policy = tenant.policy();
    ok_frame(
        "submit",
        vec![
            ("tenant".into(), Json::str(tenant.name.clone())),
            ("catalog_version".into(), Json::Int(response.telemetry.catalog_version as i64)),
            ("result_cache_hit".into(), Json::Bool(response.telemetry.result_cache_hit)),
            ("result".into(), encode_result(&response.result, &policy)),
        ],
    )
}
