//! Protocol types: request decoding, response encoding, and the per-tenant
//! serving policy.
//!
//! One frame carries one JSON object. Requests name their operation in an
//! `"op"` member; responses always carry `"ok"` — `true` with op-specific
//! members, or `false` with an `"error"` object (`code`, `message`, and for
//! `overloaded` a `retry_after_ms` hint, the `Retry-After` of this
//! protocol). The full frame grammar is documented in `docs/SERVING.md`.
//!
//! Encoding is deliberately canonical (see [`crate::json`]): the match-list
//! encoder [`encode_result`] is `pub` precisely so tests can render a serial
//! in-process [`cxm_service::MatchService`] reference through the *same*
//! code path and compare wire bytes for equality.

use crate::json::Json;
use cxm_core::ContextMatchResult;
use cxm_matching::Match;
use cxm_relational::{Attribute, DataType, Database, Table, TableSchema, Tuple, Value};
use cxm_service::CatalogUpdate;

use crate::telemetry::{ServerStats, TenantStats};

/// Machine-readable error codes of the `"error"` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request; retry after `retry_after_ms`.
    Overloaded,
    /// The request's deadline budget expired before a result was produced.
    DeadlineExceeded,
    /// The named tenant is not registered.
    UnknownTenant,
    /// The named table is not registered for the tenant.
    UnknownTable,
    /// The frame was not a well-formed request (JSON, schema, or type error).
    BadRequest,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request panicked or failed unexpectedly inside the pipeline.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::UnknownTenant => "unknown_tenant",
            ErrorCode::UnknownTable => "unknown_table",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// Per-tenant serving policy, applied **post-match** to the `selected` list
/// of a response. The underlying match runs (and its result is cached)
/// unfiltered, so every tenant policy — and every policy change — leaves
/// the byte-identical result-cache entries untouched; the policy is a pure
/// projection at encode time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantPolicy {
    /// Drop selected matches scoring below this threshold.
    pub score_threshold: Option<f64>,
    /// Keep at most this many selected matches (after thresholding).
    pub top_k: Option<usize>,
}

impl TenantPolicy {
    /// The policy's view of a selected-match list: threshold, then truncate.
    /// Order is preserved, so the projection is deterministic.
    pub fn apply<'m>(&self, matches: &'m [Match]) -> Vec<&'m Match> {
        let mut kept: Vec<&Match> =
            matches.iter().filter(|m| self.score_threshold.is_none_or(|t| m.score >= t)).collect();
        if let Some(k) = self.top_k {
            kept.truncate(k);
        }
        kept
    }
}

/// Per-tenant warm-state quota requests, clamped by the server's ceilings
/// when the tenant is created (see `crate::tenant::QuotaCeilings`). `None`
/// takes the server's ceiling itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Bound on warm source column batches.
    pub source_cache_capacity: Option<usize>,
    /// Bound on selection-cache table buckets.
    pub selection_cache_tables: Option<usize>,
    /// Bound on cached view-restricted profiles.
    pub restricted_profile_entries: Option<usize>,
    /// Bound on memoized whole-match results.
    pub match_result_entries: Option<usize>,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register (or wholly replace) a tenant's target database, creating
    /// the tenant on first use. Policy knobs may ride along.
    Register {
        /// Tenant name.
        tenant: String,
        /// Full target table set.
        tables: Vec<Table>,
        /// Post-match policy knobs.
        policy: TenantPolicy,
        /// Warm-state quota requests (fixed at tenant creation).
        quotas: TenantQuotas,
    },
    /// Replace one registered target table (error if unknown).
    Replace {
        /// Tenant name.
        tenant: String,
        /// The replacement instance.
        table: Table,
    },
    /// Drop one registered target table.
    Drop {
        /// Tenant name.
        tenant: String,
        /// Table name.
        table: String,
    },
    /// Match a source database against the tenant's catalog. The source
    /// stays *undecoded* JSON here: decoding is a worker-side pipeline
    /// phase, so an expired deadline skips it entirely.
    Submit {
        /// Tenant name.
        tenant: String,
        /// The source database, still encoded.
        source: Json,
        /// Deadline budget in milliseconds (`None` = server default).
        deadline_ms: Option<u64>,
    },
    /// Server + tenant telemetry snapshot.
    Stats {
        /// Restrict to one tenant.
        tenant: Option<String>,
    },
    /// Snapshot every tenant's warm state to the server's persist path.
    Persist,
    /// Graceful drain: stop admitting, finish queued work, exit workers.
    Shutdown,
}

impl Request {
    /// Decode a parsed frame. Errors are human-readable and map to
    /// [`ErrorCode::BadRequest`].
    pub fn from_json(frame: &Json) -> Result<Request, String> {
        let op = frame
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string member `op`".to_string())?;
        match op {
            "register" => Ok(Request::Register {
                tenant: required_str(frame, "tenant")?,
                tables: decode_tables(frame.get("tables"))?,
                policy: decode_policy(frame.get("policy"))?,
                quotas: decode_quotas(frame.get("policy"))?,
            }),
            "replace" => {
                let table = frame
                    .get("table")
                    .ok_or_else(|| "missing member `table`".to_string())
                    .and_then(decode_table)?;
                Ok(Request::Replace { tenant: required_str(frame, "tenant")?, table })
            }
            "drop" => Ok(Request::Drop {
                tenant: required_str(frame, "tenant")?,
                table: required_str(frame, "table")?,
            }),
            "submit" => {
                let source = frame
                    .get("source")
                    .cloned()
                    .ok_or_else(|| "missing member `source`".to_string())?;
                let deadline_ms = match frame.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_u64().ok_or_else(|| "`deadline_ms` must be a count".to_string())?,
                    ),
                };
                Ok(Request::Submit { tenant: required_str(frame, "tenant")?, source, deadline_ms })
            }
            "stats" => Ok(Request::Stats {
                tenant: match frame.get("tenant") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "`tenant` must be a string".to_string())?,
                    ),
                },
            }),
            "persist" => Ok(Request::Persist),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

fn required_str(frame: &Json, key: &str) -> Result<String, String> {
    frame
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string member `{key}`"))
}

fn decode_policy(policy: Option<&Json>) -> Result<TenantPolicy, String> {
    let Some(policy) = policy else { return Ok(TenantPolicy::default()) };
    let score_threshold = match policy.get("score_threshold") {
        None | Some(Json::Null) => None,
        Some(v) => {
            Some(v.as_f64().ok_or_else(|| "`score_threshold` must be a number".to_string())?)
        }
    };
    let top_k = match policy.get("top_k") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| "`top_k` must be a count".to_string())? as usize),
    };
    Ok(TenantPolicy { score_threshold, top_k })
}

fn decode_quotas(policy: Option<&Json>) -> Result<TenantQuotas, String> {
    let mut quotas = TenantQuotas::default();
    let Some(policy) = policy else { return Ok(quotas) };
    for (key, slot) in [
        ("source_cache_capacity", &mut quotas.source_cache_capacity),
        ("selection_cache_tables", &mut quotas.selection_cache_tables),
        ("restricted_profile_entries", &mut quotas.restricted_profile_entries),
        ("match_result_entries", &mut quotas.match_result_entries),
    ] {
        *slot = match policy.get(key) {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| format!("`{key}` must be a count"))? as usize),
        };
    }
    Ok(quotas)
}

fn decode_tables(tables: Option<&Json>) -> Result<Vec<Table>, String> {
    let Some(items) = tables.and_then(Json::as_array) else {
        return Err("missing array member `tables`".to_string());
    };
    items.iter().map(decode_table).collect()
}

/// Decode one `{name, attributes, rows}` table object.
pub fn decode_table(table: &Json) -> Result<Table, String> {
    let name =
        table.get("name").and_then(Json::as_str).ok_or("table is missing a `name` string")?;
    let attrs: Vec<Attribute> = table
        .get("attributes")
        .and_then(Json::as_array)
        .ok_or("table is missing an `attributes` array")?
        .iter()
        .map(|a| {
            let attr_name =
                a.get("name").and_then(Json::as_str).ok_or("attribute is missing `name`")?;
            let data_type = match a.get("type").and_then(Json::as_str) {
                None => DataType::Text,
                // `unknown` is a legal schema state ([`DataType::Unknown`])
                // but not a `FromStr` spelling; accept it for round trips.
                Some("unknown") => DataType::Unknown,
                Some(text) => text
                    .parse::<DataType>()
                    .map_err(|_| format!("unknown attribute type `{text}`"))?,
            };
            Ok(Attribute::new(attr_name, data_type))
        })
        .collect::<Result<_, String>>()?;
    let rows: Vec<Tuple> = table
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("table is missing a `rows` array")?
        .iter()
        .map(|row| {
            let cells = row.as_array().ok_or("row is not an array")?;
            if cells.len() != attrs.len() {
                return Err(format!(
                    "row arity {} does not match the {} declared attributes",
                    cells.len(),
                    attrs.len()
                ));
            }
            let values = cells
                .iter()
                .zip(&attrs)
                .map(|(cell, attr)| decode_value(cell, attr.data_type))
                .collect::<Result<Vec<Value>, String>>()?;
            Ok(Tuple::new(values))
        })
        .collect::<Result<_, String>>()?;
    Table::with_rows(TableSchema::new(name, attrs), rows).map_err(|e| e.to_string())
}

/// JSON cell → [`Value`], guided by the declared attribute type (a JSON
/// integer in a float column is a float value, so `[1, 2.5]` columns stay
/// homogeneous).
fn decode_value(cell: &Json, data_type: DataType) -> Result<Value, String> {
    Ok(match cell {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Int(i) if data_type == DataType::Float => Value::Float(*i as f64),
        Json::Int(i) => Value::Int(*i),
        Json::Float(f) => Value::Float(*f),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Array(_) | Json::Object(_) => {
            return Err("row cells must be JSON scalars".to_string())
        }
    })
}

/// Decode a `{name?, tables}` source-database object (a `submit`'s
/// `source` member).
pub fn decode_database(source: &Json) -> Result<Database, String> {
    let name = source.get("name").and_then(Json::as_str).unwrap_or("source");
    let mut db = Database::new(name);
    for table in decode_tables(source.get("tables"))? {
        if db.table(table.name()).is_some() {
            return Err(format!("duplicate source table `{}`", table.name()));
        }
        db.replace_table(table);
    }
    Ok(db)
}

/// Encode a [`Database`] as the `{name, tables}` wire object (the client
/// half of [`decode_database`]).
pub fn encode_database(db: &Database) -> Json {
    Json::Object(vec![
        ("name".into(), Json::str(db.name())),
        ("tables".into(), Json::Array(db.tables().map(encode_table).collect())),
    ])
}

/// Encode one [`Table`] as the `{name, attributes, rows}` wire object.
pub fn encode_table(table: &Table) -> Json {
    let attributes = table
        .schema()
        .attributes()
        .iter()
        .map(|a| {
            Json::Object(vec![
                ("name".into(), Json::str(&a.name)),
                ("type".into(), Json::str(a.data_type.name())),
            ])
        })
        .collect();
    let rows = table
        .rows()
        .iter()
        .map(|tuple| Json::Array(tuple.values().iter().map(encode_value).collect()))
        .collect();
    Json::Object(vec![
        ("name".into(), Json::str(table.name())),
        ("attributes".into(), Json::Array(attributes)),
        ("rows".into(), Json::Array(rows)),
    ])
}

fn encode_value(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::str(s.clone()),
    }
}

/// Encode a match result under a tenant policy. The policy projects the
/// `selected` list only; `standard` and `candidates` report the full
/// deterministic pipeline output. This is the **byte-identity surface**: the
/// concurrent-equivalence tests encode a serial in-process reference through
/// this same function and compare bytes.
pub fn encode_result(result: &ContextMatchResult, policy: &TenantPolicy) -> Json {
    Json::Object(vec![
        ("selected".into(), encode_matches(&policy.apply(&result.selected))),
        ("standard".into(), encode_matches(&result.standard.iter().collect::<Vec<_>>())),
        ("candidates".into(), encode_matches(&result.candidates.iter().collect::<Vec<_>>())),
        (
            "candidate_views".into(),
            Json::Array(result.candidate_views.iter().map(|v| Json::str(v.to_string())).collect()),
        ),
    ])
}

fn encode_matches(matches: &[&Match]) -> Json {
    Json::Array(
        matches
            .iter()
            .map(|m| {
                Json::Object(vec![
                    ("source".into(), Json::str(m.source.to_string())),
                    ("target".into(), Json::str(m.target.to_string())),
                    ("base_table".into(), Json::str(m.base_table.clone())),
                    ("condition".into(), Json::str(m.condition.to_sql())),
                    ("score".into(), Json::Float(m.score)),
                    ("confidence".into(), Json::Float(m.confidence)),
                ])
            })
            .collect(),
    )
}

/// An `{ok: true, op, …}` response skeleton.
pub fn ok_frame(op: &str, mut members: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("ok".into(), Json::Bool(true)), ("op".into(), Json::str(op))];
    pairs.append(&mut members);
    Json::Object(pairs)
}

/// An `{ok: false, error: {code, message[, retry_after_ms]}}` frame.
pub fn error_frame(code: ErrorCode, message: &str, retry_after_ms: Option<u64>) -> Json {
    let mut error =
        vec![("code".into(), Json::str(code.as_str())), ("message".into(), Json::str(message))];
    if let Some(ms) = retry_after_ms {
        error.push(("retry_after_ms".into(), Json::Int(ms as i64)));
    }
    Json::Object(vec![("ok".into(), Json::Bool(false)), ("error".into(), Json::Object(error))])
}

/// Encode a catalog update's observable half for register/replace/drop acks.
pub fn encode_update(update: &CatalogUpdate) -> Vec<(String, Json)> {
    vec![
        ("version".into(), Json::Int(update.version as i64)),
        ("tables".into(), Json::Int(update.tables as i64)),
        ("reused".into(), Json::Int(update.reused as i64)),
        ("rebuilt".into(), Json::Int(update.rebuilt as i64)),
        ("columns_reused".into(), Json::Int(update.columns_reused as i64)),
        ("columns_rebuilt".into(), Json::Int(update.columns_rebuilt as i64)),
    ]
}

/// Encode the server half of a `stats` response.
pub fn encode_server_stats(stats: &ServerStats) -> Json {
    Json::Object(vec![
        ("workers".into(), Json::Int(stats.workers as i64)),
        ("queue_depth".into(), Json::Int(stats.queue_depth as i64)),
        ("queue_capacity".into(), Json::Int(stats.queue_capacity as i64)),
        ("connections".into(), Json::Int(stats.connections as i64)),
        ("open_connections".into(), Json::Int(stats.open_connections as i64)),
        ("peak_connections".into(), Json::Int(stats.peak_connections as i64)),
        ("connection_limit_rejects".into(), Json::Int(stats.connection_limit_rejects as i64)),
        ("idle_timeout_closes".into(), Json::Int(stats.idle_timeout_closes as i64)),
        ("requests".into(), Json::Int(stats.requests as i64)),
        ("submits".into(), Json::Int(stats.submits as i64)),
        ("completed".into(), Json::Int(stats.completed as i64)),
        ("admission_rejects".into(), Json::Int(stats.admission_rejects as i64)),
        ("deadline_expiries".into(), Json::Int(stats.deadline_expiries as i64)),
        ("service_time_ms".into(), Json::Int(stats.service_time_ms as i64)),
        ("tenants".into(), Json::Int(stats.tenants as i64)),
        ("draining".into(), Json::Bool(stats.draining)),
        ("display".into(), Json::str(stats.to_string())),
    ])
}

/// Encode one tenant's half of a `stats` response.
pub fn encode_tenant_stats(stats: &TenantStats) -> Json {
    let warm = &stats.warm;
    Json::Object(vec![
        ("tenant".into(), Json::str(stats.tenant.clone())),
        ("submits".into(), Json::Int(stats.submits as i64)),
        ("result_cache_hits".into(), Json::Int(stats.result_cache_hits as i64)),
        ("deadline_expiries".into(), Json::Int(stats.deadline_expiries as i64)),
        ("admission_rejects".into(), Json::Int(stats.admission_rejects as i64)),
        ("inflight_rejects".into(), Json::Int(stats.inflight_rejects as i64)),
        ("inflight".into(), Json::Int(stats.inflight as i64)),
        ("inflight_peak".into(), Json::Int(stats.inflight_peak as i64)),
        ("quota_evictions".into(), Json::Int(stats.quota_evictions() as i64)),
        ("catalog_version".into(), Json::Int(warm.catalog_version as i64)),
        ("catalog_tables".into(), Json::Int(warm.catalog_tables as i64)),
        ("result_cache_len".into(), Json::Int(warm.result_len as i64)),
        ("result_cache_capacity".into(), Json::Int(warm.result_capacity as i64)),
        ("source_cache_len".into(), Json::Int(warm.source_len as i64)),
        ("source_cache_capacity".into(), Json::Int(warm.source_capacity as i64)),
        ("restored_columns".into(), Json::Int(warm.restored_columns as i64)),
        ("rebuilt_columns".into(), Json::Int(warm.rebuilt_columns as i64)),
        ("restored_restricted".into(), Json::Int(warm.restored_restricted as i64)),
        ("dropped_restricted".into(), Json::Int(warm.dropped_restricted as i64)),
        ("degraded_sections".into(), Json::Int(warm.degraded_sections as i64)),
        ("display".into(), Json::str(stats.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use cxm_relational::{AttrRef, Condition};

    fn book_table_json() -> &'static str {
        r#"{"name":"book","attributes":[{"name":"title","type":"text"},{"name":"price","type":"float"}],"rows":[["war and peace",10],["middlemarch",12.5]]}"#
    }

    #[test]
    fn tables_round_trip_through_the_wire_encoding() {
        let decoded = decode_table(&parse(book_table_json().as_bytes()).unwrap()).unwrap();
        assert_eq!(decoded.name(), "book");
        assert_eq!(decoded.len(), 2);
        // The int-in-float-column cell landed as a float.
        let reencoded = encode_table(&decoded);
        let again = decode_table(&reencoded).unwrap();
        assert_eq!(again.fingerprint(), decoded.fingerprint());
    }

    #[test]
    fn requests_decode_and_reject_malformed_frames() {
        let frame = parse(
            format!(
                r#"{{"op":"register","tenant":"acme","tables":[{}],"policy":{{"score_threshold":0.5,"top_k":3,"match_result_entries":8}}}}"#,
                book_table_json()
            )
            .as_bytes(),
        )
        .unwrap();
        let req = Request::from_json(&frame).unwrap();
        match req {
            Request::Register { tenant, tables, policy, quotas } => {
                assert_eq!(tenant, "acme");
                assert_eq!(tables.len(), 1);
                assert_eq!(policy, TenantPolicy { score_threshold: Some(0.5), top_k: Some(3) });
                assert_eq!(quotas.match_result_entries, Some(8));
                assert_eq!(quotas.source_cache_capacity, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        for bad in [
            r#"{"tenant":"t"}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"submit","tenant":"t"}"#,
            r#"{"op":"submit","tenant":"t","source":{},"deadline_ms":"soon"}"#,
            r#"{"op":"drop","tenant":"t"}"#,
        ] {
            let frame = parse(bad.as_bytes()).unwrap();
            assert!(Request::from_json(&frame).is_err(), "{bad}");
        }
    }

    #[test]
    fn policy_projects_selected_post_match() {
        let m = |score: f64| Match {
            source: AttrRef::new("inv", "name"),
            base_table: "book".into(),
            target: AttrRef::new("book", "title"),
            condition: Condition::True,
            score,
            confidence: score,
        };
        let matches = vec![m(0.9), m(0.6), m(0.3)];
        let none = TenantPolicy::default();
        assert_eq!(none.apply(&matches).len(), 3);
        let thresholded = TenantPolicy { score_threshold: Some(0.5), top_k: None };
        assert_eq!(thresholded.apply(&matches).len(), 2);
        let top1 = TenantPolicy { score_threshold: Some(0.5), top_k: Some(1) };
        let kept = top1.apply(&matches);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn error_frames_carry_code_and_retry_hint() {
        let frame = error_frame(ErrorCode::Overloaded, "queue full", Some(25));
        let text = frame.to_text();
        assert!(text.contains(r#""code":"overloaded""#), "{text}");
        assert!(text.contains(r#""retry_after_ms":25"#), "{text}");
        assert_eq!(frame.get("ok"), Some(&Json::Bool(false)));
        let plain = error_frame(ErrorCode::BadRequest, "nope", None);
        assert!(!plain.to_text().contains("retry_after_ms"));
    }
}
