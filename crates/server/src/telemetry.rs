//! Server timing and counters. **Every wall-clock read of `cxm-server`
//! lives in this module** — deadlines are inherently about real time, and
//! keeping `Instant` confined here keeps the rest of the crate inside the
//! workspace's D002 invariant (wall-clock reads only in harness/bench code
//! and telemetry modules). Nothing here feeds match *results*: deadlines
//! decide whether a request runs at all, never what it computes.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cxm_service::WarmStats;

/// A per-request time budget, captured when the request is admitted.
///
/// `cxm-server` checks it at every pipeline boundary — at dequeue, after
/// source decoding, and after the match — so an expired request is abandoned
/// at the next boundary instead of holding a worker. A request whose budget
/// expires before the match phase performs **zero** classifier work.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget_ms` from now; `None` means unbounded.
    pub fn after_ms(budget_ms: Option<u64>) -> Deadline {
        Deadline { at: budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms)) }
    }

    /// No deadline: never expires.
    pub fn unbounded() -> Deadline {
        Deadline { at: None }
    }

    /// Whether the budget is spent. A zero-millisecond budget is expired
    /// from the first check on — deterministically, which is what the
    /// deadline-expiry tests lean on.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// Process-lifetime counters of the serving layer, updated with relaxed
/// atomics from connection handlers and workers.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted.
    pub connections: AtomicUsize,
    /// Frames parsed into requests (all ops).
    pub requests: AtomicUsize,
    /// `submit` requests admitted into the queue.
    pub submits: AtomicUsize,
    /// `submit` requests answered with a result.
    pub completed: AtomicUsize,
    /// `submit` requests rejected by admission control (queue full).
    pub admission_rejects: AtomicUsize,
    /// `submit` requests answered `deadline_exceeded`.
    pub deadline_expiries: AtomicUsize,
}

/// Relaxed increment — the counters are monotonic tallies, never
/// synchronization.
pub fn bump(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn read(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Relaxed)
}

/// Per-tenant counters, held by the tenant registry entry.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// `submit` requests for this tenant (admitted or rejected).
    pub submits: AtomicUsize,
    /// Responses served from the tenant's whole-match result cache.
    pub result_cache_hits: AtomicUsize,
    /// Submissions answered `deadline_exceeded`.
    pub deadline_expiries: AtomicUsize,
    /// Submissions rejected by admission control.
    pub admission_rejects: AtomicUsize,
}

/// A point-in-time snapshot of the server-level serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Submissions currently queued.
    pub queue_depth: usize,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// Connections accepted so far.
    pub connections: usize,
    /// Requests of any op parsed so far.
    pub requests: usize,
    /// Submissions admitted so far.
    pub submits: usize,
    /// Submissions completed with a result so far.
    pub completed: usize,
    /// Submissions rejected by admission control so far.
    pub admission_rejects: usize,
    /// Submissions expired by their deadline so far.
    pub deadline_expiries: usize,
    /// Registered tenants.
    pub tenants: usize,
    /// Whether a graceful shutdown is in progress.
    pub draining: bool,
}

impl ServerCounters {
    /// Snapshot the counters into a [`ServerStats`] (the caller fills in the
    /// queue/worker/tenant fields it owns).
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: read(&self.connections),
            requests: read(&self.requests),
            submits: read(&self.submits),
            completed: read(&self.completed),
            admission_rejects: read(&self.admission_rejects),
            deadline_expiries: read(&self.deadline_expiries),
            ..ServerStats::default()
        }
    }
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} workers, queue {}/{}, {} connections, {} requests \
             ({} submits, {} completed), {} admission rejects, \
             {} deadline expiries, {} tenants",
            self.workers,
            self.queue_depth,
            self.queue_capacity,
            self.connections,
            self.requests,
            self.submits,
            self.completed,
            self.admission_rejects,
            self.deadline_expiries,
            self.tenants,
        )?;
        if self.draining {
            write!(f, ", draining")?;
        }
        Ok(())
    }
}

/// A point-in-time snapshot of one tenant's serving counters plus the
/// absolute warm-artifact totals of its `MatchService`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Submissions addressed to this tenant so far.
    pub submits: usize,
    /// Responses served from the tenant's whole-match result cache.
    pub result_cache_hits: usize,
    /// Submissions expired by their deadline.
    pub deadline_expiries: usize,
    /// Submissions rejected by admission control.
    pub admission_rejects: usize,
    /// Warm-artifact store totals ([`cxm_service::MatchService::warm_stats`]).
    pub warm: WarmStats,
}

impl TenantStats {
    /// Warm artifacts this tenant's bounded caches evicted — the tenant's
    /// quota pressure (see [`WarmStats::quota_evictions`]).
    pub fn quota_evictions(&self) -> usize {
        self.warm.quota_evictions()
    }
}

impl fmt::Display for TenantStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tenant {}: {} submits ({} result-cache hits), {} deadline expiries, \
             {} admission rejects, {} quota evictions; {}",
            self.tenant,
            self.submits,
            self.result_cache_hits,
            self.deadline_expiries,
            self.admission_rejects,
            self.quota_evictions(),
            self.warm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_expires_immediately_and_unbounded_never() {
        assert!(Deadline::after_ms(Some(0)).expired());
        assert!(!Deadline::unbounded().expired());
        assert!(!Deadline::after_ms(Some(60_000)).expired());
        assert!(!Deadline::after_ms(None).expired());
    }

    #[test]
    fn stats_display_reports_every_signal() {
        let s = ServerStats {
            workers: 4,
            queue_depth: 2,
            queue_capacity: 8,
            connections: 3,
            requests: 10,
            submits: 7,
            completed: 5,
            admission_rejects: 1,
            deadline_expiries: 2,
            tenants: 2,
            draining: true,
        };
        let text = s.to_string();
        assert!(text.contains("queue 2/8"), "{text}");
        assert!(text.contains("1 admission rejects"), "{text}");
        assert!(text.contains("2 deadline expiries"), "{text}");
        assert!(text.contains("draining"), "{text}");

        let t = TenantStats {
            tenant: "acme".into(),
            submits: 9,
            result_cache_hits: 4,
            deadline_expiries: 1,
            admission_rejects: 2,
            warm: WarmStats { source_evictions: 1, result_evictions: 2, ..WarmStats::default() },
        };
        let text = t.to_string();
        assert!(text.contains("tenant acme"), "{text}");
        assert!(text.contains("9 submits (4 result-cache hits)"), "{text}");
        assert!(text.contains("3 quota evictions"), "{text}");
    }
}
