//! Server timing and counters. **Every wall-clock read of `cxm-server`
//! lives in this module** — deadlines are inherently about real time, and
//! keeping `Instant` confined here keeps the rest of the crate inside the
//! workspace's D002 invariant (wall-clock reads only in harness/bench code
//! and telemetry modules). Nothing here feeds match *results*: deadlines
//! decide whether a request runs at all, never what it computes.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use cxm_service::WarmStats;

/// Milliseconds since the first call in this process, on the monotonic
/// clock. The reactor's idle-connection accounting runs on these values —
/// it compares and subtracts them, but the `Instant` read itself stays
/// confined here (D002). Never feeds a match result.
pub fn monotonic_ms() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    Instant::now().duration_since(anchor).as_millis() as u64
}

/// A started wall-clock measurement (the worker wraps each submission in
/// one to feed [`ServiceTimeEstimator`]). Constructed and read only here,
/// so the rest of the crate handles durations, never clocks.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start measuring now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: Instant::now() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// An exponentially-weighted moving average of observed submission service
/// times, in microseconds. Feeds the `overloaded` reject's `retry_after_ms`
/// hint: instead of a static config value, the hint estimates how long the
/// queue ahead of the client will take to drain. Updated with relaxed
/// atomics — a lost update under contention skews the estimate by one
/// sample, which telemetry tolerates by construction.
#[derive(Debug, Default)]
pub struct ServiceTimeEstimator {
    ewma_us: AtomicU64,
    samples: AtomicUsize,
}

impl ServiceTimeEstimator {
    /// Fold one completed submission's service time into the average
    /// (weight 1/4 — responsive to load shifts, calm under jitter).
    pub fn record(&self, elapsed: Duration) {
        let sample = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let n = self.samples.fetch_add(1, Ordering::Relaxed);
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new =
            if n == 0 { sample } else { (old.saturating_mul(3) / 4).saturating_add(sample / 4) };
        self.ewma_us.store(new, Ordering::Relaxed);
    }

    /// The current estimate in milliseconds (0 before any sample).
    pub fn service_ms(&self) -> u64 {
        self.ewma_us.load(Ordering::Relaxed) / 1000
    }

    /// Completed samples folded in so far.
    pub fn samples(&self) -> usize {
        self.samples.load(Ordering::Relaxed)
    }
}

/// Ceiling on any computed `retry_after_ms` hint — an estimate gone wild
/// (one pathological slow request) must not tell clients to go away for
/// minutes.
const MAX_RETRY_HINT_MS: u64 = 10_000;

/// The `overloaded` reject's `retry_after_ms` hint: the estimated time for
/// `queue_depth` requests averaging `service_ms` each to drain across
/// `workers`, floored at the configured static hint (which also covers the
/// cold start, before any sample exists). Pure arithmetic over observed
/// inputs — deterministic given the same depth/estimate/worker count.
pub fn retry_hint_ms(floor_ms: u64, queue_depth: usize, service_ms: u64, workers: usize) -> u64 {
    let drain_ms = (queue_depth as u64)
        .saturating_mul(service_ms)
        .checked_div(workers.max(1) as u64)
        .unwrap_or(0);
    drain_ms.max(floor_ms).min(MAX_RETRY_HINT_MS)
}

/// A per-request time budget, captured when the request is admitted.
///
/// `cxm-server` checks it at every pipeline boundary — at dequeue, after
/// source decoding, and after the match — so an expired request is abandoned
/// at the next boundary instead of holding a worker. A request whose budget
/// expires before the match phase performs **zero** classifier work.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget_ms` from now; `None` means unbounded.
    pub fn after_ms(budget_ms: Option<u64>) -> Deadline {
        Deadline { at: budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms)) }
    }

    /// No deadline: never expires.
    pub fn unbounded() -> Deadline {
        Deadline { at: None }
    }

    /// Whether the budget is spent. A zero-millisecond budget is expired
    /// from the first check on — deterministically, which is what the
    /// deadline-expiry tests lean on.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// Process-lifetime counters of the serving layer, updated with relaxed
/// atomics from connection handlers and workers.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted.
    pub connections: AtomicUsize,
    /// Connections currently open (gauge: accept increments, close
    /// decrements).
    pub open_connections: AtomicUsize,
    /// High-water mark of [`ServerCounters::open_connections`].
    pub peak_connections: AtomicUsize,
    /// Connections refused at accept by the global connection limit.
    pub connection_limit_rejects: AtomicUsize,
    /// Connections closed by the idle timeout.
    pub idle_timeout_closes: AtomicUsize,
    /// Frames parsed into requests (all ops).
    pub requests: AtomicUsize,
    /// `submit` requests admitted into the queue.
    pub submits: AtomicUsize,
    /// `submit` requests answered with a result.
    pub completed: AtomicUsize,
    /// `submit` requests rejected by admission control (queue full or a
    /// per-tenant in-flight cap).
    pub admission_rejects: AtomicUsize,
    /// `submit` requests answered `deadline_exceeded`.
    pub deadline_expiries: AtomicUsize,
    /// Observed submission service times, feeding the retry hint.
    pub service_time: ServiceTimeEstimator,
}

impl ServerCounters {
    /// Record one accepted connection, maintaining the open gauge and peak.
    pub fn connection_opened(&self) {
        bump(&self.connections);
        let open = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(open, Ordering::Relaxed);
    }

    /// Record one closed connection.
    pub fn connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Relaxed increment — the counters are monotonic tallies, never
/// synchronization.
pub fn bump(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn read(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Relaxed)
}

/// Per-tenant counters, held by the tenant registry entry.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// `submit` requests for this tenant (admitted or rejected).
    pub submits: AtomicUsize,
    /// Responses served from the tenant's whole-match result cache.
    pub result_cache_hits: AtomicUsize,
    /// Submissions answered `deadline_exceeded`.
    pub deadline_expiries: AtomicUsize,
    /// Submissions rejected by admission control (queue full or the
    /// tenant's in-flight cap).
    pub admission_rejects: AtomicUsize,
    /// Submissions rejected specifically by the tenant's in-flight cap
    /// (also counted in [`TenantCounters::admission_rejects`]).
    pub inflight_rejects: AtomicUsize,
    /// Requests currently admitted-but-unanswered for this tenant (gauge).
    pub inflight: AtomicUsize,
    /// High-water mark of [`TenantCounters::inflight`].
    pub inflight_peak: AtomicUsize,
}

impl TenantCounters {
    /// Record one admitted submission, maintaining the in-flight gauge and
    /// its high-water mark. Called only by the reactor thread (admission is
    /// single-threaded), so gauge+peak cannot race upward.
    pub fn inflight_admitted(&self) {
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Record one finished submission (answered, expired, or panicked).
    pub fn inflight_finished(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the server-level serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Submissions currently queued.
    pub queue_depth: usize,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// Connections accepted so far.
    pub connections: usize,
    /// Connections open right now.
    pub open_connections: usize,
    /// Most connections ever open at once.
    pub peak_connections: usize,
    /// Connections refused at accept by the global connection limit.
    pub connection_limit_rejects: usize,
    /// Connections closed by the idle timeout.
    pub idle_timeout_closes: usize,
    /// Requests of any op parsed so far.
    pub requests: usize,
    /// Submissions admitted so far.
    pub submits: usize,
    /// Submissions completed with a result so far.
    pub completed: usize,
    /// Submissions rejected by admission control so far.
    pub admission_rejects: usize,
    /// Submissions expired by their deadline so far.
    pub deadline_expiries: usize,
    /// The EWMA of observed submission service times, in milliseconds.
    pub service_time_ms: u64,
    /// Registered tenants.
    pub tenants: usize,
    /// Whether a graceful shutdown is in progress.
    pub draining: bool,
}

impl ServerCounters {
    /// Snapshot the counters into a [`ServerStats`] (the caller fills in the
    /// queue/worker/tenant fields it owns).
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: read(&self.connections),
            open_connections: read(&self.open_connections),
            peak_connections: read(&self.peak_connections),
            connection_limit_rejects: read(&self.connection_limit_rejects),
            idle_timeout_closes: read(&self.idle_timeout_closes),
            requests: read(&self.requests),
            submits: read(&self.submits),
            completed: read(&self.completed),
            admission_rejects: read(&self.admission_rejects),
            deadline_expiries: read(&self.deadline_expiries),
            service_time_ms: self.service_time.service_ms(),
            ..ServerStats::default()
        }
    }
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} workers, queue {}/{}, {} connections ({} open, {} peak, \
             {} limit rejects, {} idle closes), {} requests \
             ({} submits, {} completed), {} admission rejects, \
             {} deadline expiries, ~{} ms service time, {} tenants",
            self.workers,
            self.queue_depth,
            self.queue_capacity,
            self.connections,
            self.open_connections,
            self.peak_connections,
            self.connection_limit_rejects,
            self.idle_timeout_closes,
            self.requests,
            self.submits,
            self.completed,
            self.admission_rejects,
            self.deadline_expiries,
            self.service_time_ms,
            self.tenants,
        )?;
        if self.draining {
            write!(f, ", draining")?;
        }
        Ok(())
    }
}

/// A point-in-time snapshot of one tenant's serving counters plus the
/// absolute warm-artifact totals of its `MatchService`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Submissions addressed to this tenant so far.
    pub submits: usize,
    /// Responses served from the tenant's whole-match result cache.
    pub result_cache_hits: usize,
    /// Submissions expired by their deadline.
    pub deadline_expiries: usize,
    /// Submissions rejected by admission control.
    pub admission_rejects: usize,
    /// Submissions rejected specifically by the tenant's in-flight cap.
    pub inflight_rejects: usize,
    /// Requests currently admitted-but-unanswered for this tenant.
    pub inflight: usize,
    /// Most requests ever in flight at once for this tenant.
    pub inflight_peak: usize,
    /// Warm-artifact store totals ([`cxm_service::MatchService::warm_stats`]).
    pub warm: WarmStats,
}

impl TenantStats {
    /// Warm artifacts this tenant's bounded caches evicted — the tenant's
    /// quota pressure (see [`WarmStats::quota_evictions`]).
    pub fn quota_evictions(&self) -> usize {
        self.warm.quota_evictions()
    }
}

impl fmt::Display for TenantStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tenant {}: {} submits ({} result-cache hits), {} deadline expiries, \
             {} admission rejects ({} in-flight cap), {} in flight ({} peak), \
             {} quota evictions; {}",
            self.tenant,
            self.submits,
            self.result_cache_hits,
            self.deadline_expiries,
            self.admission_rejects,
            self.inflight_rejects,
            self.inflight,
            self.inflight_peak,
            self.quota_evictions(),
            self.warm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_expires_immediately_and_unbounded_never() {
        assert!(Deadline::after_ms(Some(0)).expired());
        assert!(!Deadline::unbounded().expired());
        assert!(!Deadline::after_ms(Some(60_000)).expired());
        assert!(!Deadline::after_ms(None).expired());
    }

    #[test]
    fn stats_display_reports_every_signal() {
        let s = ServerStats {
            workers: 4,
            queue_depth: 2,
            queue_capacity: 8,
            connections: 3,
            requests: 10,
            submits: 7,
            completed: 5,
            admission_rejects: 1,
            deadline_expiries: 2,
            tenants: 2,
            draining: true,
            open_connections: 2,
            peak_connections: 3,
            connection_limit_rejects: 4,
            idle_timeout_closes: 5,
            service_time_ms: 6,
        };
        let text = s.to_string();
        assert!(text.contains("queue 2/8"), "{text}");
        assert!(text.contains("1 admission rejects"), "{text}");
        assert!(text.contains("2 deadline expiries"), "{text}");
        assert!(text.contains("2 open, 3 peak"), "{text}");
        assert!(text.contains("4 limit rejects, 5 idle closes"), "{text}");
        assert!(text.contains("~6 ms service time"), "{text}");
        assert!(text.contains("draining"), "{text}");

        let t = TenantStats {
            tenant: "acme".into(),
            submits: 9,
            result_cache_hits: 4,
            deadline_expiries: 1,
            admission_rejects: 2,
            inflight_rejects: 1,
            inflight: 1,
            inflight_peak: 3,
            warm: WarmStats { source_evictions: 1, result_evictions: 2, ..WarmStats::default() },
        };
        let text = t.to_string();
        assert!(text.contains("tenant acme"), "{text}");
        assert!(text.contains("9 submits (4 result-cache hits)"), "{text}");
        assert!(text.contains("2 admission rejects (1 in-flight cap)"), "{text}");
        assert!(text.contains("1 in flight (3 peak)"), "{text}");
        assert!(text.contains("3 quota evictions"), "{text}");
    }

    #[test]
    fn retry_hint_scales_with_queue_and_floors_at_config() {
        // Cold start: no samples means service_ms == 0, so the hint is the floor.
        assert_eq!(retry_hint_ms(7, 5, 0, 2), 7);
        // Scaled: 6 queued * 10 ms each / 2 workers = 30 ms drain estimate.
        assert_eq!(retry_hint_ms(7, 6, 10, 2), 30);
        // Floor wins when the queue would drain faster than the floor.
        assert_eq!(retry_hint_ms(50, 2, 10, 2), 50);
        // Ceiling caps pathological estimates.
        assert_eq!(retry_hint_ms(7, 100_000, 1_000, 1), 10_000);
        // Zero workers must not divide by zero.
        assert_eq!(retry_hint_ms(7, 4, 10, 0), 40);
    }

    #[test]
    fn service_time_estimator_tracks_an_ewma() {
        let est = ServiceTimeEstimator::default();
        assert_eq!(est.service_ms(), 0);
        assert_eq!(est.samples(), 0);
        est.record(Duration::from_millis(8));
        // First sample seeds the average directly.
        assert_eq!(est.service_ms(), 8);
        est.record(Duration::from_millis(8));
        assert_eq!(est.service_ms(), 8);
        // A burst of slow requests pulls the average up, but not instantly.
        est.record(Duration::from_millis(80));
        assert!(est.service_ms() > 8 && est.service_ms() < 80, "{}", est.service_ms());
        assert_eq!(est.samples(), 3);
    }

    #[test]
    fn connection_gauges_track_open_and_peak() {
        let c = ServerCounters::default();
        c.connection_opened();
        c.connection_opened();
        c.connection_opened();
        c.connection_closed();
        let s = c.snapshot();
        assert_eq!(s.connections, 3);
        assert_eq!(s.open_connections, 2);
        assert_eq!(s.peak_connections, 3);

        let t = TenantCounters::default();
        t.inflight_admitted();
        t.inflight_admitted();
        t.inflight_finished();
        t.inflight_admitted();
        assert_eq!(t.inflight.load(Ordering::Relaxed), 2);
        assert_eq!(t.inflight_peak.load(Ordering::Relaxed), 2);
    }
}
