//! A small blocking client for the framed protocol — used by the examples,
//! the integration tests, and the serving benchmarks. One [`Client`] wraps
//! one connection; requests are strictly sequential (send a frame, read the
//! reply), which is all the protocol needs since every request gets exactly
//! one response frame.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cxm_relational::{Database, Table};

use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
use crate::json::{parse, Json};
use crate::protocol::{encode_database, encode_table, TenantPolicy, TenantQuotas};

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_bytes: usize,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Send one request frame and read its response frame.
    pub fn request(&mut self, frame: &Json) -> io::Result<Json> {
        write_frame(&mut self.writer, &frame.to_bytes())?;
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader, self.max_frame_bytes)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        parse(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Register (or re-register) a tenant with its full target table set and
    /// optional policy/quota knobs.
    pub fn register(
        &mut self,
        tenant: &str,
        target: &Database,
        policy: &TenantPolicy,
        quotas: &TenantQuotas,
    ) -> io::Result<Json> {
        let tables =
            encode_database(target).get("tables").cloned().unwrap_or(Json::Array(Vec::new()));
        let mut members = vec![
            ("op".into(), Json::str("register")),
            ("tenant".into(), Json::str(tenant)),
            ("tables".into(), tables),
        ];
        let policy_members = encode_policy(policy, quotas);
        if !policy_members.is_empty() {
            members.push(("policy".into(), Json::Object(policy_members)));
        }
        self.request(&Json::Object(members))
    }

    /// Replace one registered target table.
    pub fn replace_table(&mut self, tenant: &str, table: &Table) -> io::Result<Json> {
        self.request(&Json::Object(vec![
            ("op".into(), Json::str("replace")),
            ("tenant".into(), Json::str(tenant)),
            ("table".into(), encode_table(table)),
        ]))
    }

    /// Drop one registered target table.
    pub fn drop_table(&mut self, tenant: &str, table: &str) -> io::Result<Json> {
        self.request(&Json::Object(vec![
            ("op".into(), Json::str("drop")),
            ("tenant".into(), Json::str(tenant)),
            ("table".into(), Json::str(table)),
        ]))
    }

    /// Submit a source database for matching, optionally under a deadline
    /// budget in milliseconds.
    pub fn submit(
        &mut self,
        tenant: &str,
        source: &Database,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        let mut members = vec![
            ("op".into(), Json::str("submit")),
            ("tenant".into(), Json::str(tenant)),
            ("source".into(), encode_database(source)),
        ];
        if let Some(ms) = deadline_ms {
            members.push(("deadline_ms".into(), Json::Int(ms as i64)));
        }
        self.request(&Json::Object(members))
    }

    /// Fetch the server stats snapshot, optionally restricted to one tenant.
    pub fn stats(&mut self, tenant: Option<&str>) -> io::Result<Json> {
        let mut members = vec![("op".into(), Json::str("stats"))];
        if let Some(tenant) = tenant {
            members.push(("tenant".into(), Json::str(tenant)));
        }
        self.request(&Json::Object(members))
    }

    /// Ask the server to drain gracefully. The acknowledgement arrives
    /// before the drain completes.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Json::Object(vec![("op".into(), Json::str("shutdown"))]))
    }
}

fn encode_policy(policy: &TenantPolicy, quotas: &TenantQuotas) -> Vec<(String, Json)> {
    let mut members = Vec::new();
    if let Some(t) = policy.score_threshold {
        members.push(("score_threshold".into(), Json::Float(t)));
    }
    if let Some(k) = policy.top_k {
        members.push(("top_k".into(), Json::Int(k as i64)));
    }
    for (key, value) in [
        ("source_cache_capacity", quotas.source_cache_capacity),
        ("selection_cache_tables", quotas.selection_cache_tables),
        ("restricted_profile_entries", quotas.restricted_profile_entries),
        ("match_result_entries", quotas.match_result_entries),
    ] {
        if let Some(v) = value {
            members.push((key.into(), Json::Int(v as i64)));
        }
    }
    members
}

/// True when a response frame is `{ok: true, …}`.
pub fn is_ok(frame: &Json) -> bool {
    frame.get("ok").and_then(Json::as_bool) == Some(true)
}

/// The `error.code` of a `{ok: false}` frame, if any.
pub fn error_code(frame: &Json) -> Option<&str> {
    frame.get("error")?.get("code")?.as_str()
}
