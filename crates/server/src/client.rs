//! A small blocking client for the framed protocol — used by the examples,
//! the integration tests, and the serving benchmarks. One [`Client`] wraps
//! one connection; requests are strictly sequential (send a frame, read the
//! reply), which is all the protocol needs since every request gets exactly
//! one response frame.
//!
//! [`RetryingClient`] layers bounded retry with exponential backoff and
//! deterministic jitter on top: explicit `overloaded` rejects (honoring the
//! server's `retry_after_ms` hint), `shutting_down` rejects, and transport
//! failures (reset, refused, mid-frame EOF) all reconnect-and-retry up to
//! the policy's bound. Every request in this protocol is idempotent —
//! matching is pure, registration converges — which is what makes blanket
//! retry safe. Time never enters the decision logic: sleeping goes through
//! an injected [`Sleeper`], and jitter comes from a seeded LCG, so tests
//! drive the whole retry schedule deterministically with no wall-clock.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cxm_relational::{Database, Table};

use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
use crate::json::{parse, Json};
use crate::protocol::{encode_database, encode_table, TenantPolicy, TenantQuotas};

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_bytes: usize,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Send one request frame and read its response frame.
    pub fn request(&mut self, frame: &Json) -> io::Result<Json> {
        write_frame(&mut self.writer, &frame.to_bytes())?;
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader, self.max_frame_bytes)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        parse(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Register (or re-register) a tenant with its full target table set and
    /// optional policy/quota knobs.
    pub fn register(
        &mut self,
        tenant: &str,
        target: &Database,
        policy: &TenantPolicy,
        quotas: &TenantQuotas,
    ) -> io::Result<Json> {
        let tables =
            encode_database(target).get("tables").cloned().unwrap_or(Json::Array(Vec::new()));
        let mut members = vec![
            ("op".into(), Json::str("register")),
            ("tenant".into(), Json::str(tenant)),
            ("tables".into(), tables),
        ];
        let policy_members = encode_policy(policy, quotas);
        if !policy_members.is_empty() {
            members.push(("policy".into(), Json::Object(policy_members)));
        }
        self.request(&Json::Object(members))
    }

    /// Replace one registered target table.
    pub fn replace_table(&mut self, tenant: &str, table: &Table) -> io::Result<Json> {
        self.request(&Json::Object(vec![
            ("op".into(), Json::str("replace")),
            ("tenant".into(), Json::str(tenant)),
            ("table".into(), encode_table(table)),
        ]))
    }

    /// Drop one registered target table.
    pub fn drop_table(&mut self, tenant: &str, table: &str) -> io::Result<Json> {
        self.request(&Json::Object(vec![
            ("op".into(), Json::str("drop")),
            ("tenant".into(), Json::str(tenant)),
            ("table".into(), Json::str(table)),
        ]))
    }

    /// Submit a source database for matching, optionally under a deadline
    /// budget in milliseconds.
    pub fn submit(
        &mut self,
        tenant: &str,
        source: &Database,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        let mut members = vec![
            ("op".into(), Json::str("submit")),
            ("tenant".into(), Json::str(tenant)),
            ("source".into(), encode_database(source)),
        ];
        if let Some(ms) = deadline_ms {
            members.push(("deadline_ms".into(), Json::Int(ms as i64)));
        }
        self.request(&Json::Object(members))
    }

    /// Fetch the server stats snapshot, optionally restricted to one tenant.
    pub fn stats(&mut self, tenant: Option<&str>) -> io::Result<Json> {
        let mut members = vec![("op".into(), Json::str("stats"))];
        if let Some(tenant) = tenant {
            members.push(("tenant".into(), Json::str(tenant)));
        }
        self.request(&Json::Object(members))
    }

    /// Ask the server to snapshot every tenant's warm state to its persist
    /// path. Fails with `bad_request` when the server has no persist path.
    pub fn persist(&mut self) -> io::Result<Json> {
        self.request(&Json::Object(vec![("op".into(), Json::str("persist"))]))
    }

    /// Ask the server to drain gracefully. The acknowledgement arrives
    /// before the drain completes.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Json::Object(vec![("op".into(), Json::str("shutdown"))]))
    }
}

fn encode_policy(policy: &TenantPolicy, quotas: &TenantQuotas) -> Vec<(String, Json)> {
    let mut members = Vec::new();
    if let Some(t) = policy.score_threshold {
        members.push(("score_threshold".into(), Json::Float(t)));
    }
    if let Some(k) = policy.top_k {
        members.push(("top_k".into(), Json::Int(k as i64)));
    }
    for (key, value) in [
        ("source_cache_capacity", quotas.source_cache_capacity),
        ("selection_cache_tables", quotas.selection_cache_tables),
        ("restricted_profile_entries", quotas.restricted_profile_entries),
        ("match_result_entries", quotas.match_result_entries),
    ] {
        if let Some(v) = value {
            members.push((key.into(), Json::Int(v as i64)));
        }
    }
    members
}

/// True when a response frame is `{ok: true, …}`.
pub fn is_ok(frame: &Json) -> bool {
    frame.get("ok").and_then(Json::as_bool) == Some(true)
}

/// The `error.code` of a `{ok: false}` frame, if any.
pub fn error_code(frame: &Json) -> Option<&str> {
    frame.get("error")?.get("code")?.as_str()
}

/// The `error.retry_after_ms` hint of a `{ok: false}` frame, if any.
pub fn retry_after_ms(frame: &Json) -> Option<u64> {
    match frame.get("error")?.get("retry_after_ms")? {
        Json::Int(ms) if *ms >= 0 => Some(*ms as u64),
        _ => None,
    }
}

/// How a [`RetryingClient`] waits between attempts. Injected so tests can
/// record the schedule instead of actually sleeping.
pub trait Sleeper {
    /// Block the caller for `d`.
    fn sleep(&mut self, d: Duration);
}

/// The production sleeper: `std::thread::sleep`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Bounds and pacing for [`RetryingClient`]. Backoff for attempt `n` is
/// `base_backoff_ms · 2ⁿ` capped at `max_backoff_ms`, plus up to 50%
/// seeded-LCG jitter; an `overloaded` reject's `retry_after_ms` hint acts
/// as a floor on the wait, never shortened by jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt; 4 means at most 5 attempts total.
    pub max_retries: u32,
    /// First backoff step in milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff wait (before the server's
    /// `retry_after_ms` floor is applied).
    pub max_backoff_ms: u64,
    /// Seed for the jitter LCG — same seed, same schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based), advancing the
    /// jitter state. Pure arithmetic — no clock reads.
    fn backoff(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        let exp = self.base_backoff_ms.saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min(self.max_backoff_ms);
        *jitter_state =
            jitter_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let jitter = if capped == 0 { 0 } else { (*jitter_state >> 33) % (capped / 2 + 1) };
        Duration::from_millis(capped.saturating_add(jitter))
    }
}

/// Why a [`RetryingClient`] decided to retry — recorded in telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetryCause {
    /// Server answered `overloaded` (admission queue full).
    Overloaded,
    /// Server answered `shutting_down` (drain in progress; a restart may
    /// bring it back).
    ShuttingDown,
    /// The transport failed: reset, refused, aborted, broken pipe, or the
    /// connection closed mid-exchange.
    Transport,
}

/// A [`Client`] wrapper that retries transient failures with bounded
/// exponential backoff. Connects lazily and reconnects after transport
/// errors, so it also rides out a server restart (connection refused while
/// the new process comes up is just another transient).
///
/// Non-transient protocol errors (`bad_request`, `unknown_tenant`,
/// `deadline_exceeded`, …) are returned to the caller unchanged on the
/// first attempt — retrying cannot fix them.
#[derive(Debug)]
pub struct RetryingClient<S: Sleeper = ThreadSleeper> {
    addr: String,
    client: Option<Client>,
    policy: RetryPolicy,
    sleeper: S,
    jitter_state: u64,
    ever_connected: bool,
    retries: u64,
    reconnects: u64,
}

impl RetryingClient<ThreadSleeper> {
    /// A retrying client over real sleeps. Does not connect yet — the
    /// first request does, under the retry policy.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryingClient<ThreadSleeper> {
        RetryingClient::with_sleeper(addr, policy, ThreadSleeper)
    }
}

impl<S: Sleeper> RetryingClient<S> {
    /// A retrying client with an injected sleeper (tests record the
    /// schedule instead of blocking).
    pub fn with_sleeper(addr: impl Into<String>, policy: RetryPolicy, sleeper: S) -> Self {
        RetryingClient {
            addr: addr.into(),
            client: None,
            jitter_state: policy.jitter_seed,
            policy,
            sleeper,
            ever_connected: false,
            retries: 0,
            reconnects: 0,
        }
    }

    /// Total retries performed (sleep-then-reattempt cycles).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Successful connections made after the first one.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// True when `kind` indicates the connection (not the request) failed,
    /// so reconnect-and-retry can help.
    fn transport_error(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::NotConnected
        )
    }

    /// One attempt: connect if needed, send, read. A failed attempt drops
    /// the connection so the next one starts clean.
    fn attempt(&mut self, frame: &Json) -> io::Result<Json> {
        if self.client.is_none() {
            let client = Client::connect(self.addr.as_str())?;
            if self.ever_connected {
                self.reconnects += 1;
            }
            self.ever_connected = true;
            self.client = Some(client);
        }
        let client = self.client.as_mut().expect("connection established above");
        let outcome = client.request(frame);
        if outcome.is_err() {
            self.client = None;
        }
        outcome
    }

    /// Send one request, retrying transient failures under the policy.
    /// Returns the final response frame (which may still be an error frame
    /// if retries ran out or the error is not transient), or the final
    /// transport error once `max_retries` reconnect attempts are spent.
    pub fn request(&mut self, frame: &Json) -> io::Result<Json> {
        let mut attempt = 0u32;
        loop {
            match self.attempt(frame) {
                Ok(response) => {
                    if is_ok(&response) {
                        return Ok(response);
                    }
                    let cause = match error_code(&response) {
                        Some("overloaded") => RetryCause::Overloaded,
                        Some("shutting_down") => RetryCause::ShuttingDown,
                        _ => return Ok(response),
                    };
                    if attempt >= self.policy.max_retries {
                        return Ok(response);
                    }
                    let hint = retry_after_ms(&response);
                    self.wait(attempt, cause, hint);
                }
                Err(e) => {
                    if !Self::transport_error(e.kind()) || attempt >= self.policy.max_retries {
                        return Err(e);
                    }
                    self.wait(attempt, RetryCause::Transport, None);
                }
            }
            attempt += 1;
        }
    }

    /// Sleep before retry number `attempt`, honoring the server's
    /// `retry_after_ms` hint as a floor on the backoff wait.
    fn wait(&mut self, attempt: u32, cause: RetryCause, hint_ms: Option<u64>) {
        let mut wait = self.policy.backoff(attempt, &mut self.jitter_state);
        if cause == RetryCause::Overloaded {
            if let Some(hint) = hint_ms {
                wait = wait.max(Duration::from_millis(hint));
            }
        }
        self.retries += 1;
        self.sleeper.sleep(wait);
    }

    /// [`Client::register`] with retries.
    pub fn register(
        &mut self,
        tenant: &str,
        target: &Database,
        policy: &TenantPolicy,
        quotas: &TenantQuotas,
    ) -> io::Result<Json> {
        let tables =
            encode_database(target).get("tables").cloned().unwrap_or(Json::Array(Vec::new()));
        let mut members = vec![
            ("op".into(), Json::str("register")),
            ("tenant".into(), Json::str(tenant)),
            ("tables".into(), tables),
        ];
        let policy_members = encode_policy(policy, quotas);
        if !policy_members.is_empty() {
            members.push(("policy".into(), Json::Object(policy_members)));
        }
        self.request(&Json::Object(members))
    }

    /// [`Client::submit`] with retries.
    pub fn submit(
        &mut self,
        tenant: &str,
        source: &Database,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        let mut members = vec![
            ("op".into(), Json::str("submit")),
            ("tenant".into(), Json::str(tenant)),
            ("source".into(), encode_database(source)),
        ];
        if let Some(ms) = deadline_ms {
            members.push(("deadline_ms".into(), Json::Int(ms as i64)));
        }
        self.request(&Json::Object(members))
    }

    /// [`Client::stats`] with retries.
    pub fn stats(&mut self, tenant: Option<&str>) -> io::Result<Json> {
        let mut members = vec![("op".into(), Json::str("stats"))];
        if let Some(tenant) = tenant {
            members.push(("tenant".into(), Json::str(tenant)));
        }
        self.request(&Json::Object(members))
    }

    /// [`Client::persist`] with retries.
    pub fn persist(&mut self) -> io::Result<Json> {
        self.request(&Json::Object(vec![("op".into(), Json::str("persist"))]))
    }
}
