//! `cxm-server`: a multi-tenant network front-end over [`cxm_service`].
//!
//! The serving layer the rest of the workspace deliberately lacks: a TCP
//! server speaking a length-prefixed JSON frame protocol (`docs/SERVING.md`),
//! multiplexing many isolated per-tenant [`cxm_service::MatchService`]s over
//! **one shared gram interner**. No async runtime — a readiness-driven
//! connection reactor ([`reactor`], one thread over an epoll shim) plus a
//! sized worker pool over a bounded admission queue, so resident threads
//! are `workers + 1` regardless of connection count.
//!
//! Three serving disciplines are layered on the deterministic match
//! pipeline, none of which may change what a match computes:
//!
//! * **Admission control** ([`admission`]) — a bounded queue that rejects
//!   with an explicit `overloaded` frame (plus a `retry_after_ms` hint)
//!   instead of queueing without bound; a rejected request is always
//!   answered, never hung up on.
//! * **Deadline budgets** ([`telemetry::Deadline`]) — per-request budgets
//!   checked at every pipeline boundary, so an expired request is dropped
//!   with `deadline_exceeded` before it does classifier work.
//! * **Per-tenant warm-state quotas** ([`tenant::QuotaCeilings`]) — each
//!   tenant's cache capacities are clamped server-side, so one tenant
//!   cannot crowd the others out of warm memory.
//! * **Connection governance** ([`reactor`]) — a global connection limit,
//!   per-tenant in-flight request caps, and a progress-based idle timeout
//!   that reclaims slow-loris dribblers; every refusal is an explicit error
//!   frame or a close, never silence.
//!
//! Tenant **policy** (score threshold, top-k) is applied *post-match* at
//! encode time: the cached result stays byte-identical across policies,
//! which is what keeps the concurrent server byte-equivalent to a serial
//! in-process service — the invariant the `server_equivalence` integration
//! test pins.

pub mod admission;
pub mod client;
pub mod frame;
pub mod json;
pub mod persist;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod telemetry;
pub mod tenant;

pub use admission::{AdmissionQueue, AdmitError};
pub use client::{Client, RetryPolicy, RetryingClient, Sleeper, ThreadSleeper};
pub use frame::{frame_bytes, read_frame, write_frame, FrameDecoder, DEFAULT_MAX_FRAME_BYTES};
pub use json::Json;
pub use persist::{restore_registry, save_registry, SaveOutcome};
pub use protocol::{encode_result, ErrorCode, Request, TenantPolicy, TenantQuotas};
pub use server::{serve, ServerConfig, ServerHandle};
pub use telemetry::{Deadline, ServerStats, TenantStats};
pub use tenant::{QuotaCeilings, Tenant, TenantRegistry};
