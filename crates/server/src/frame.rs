//! Length-prefixed frame codec: `u32` big-endian payload length, then the
//! payload bytes (a JSON document). One frame per request, one per response.
//!
//! The length prefix is what makes the protocol trivially delimitable over a
//! blocking stream — no in-band scanning, no chunked parser state — and the
//! explicit `max_frame_bytes` bound is the first line of admission control:
//! a hostile or corrupt length is rejected *before* any allocation.
//!
//! Two consumption styles share the format: [`read_frame`]/[`write_frame`]
//! for blocking streams (the client), and [`FrameDecoder`] — an incremental
//! push parser — for the reactor's non-blocking connections, where bytes
//! arrive in arbitrary fragments and a frame may take many readiness events
//! to complete.

use std::io::{self, Read, Write};

/// Default bound on a single frame's payload (32 MiB) — far above any sane
/// catalog registration, far below an `u32::MAX` allocation.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Write one frame: 4-byte big-endian length, then the payload, then flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Frame a payload into owned wire bytes: 4-byte big-endian length, then
/// the payload. The buffered-write counterpart of [`write_frame`] — the
/// reactor appends these to a connection's write buffer and flushes as the
/// socket allows.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame exceeds u32 length");
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&len.to_be_bytes());
    wire.extend_from_slice(payload);
    wire
}

/// Read one frame's payload.
///
/// Returns `Ok(None)` on a *clean* EOF (the peer closed between frames —
/// the normal end of a connection); a close mid-frame is an
/// [`io::ErrorKind::UnexpectedEof`] error. A length above `max_bytes` is an
/// [`io::ErrorKind::InvalidData`] error, detected before allocating.
pub fn read_frame<R: Read>(r: &mut R, max_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            // `read_exact` retries Interrupted; the header loop must too, or
            // a signal landing between frames tears down a healthy connection.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_bytes}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// An incremental frame parser for non-blocking reads: bytes go in via
/// [`FrameDecoder::extend`] whenever the socket is readable, complete
/// payloads come out of [`FrameDecoder::next_frame`]. The state machine is
/// exactly the blocking [`read_frame`]'s, cut at every byte boundary:
/// the 4-byte header is validated against `max_bytes` the moment it is
/// complete — **before** the payload is allocated — so a hostile length
/// costs 4 buffered bytes, never an allocation.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames; compacted lazily
    /// so back-to-back small frames don't memmove per frame.
    consumed: usize,
    max_bytes: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `max_bytes` per frame payload.
    pub fn new(max_bytes: usize) -> FrameDecoder {
        FrameDecoder { buf: Vec::new(), consumed: 0, max_bytes }
    }

    /// Buffer freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && (self.consumed >= 4096 || self.consumed == self.buf.len()) {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// True when buffered bytes form the *start* of a frame that has not
    /// completed yet — the signal the idle-timeout sweep uses to tell a
    /// byte-dribbling (slow-loris) peer from a quiescent keep-alive one.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.consumed
    }

    /// Pop the next complete frame payload, if one is buffered. An
    /// over-`max_bytes` header is an [`io::ErrorKind::InvalidData`] error,
    /// and the connection owning this decoder must be closed: the stream
    /// position is inside a frame we refuse to buffer, so no later bytes
    /// can be trusted.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > self.max_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {}-byte bound", self.max_bytes),
            ));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.consumed += 4 + len;
        if self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"a\":1}").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"{\"a\":1}");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"second");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn oversized_length_is_rejected_before_reading() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(1_000_000u32).to_be_bytes());
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        // Header cut short.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0]), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Payload cut short.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(8u32).to_be_bytes());
        wire.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(wire), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// A stream that serves one byte per `read` call and injects an
    /// `Interrupted` error before each — the worst-behaved short-read peer
    /// a real socket can legally be.
    struct Dribble {
        bytes: Vec<u8>,
        pos: usize,
        interrupt_next: bool,
    }

    impl Dribble {
        fn new(bytes: Vec<u8>) -> Dribble {
            Dribble { bytes, pos: 0, interrupt_next: true }
        }
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            self.interrupt_next = true;
            if self.pos >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn one_byte_reads_with_interrupts_still_deliver_whole_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"op\":\"stats\"}").unwrap();
        write_frame(&mut wire, b"x").unwrap();
        let mut r = Dribble::new(wire);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"{\"op\":\"stats\"}");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"x");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn dribbled_truncation_at_every_byte_boundary_is_an_error_never_a_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        // Cut the wire at every interior byte: each prefix must end in a
        // clean mid-frame error, never a short or phantom frame.
        for cut in 1..wire.len() {
            let err = read_frame(&mut Dribble::new(wire[..cut].to_vec()), 64).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at byte {cut}");
        }
    }

    #[test]
    fn oversized_length_is_rejected_even_when_dribbled() {
        let mut wire = (u32::MAX).to_be_bytes().to_vec();
        wire.extend_from_slice(b"garbage that must never be allocated for");
        let err = read_frame(&mut Dribble::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decoder_assembles_frames_from_one_byte_fragments() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"op\":\"stats\"}").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut decoder = FrameDecoder::new(64);
        let mut frames = Vec::new();
        for byte in &wire {
            decoder.extend(&[*byte]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames, vec![b"{\"op\":\"stats\"}".to_vec(), Vec::new(), b"second".to_vec()]);
        assert!(!decoder.has_partial(), "everything consumed");
    }

    #[test]
    fn decoder_reports_partial_frames_and_pops_pipelined_ones() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut decoder = FrameDecoder::new(64);
        // Both frames plus the header of a third arrive in one readiness
        // event — the pipelined case the reactor must drain frame by frame.
        decoder.extend(&wire);
        decoder.extend(&3u32.to_be_bytes());
        decoder.extend(b"ab");
        assert_eq!(decoder.next_frame().unwrap().unwrap(), b"first");
        assert_eq!(decoder.next_frame().unwrap().unwrap(), b"second");
        assert_eq!(decoder.next_frame().unwrap(), None, "third frame incomplete");
        assert!(decoder.has_partial(), "a dribbled prefix counts as partial");
        decoder.extend(b"c");
        assert_eq!(decoder.next_frame().unwrap().unwrap(), b"abc");
        assert!(!decoder.has_partial());
    }

    #[test]
    fn decoder_rejects_oversized_headers_before_buffering_payloads() {
        let mut decoder = FrameDecoder::new(1024);
        decoder.extend(&(u32::MAX).to_be_bytes());
        let err = decoder.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decoder_compacts_consumed_bytes_across_many_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[7u8; 100]).unwrap();
        let mut decoder = FrameDecoder::new(1024);
        for _ in 0..200 {
            decoder.extend(&wire);
            assert_eq!(decoder.next_frame().unwrap().unwrap(), vec![7u8; 100]);
        }
        assert!(!decoder.has_partial());
        assert!(decoder.buf.capacity() < 64 * 1024, "buffer stays small under reuse");
    }
}
