//! Length-prefixed frame codec: `u32` big-endian payload length, then the
//! payload bytes (a JSON document). One frame per request, one per response.
//!
//! The length prefix is what makes the protocol trivially delimitable over a
//! blocking stream — no in-band scanning, no chunked parser state — and the
//! explicit `max_frame_bytes` bound is the first line of admission control:
//! a hostile or corrupt length is rejected *before* any allocation.

use std::io::{self, Read, Write};

/// Default bound on a single frame's payload (32 MiB) — far above any sane
/// catalog registration, far below an `u32::MAX` allocation.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Write one frame: 4-byte big-endian length, then the payload, then flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload.
///
/// Returns `Ok(None)` on a *clean* EOF (the peer closed between frames —
/// the normal end of a connection); a close mid-frame is an
/// [`io::ErrorKind::UnexpectedEof`] error. A length above `max_bytes` is an
/// [`io::ErrorKind::InvalidData`] error, detected before allocating.
pub fn read_frame<R: Read>(r: &mut R, max_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_bytes}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"a\":1}").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"{\"a\":1}");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"second");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn oversized_length_is_rejected_before_reading() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(1_000_000u32).to_be_bytes());
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        // Header cut short.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0]), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Payload cut short.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(8u32).to_be_bytes());
        wire.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(wire), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
