//! Bounded admission queue with explicit-reject backpressure.
//!
//! The serving layer's load-shedding decision lives here: a `submit` either
//! gets a queue slot *now* or is rejected *now* with an `overloaded` frame —
//! producers never block, so a slow pipeline can delay responses but can
//! never wedge connection handlers, and the client always learns its
//! request's fate. Consumers (the worker pool) block until work arrives or
//! the queue is closed and drained, which is exactly the graceful-shutdown
//! contract: close admits nothing new but every admitted job still runs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

use cxm_service::MutexExt;

/// Why [`AdmissionQueue::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity — shed load, tell the client to retry.
    Full,
    /// The queue is closed (server draining) — no new work is admitted.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue: non-blocking bounded producers, blocking consumers.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` (min 1) pending jobs.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        AdmissionQueue {
            inner: Mutex::new(Inner { jobs: VecDeque::with_capacity(capacity), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (racy by nature; telemetry only).
    pub fn depth(&self) -> usize {
        self.inner.lock_or_recover().jobs.len()
    }

    /// Admit a job without blocking. On refusal the job comes back to the
    /// caller along with the reason, so the handler can still answer the
    /// client — a rejected request is *replied to*, never dropped.
    pub fn try_push(&self, job: T) -> Result<(), (T, AdmitError)> {
        let mut inner = self.inner.lock_or_recover();
        if inner.closed {
            return Err((job, AdmitError::Closed));
        }
        if inner.jobs.len() >= self.capacity {
            return Err((job, AdmitError::Full));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the oldest job, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed **and** drained — the worker
    /// pool's exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock_or_recover();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: every later [`AdmissionQueue::try_push`] is refused
    /// with [`AdmitError::Closed`], already-admitted jobs still drain, and
    /// blocked consumers wake up. Idempotent.
    pub fn close(&self) {
        self.inner.lock_or_recover().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_rejects_when_full_and_recovers_after_pop() {
        let q = AdmissionQueue::with_capacity(1);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err((2, AdmitError::Full)));
        assert_eq!(q.depth(), 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_admitted_jobs_then_signals_exit() {
        let q = AdmissionQueue::with_capacity(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(("c", AdmitError::Closed)));
        assert_eq!(q.pop(), Some("a"), "admitted work still drains");
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "drained + closed = exit signal");
        q.close();
        assert_eq!(q.pop(), None, "close is idempotent");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_on_close() {
        let q = Arc::new(AdmissionQueue::with_capacity(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(job) = q.pop() {
                    got.push(job);
                }
                got
            })
        };
        q.try_push(10).unwrap();
        q.try_push(20).unwrap();
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![10, 20]);
    }
}
