//! Server-side snapshot plumbing: save the whole tenant registry on drain
//! (or on a `persist` op), restore it on start.
//!
//! One snapshot file holds every tenant — warm state *and* registration
//! metadata (policy + the pre-clamp quota request) — plus the single shared
//! interner dump. Restore rebuilds the registry the same way a client would
//! have: each tenant's quota request is re-clamped against the *current*
//! ceilings, so an operator who tightened quotas across the restart wins,
//! and the warm state flows through [`MatchService::restore_from_parts`]'s
//! validation gates. A tenant whose metadata section degraded is simply not
//! restored — its next `register` frame recreates it cold, which is always
//! safe because warm state is derived state.

use std::io;
use std::path::Path;
use std::sync::Arc;

use cxm_matching::GramInterner;
use cxm_persist::{decode, encode, DiskStore, Snapshot, SnapshotStore, TenantEntry, TenantMeta};
use cxm_service::MatchService;

use crate::protocol::{TenantPolicy, TenantQuotas};
use crate::tenant::{QuotaCeilings, TenantRegistry};
use cxm_core::ContextMatchConfig;

/// What a registry save wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaveOutcome {
    /// Tenants captured in the snapshot.
    pub tenants: usize,
    /// Snapshot size on the wire, in bytes.
    pub bytes: usize,
}

/// Crash-safely publish the whole registry's warm state at `path`.
pub fn save_registry(registry: &TenantRegistry, path: &Path) -> io::Result<SaveOutcome> {
    save_registry_to(&DiskStore, registry, path)
}

/// [`save_registry`] through an explicit store (fault-injection hook).
pub fn save_registry_to(
    store: &impl SnapshotStore,
    registry: &TenantRegistry,
    path: &Path,
) -> io::Result<SaveOutcome> {
    let tenants = registry.tenants();
    let entries: Vec<TenantEntry> = tenants
        .iter()
        .map(|tenant| {
            let policy = tenant.policy();
            let quotas = tenant.quotas();
            TenantEntry {
                label: tenant.name.clone(),
                meta: Some(TenantMeta {
                    score_threshold: policy.score_threshold,
                    top_k: policy.top_k,
                    quotas: [
                        quotas.source_cache_capacity,
                        quotas.selection_cache_tables,
                        quotas.restricted_profile_entries,
                        quotas.match_result_entries,
                    ],
                }),
                // Exporting forces each catalog's interned artifacts, so the
                // dump below (taken after) covers every referenced id.
                warm: tenant.service.export_warm_state(),
            }
        })
        .collect();
    let snapshot = Snapshot { interner: Some(registry.interner().dump()), tenants: entries };
    let bytes = encode(&snapshot);
    store.write_atomic(path, &bytes)?;
    Ok(SaveOutcome { tenants: tenants.len(), bytes: bytes.len() })
}

/// Build a registry from the snapshot at `path`, degrading anything that
/// fails validation. A missing file — or a wholesale-rejected one — is a
/// plain cold registry; per-tenant restore outcomes surface through each
/// tenant's [`cxm_service::WarmStats`].
pub fn restore_registry(
    context: ContextMatchConfig,
    ceilings: QuotaCeilings,
    path: &Path,
) -> io::Result<TenantRegistry> {
    restore_registry_from(&DiskStore, context, ceilings, path)
}

/// [`restore_registry`] through an explicit store (fault-injection hook).
pub fn restore_registry_from(
    store: &impl SnapshotStore,
    context: ContextMatchConfig,
    ceilings: QuotaCeilings,
    path: &Path,
) -> io::Result<TenantRegistry> {
    let Some(bytes) = store.read(path)? else { return Ok(TenantRegistry::new(context, ceilings)) };
    let (mut snapshot, report) = match decode(&bytes) {
        Ok(decoded) => decoded,
        Err(_) => return Ok(TenantRegistry::new(context, ceilings)),
    };
    let interner = Arc::new(GramInterner::new());
    let interned = match snapshot.interner.take() {
        Some(dump) => interner.preload(dump).len(),
        None => 0,
    };
    let registry = TenantRegistry::with_interner(context, ceilings, interner);
    for entry in &snapshot.tenants {
        // No metadata (absent or degraded) means no way to know the tenant's
        // quotas/policy: skip it — the client's next register recreates it
        // cold, with warm state rebuilt on demand.
        let Some(meta) = &entry.meta else { continue };
        let policy = TenantPolicy { score_threshold: meta.score_threshold, top_k: meta.top_k };
        let quotas = TenantQuotas {
            source_cache_capacity: meta.quotas[0],
            selection_cache_tables: meta.quotas[1],
            restricted_profile_entries: meta.quotas[2],
            match_result_entries: meta.quotas[3],
        };
        let config = ceilings.clamp(&quotas, context);
        let suffix = format!(":{}", entry.label);
        let degraded = report.degraded.iter().filter(|name| name.ends_with(&suffix)).count();
        let service = MatchService::restore_from_parts(
            config,
            Arc::clone(registry.interner()),
            interned,
            &entry.warm,
            degraded,
        );
        registry.install_restored(&entry.label, policy, quotas, service);
    }
    Ok(registry)
}
