//! A minimal, deterministic JSON value tree with a strict parser and a
//! canonical writer.
//!
//! The workspace vendors no serialization crates, so the wire format is
//! hand-rolled here — and kept deliberately *canonical*: objects preserve
//! insertion order (a `Vec` of pairs, never a hash map), floats render via
//! Rust's shortest-round-trip `{}` formatting, and strings escape the same
//! byte sequence every time. Two structurally equal values therefore always
//! serialize to identical bytes, which is what lets the integration tests
//! compare a server response against a serial in-process reference *by
//! bytes* rather than by a lossy structural diff.

use std::fmt;

/// Hard bound on parser recursion (arrays/objects), against hostile frames.
const MAX_DEPTH: usize = 128;

/// A JSON value. Numbers keep the integer/float distinction the wire text
/// had: a literal without `.`/`e` parses as [`Json::Int`], everything else
/// as [`Json::Float`]. Objects are ordered pairs — key order is the
/// insertion (or wire) order, and duplicate keys are rejected by the parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number literal.
    Int(i64),
    /// A fractional or exponent-form number literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a non-negative count.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (either number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize to the canonical compact text (no whitespace).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize to the canonical compact bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_text().into_bytes()
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            // `{}` is Rust's shortest round-trip float rendering — the same
            // bytes for the same bits, every time.
            Json::Float(f) if f.is_finite() => out.push_str(&f.to_string()),
            // JSON has no NaN/Infinity literal; scores are finite by
            // construction, so this is a defensive degrade, not a round trip.
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &[u8]) -> Result<Json, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.input[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(pairs)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a `\uXXXX` low half must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump().ok_or_else(|| self.err("truncated UTF-8"))?;
                    }
                    let s = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated unicode escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| ParseError { message: "invalid number".into(), offset: start })
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                // Magnitude beyond i64: degrade to the float reading.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| ParseError { message: "invalid number".into(), offset: start }),
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x20..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = br#"{"a":1,"b":-2.5,"c":[true,false,null],"d":"x\ny","e":{}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Int(1)));
        assert_eq!(v.get("b"), Some(&Json::Float(-2.5)));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.to_bytes(), doc.to_vec());
    }

    #[test]
    fn writer_is_idempotent_over_parse() {
        // write(parse(write(x))) == write(x): the property the byte-identity
        // tests lean on when they re-serialize a parsed response.
        for v in [
            Json::Float(2.0),
            Json::Float(0.125),
            Json::Int(-7),
            Json::str("héllo \"q\" \\ tab\t"),
            Json::Array(vec![Json::Null, Json::Bool(true), Json::Float(1e300)]),
        ] {
            let once = v.to_text();
            let twice = parse(once.as_bytes()).unwrap().to_text();
            assert_eq!(once, twice);
        }
    }

    #[test]
    fn unicode_escapes_and_multibyte() {
        let text = "\"é\u{1F600}é\"";
        let v = parse(text.as_bytes()).unwrap();
        assert_eq!(v.as_str(), Some("é\u{1F600}é"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{\"a\":1,}"[..],
            b"[1 2]",
            b"{\"a\":1}x",
            b"\"unterminated",
            b"{\"a\":1,\"a\":2}",
            b"nul",
            b"",
        ] {
            assert!(parse(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn depth_is_bounded() {
        let hostile = vec![b'['; 4096];
        assert!(parse(&hostile).is_err());
    }
}
