//! The tenant registry: one isolated [`MatchService`] per tenant, all
//! sharing one [`GramInterner`].
//!
//! Isolation is the point — each tenant owns its catalog, its warm caches
//! and its policy, so one tenant's updates or cache churn can never evict
//! another's warm artifacts. The *only* shared matching state is the gram
//! interner, which is safe to share: grams are content-addressed, interned
//! scoring is id-assignment-independent, and sharing one id space is what
//! lets the flat kernels compare any tenant's source column against any
//! catalog without re-interning.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};

use cxm_core::ContextMatchConfig;
use cxm_matching::GramInterner;
use cxm_service::{MatchService, MutexExt, RwLockExt, ServiceConfig};

use crate::protocol::{TenantPolicy, TenantQuotas};
use crate::telemetry::{TenantCounters, TenantStats};

/// Server-wide **ceilings** on per-tenant warm-state quotas. A tenant's
/// [`TenantQuotas`] request is clamped to these at creation; omitted knobs
/// take the ceiling itself. Ceilings are what make the quota a guarantee:
/// no registration frame can grab an unbounded share of warm memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaCeilings {
    /// Max warm source column batches per tenant.
    pub source_cache_capacity: usize,
    /// Max selection-cache table buckets per tenant.
    pub selection_cache_tables: usize,
    /// Max cached view-restricted profiles per tenant.
    pub restricted_profile_entries: usize,
    /// Max memoized whole-match results per tenant.
    pub match_result_entries: usize,
}

impl Default for QuotaCeilings {
    /// The single-service defaults of [`ServiceConfig`] become the
    /// per-tenant ceilings.
    fn default() -> Self {
        let defaults = ServiceConfig::default();
        QuotaCeilings {
            source_cache_capacity: defaults.source_cache_capacity,
            selection_cache_tables: defaults.selection_cache_tables,
            restricted_profile_entries: defaults.restricted_profile_entries,
            match_result_entries: defaults.match_result_entries,
        }
    }
}

impl QuotaCeilings {
    /// Clamp a tenant's quota request into a concrete [`ServiceConfig`].
    pub fn clamp(&self, quotas: &TenantQuotas, context: ContextMatchConfig) -> ServiceConfig {
        let take = |requested: Option<usize>, ceiling: usize| match requested {
            Some(r) => r.min(ceiling),
            None => ceiling,
        };
        ServiceConfig {
            context,
            source_cache_capacity: take(quotas.source_cache_capacity, self.source_cache_capacity),
            selection_cache_tables: take(
                quotas.selection_cache_tables,
                self.selection_cache_tables,
            ),
            restricted_profile_entries: take(
                quotas.restricted_profile_entries,
                self.restricted_profile_entries,
            ),
            match_result_entries: take(quotas.match_result_entries, self.match_result_entries),
        }
    }
}

/// One tenant: an isolated warm [`MatchService`], the tenant's post-match
/// policy, and its serving counters.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant name (the registry key).
    pub name: String,
    /// The tenant's isolated match service.
    pub service: MatchService,
    /// Post-match response policy (mutable via re-registration).
    policy: Mutex<TenantPolicy>,
    /// The quota *request* the tenant registered with (pre-clamp). Persisted
    /// with the warm state so a restored server re-derives the same clamped
    /// [`ServiceConfig`] — even if the ceilings changed across the restart.
    quotas: TenantQuotas,
    /// Serving counters.
    pub counters: TenantCounters,
}

impl Tenant {
    /// The current policy (a copy; policies are tiny).
    pub fn policy(&self) -> TenantPolicy {
        *self.policy.lock_or_recover()
    }

    /// The quota request the tenant was created with (pre-clamp).
    pub fn quotas(&self) -> TenantQuotas {
        self.quotas
    }

    /// Swap the post-match policy. Takes effect for the next response
    /// encoded; never touches cached match results (the policy is applied
    /// at encode time).
    pub fn set_policy(&self, policy: TenantPolicy) {
        *self.policy.lock_or_recover() = policy;
    }

    /// This tenant's stats snapshot.
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            tenant: self.name.clone(),
            submits: self.counters.submits.load(Ordering::Relaxed),
            result_cache_hits: self.counters.result_cache_hits.load(Ordering::Relaxed),
            deadline_expiries: self.counters.deadline_expiries.load(Ordering::Relaxed),
            admission_rejects: self.counters.admission_rejects.load(Ordering::Relaxed),
            inflight_rejects: self.counters.inflight_rejects.load(Ordering::Relaxed),
            inflight: self.counters.inflight.load(Ordering::Relaxed),
            inflight_peak: self.counters.inflight_peak.load(Ordering::Relaxed),
            warm: self.service.warm_stats(),
        }
    }
}

/// The set of live tenants, keyed by name, plus the shared interner and the
/// construction parameters every new tenant gets.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    interner: Arc<GramInterner>,
    context: ContextMatchConfig,
    ceilings: QuotaCeilings,
}

impl TenantRegistry {
    /// An empty registry. Every tenant created through it runs `context`
    /// under `ceilings`, interning against one fresh shared interner.
    pub fn new(context: ContextMatchConfig, ceilings: QuotaCeilings) -> Self {
        TenantRegistry::with_interner(context, ceilings, Arc::new(GramInterner::new()))
    }

    /// An empty registry over an explicit interner — how a snapshot restore
    /// hands every tenant the interner already preloaded with the snapshot's
    /// dump.
    pub fn with_interner(
        context: ContextMatchConfig,
        ceilings: QuotaCeilings,
        interner: Arc<GramInterner>,
    ) -> Self {
        TenantRegistry { tenants: RwLock::new(BTreeMap::new()), interner, context, ceilings }
    }

    /// The server-wide quota ceilings tenants are clamped to.
    pub fn ceilings(&self) -> QuotaCeilings {
        self.ceilings
    }

    /// The `ContextMatch` configuration every tenant's service runs.
    pub fn context(&self) -> ContextMatchConfig {
        self.context
    }

    /// The interner shared by every tenant's catalog.
    pub fn interner(&self) -> &Arc<GramInterner> {
        &self.interner
    }

    /// The registered tenant of that name.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read_or_recover().get(name).cloned()
    }

    /// The tenant, created on first use. Quotas are clamped to the ceilings
    /// and **fixed at creation** (cache bounds are service-construction
    /// parameters); the policy is swapped on every call, so re-registering
    /// updates the projection knobs.
    pub fn register(&self, name: &str, policy: TenantPolicy, quotas: &TenantQuotas) -> Arc<Tenant> {
        if let Some(tenant) = self.get(name) {
            tenant.set_policy(policy);
            return tenant;
        }
        let mut tenants = self.tenants.write_or_recover();
        // Double-checked under the write lock: a racing register of the
        // same name must converge on one service, never build two.
        if let Some(tenant) = tenants.get(name) {
            tenant.set_policy(policy);
            return Arc::clone(tenant);
        }
        let config = self.ceilings.clamp(quotas, self.context);
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            service: MatchService::with_config_and_interner(config, Arc::clone(&self.interner)),
            policy: Mutex::new(policy),
            quotas: *quotas,
            counters: TenantCounters::default(),
        });
        tenants.insert(name.to_string(), Arc::clone(&tenant));
        tenant
    }

    /// Install a tenant around an already-restored service (snapshot restore
    /// path; the service must intern against this registry's interner).
    /// First registration wins, exactly like [`TenantRegistry::register`] —
    /// a name already present keeps its existing tenant.
    pub fn install_restored(
        &self,
        name: &str,
        policy: TenantPolicy,
        quotas: TenantQuotas,
        service: MatchService,
    ) -> Arc<Tenant> {
        debug_assert!(
            Arc::ptr_eq(service.catalog().interner(), &self.interner),
            "restored service must share the registry interner"
        );
        let mut tenants = self.tenants.write_or_recover();
        if let Some(tenant) = tenants.get(name) {
            return Arc::clone(tenant);
        }
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            service,
            policy: Mutex::new(policy),
            quotas,
            counters: TenantCounters::default(),
        });
        tenants.insert(name.to_string(), Arc::clone(&tenant));
        tenant
    }

    /// Every live tenant, in name order.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants.read_or_recover().values().cloned().collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read_or_recover().len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stats snapshots of every tenant (or the one named), in name order.
    pub fn stats(&self, only: Option<&str>) -> Vec<TenantStats> {
        let tenants = self.tenants.read_or_recover();
        tenants
            .values()
            .filter(|t| only.is_none_or(|name| t.name == name))
            .map(|t| t.stats())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_clamp_to_ceilings_and_default_to_them() {
        let ceilings = QuotaCeilings {
            source_cache_capacity: 4,
            selection_cache_tables: 8,
            restricted_profile_entries: 16,
            match_result_entries: 2,
        };
        let config = ceilings.clamp(
            &TenantQuotas {
                source_cache_capacity: Some(99),
                match_result_entries: Some(1),
                ..TenantQuotas::default()
            },
            ContextMatchConfig::default(),
        );
        assert_eq!(config.source_cache_capacity, 4, "request above ceiling clamps");
        assert_eq!(config.selection_cache_tables, 8, "omitted knob takes the ceiling");
        assert_eq!(config.match_result_entries, 1, "request below ceiling honored");
    }

    #[test]
    fn tenants_are_isolated_but_share_one_interner() {
        let registry = TenantRegistry::new(ContextMatchConfig::default(), QuotaCeilings::default());
        let a = registry.register("a", TenantPolicy::default(), &TenantQuotas::default());
        let b = registry.register("b", TenantPolicy::default(), &TenantQuotas::default());
        assert_eq!(registry.len(), 2);
        assert!(
            Arc::ptr_eq(a.service.catalog().interner(), b.service.catalog().interner()),
            "one shared interner"
        );
        assert!(
            Arc::ptr_eq(a.service.catalog().interner(), registry.interner()),
            "the registry's own"
        );

        // Re-registering returns the same tenant (same service, warm state
        // intact) and swaps only the policy.
        let again = registry.register(
            "a",
            TenantPolicy { top_k: Some(1), ..TenantPolicy::default() },
            &TenantQuotas::default(),
        );
        assert!(Arc::ptr_eq(&a, &again));
        assert_eq!(again.policy().top_k, Some(1));
        assert_eq!(registry.len(), 2);
        assert!(registry.get("missing").is_none());
    }
}
