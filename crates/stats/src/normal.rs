//! The standard normal distribution: PDF, CDF Φ, and quantiles.
//!
//! Two places in the paper rely on the normal distribution:
//!
//! * §2.3 — per-matcher raw scores are converted into confidences by modelling
//!   the distribution of a source attribute's scores against all target
//!   attributes as a normal and reading off tail probabilities;
//! * §3.2.2 — `ClusteredViewGen` accepts a view family when
//!   `Φ((c − μ)/σ) > T`, where `c` is the classifier's number of correct
//!   classifications and `(μ, σ)` come from the binomial null model.

/// Probability density of the standard normal at `x`.
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Cumulative distribution function Φ(x) of the standard normal.
///
/// Implemented via the complementary error function with the Abramowitz &
/// Stegun 7.1.26 polynomial approximation; absolute error is below 1.5e-7,
/// far tighter than anything the matching heuristics need.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Quantile (inverse CDF) of the standard normal, via bisection on
/// [`normal_cdf`]. `p` is clamped to (1e-12, 1 − 1e-12).
pub fn normal_quantile(p: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    let (mut lo, mut hi) = (-10.0, 10.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Standardize `x` against a distribution with the given mean and standard
/// deviation. With `sigma == 0`, returns 0 when `x == mu`, and ±∞-like large
/// values otherwise (so that a degenerate score distribution still orders
/// candidates sensibly rather than dividing by zero).
pub fn z_score(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma > 0.0 {
        (x - mu) / sigma
    } else if (x - mu).abs() < f64::EPSILON {
        0.0
    } else if x > mu {
        1.0e6
    } else {
        -1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn pdf_known_values() {
        assert!(close(normal_pdf(0.0), 0.3989422804, 1e-9));
        assert!(close(normal_pdf(1.0), 0.2419707245, 1e-9));
        assert!(close(normal_pdf(-1.0), normal_pdf(1.0), 1e-12));
    }

    #[test]
    fn cdf_known_values() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-7));
        assert!(close(normal_cdf(1.0), 0.8413447, 1e-6));
        assert!(close(normal_cdf(-1.0), 0.1586553, 1e-6));
        assert!(close(normal_cdf(1.6448536), 0.95, 1e-5));
        assert!(close(normal_cdf(2.0), 0.9772499, 1e-6));
        assert!(normal_cdf(8.0) > 0.9999999);
        assert!(normal_cdf(-8.0) < 1e-7);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -5.0;
        while x <= 5.0 {
            let c = normal_cdf(x);
            assert!(c >= prev - 1e-12, "CDF decreased at x={x}");
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let x = normal_quantile(p);
            assert!(close(normal_cdf(x), p, 1e-6), "p={p}");
        }
        assert!(close(normal_quantile(0.95), 1.6449, 1e-3));
        assert!(close(normal_quantile(0.5), 0.0, 1e-6));
    }

    #[test]
    fn quantile_handles_extreme_probabilities() {
        assert!(normal_quantile(0.0) < -6.0);
        assert!(normal_quantile(1.0) > 6.0);
    }

    #[test]
    fn z_score_standardizes() {
        assert!(close(z_score(7.0, 5.0, 2.0), 1.0, 1e-12));
        assert!(close(z_score(3.0, 5.0, 2.0), -1.0, 1e-12));
        // Degenerate sigma.
        assert_eq!(z_score(5.0, 5.0, 0.0), 0.0);
        assert!(z_score(6.0, 5.0, 0.0) > 1.0e5);
        assert!(z_score(4.0, 5.0, 0.0) < -1.0e5);
    }
}
