//! F-measures and match-set quality.
//!
//! Two related quantities appear in the paper:
//!
//! * the classifier-quality F-β (§3.2.2), computed from micro-averaged
//!   precision and recall — [`f_beta`];
//! * the *evaluation* metric of §5: "Accuracy is … the percentage of the
//!   correct matches found, and precision as the percentage of matches found
//!   that are correct. FMeasure … is equal to 2·acc·prec/(acc+prec)" —
//!   [`MatchSetQuality`] computes all three from a found-set and a truth-set.

use std::collections::BTreeSet;

/// The Fβ combination of precision `p` and recall `r`:
/// `(1 + β²)·p·r / (β²·p + r)`; 0 when both inputs are 0.
pub fn f_beta(precision: f64, recall: f64, beta: f64) -> f64 {
    let b2 = beta * beta;
    let denom = b2 * precision + recall;
    if denom <= 0.0 {
        0.0
    } else {
        (1.0 + b2) * precision * recall / denom
    }
}

/// The harmonic-mean F-measure used throughout §5 (β = 1); arguments are in
/// [0, 1] or percentages — the function is scale-preserving either way.
pub fn f_measure(accuracy: f64, precision: f64) -> f64 {
    if accuracy + precision <= 0.0 {
        0.0
    } else {
        2.0 * accuracy * precision / (accuracy + precision)
    }
}

/// Quality of a set of found items against a reference (ground-truth) set.
///
/// The item type only needs to be orderable so the sets can be compared; the
/// evaluation harness instantiates it with canonical string renderings of
/// contextual matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchSetQuality {
    /// Number of found items that are correct (true positives).
    pub true_positives: usize,
    /// Number of found items that are not in the truth set.
    pub false_positives: usize,
    /// Number of truth items that were not found.
    pub false_negatives: usize,
}

impl MatchSetQuality {
    /// Compare a found set against a truth set.
    pub fn compare<T: Ord + Clone>(found: &[T], truth: &[T]) -> MatchSetQuality {
        let found: BTreeSet<T> = found.iter().cloned().collect();
        let truth: BTreeSet<T> = truth.iter().cloned().collect();
        let tp = found.intersection(&truth).count();
        MatchSetQuality {
            true_positives: tp,
            false_positives: found.len() - tp,
            false_negatives: truth.len() - tp,
        }
    }

    /// Accuracy (the paper's term; recall in IR terms): fraction of the truth
    /// set that was found. 1.0 for an empty truth set.
    pub fn accuracy(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Precision: fraction of found items that are correct. 1.0 when nothing
    /// was found *and* nothing should have been found, 0.0 when items were
    /// missed but nothing was found.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            if self.false_negatives == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// The paper's FMeasure = 2·acc·prec/(acc+prec), as a fraction in [0, 1].
    pub fn f_measure(&self) -> f64 {
        f_measure(self.accuracy(), self.precision())
    }

    /// FMeasure expressed as a percentage (how the figures report it).
    pub fn f_measure_pct(&self) -> f64 {
        100.0 * self.f_measure()
    }

    /// Accuracy expressed as a percentage (Figures 19–21 report "% Accuracy").
    pub fn accuracy_pct(&self) -> f64 {
        100.0 * self.accuracy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn f_beta_known_values() {
        assert!(close(f_beta(1.0, 1.0, 1.0), 1.0));
        assert!(close(f_beta(0.5, 0.5, 1.0), 0.5));
        assert!(close(f_beta(1.0, 0.0, 1.0), 0.0));
        assert!(close(f_beta(0.0, 0.0, 1.0), 0.0));
        // β = 2 weights recall higher.
        let f2 = f_beta(0.5, 1.0, 2.0);
        let f1 = f_beta(0.5, 1.0, 1.0);
        assert!(f2 > f1);
    }

    #[test]
    fn f_measure_is_harmonic_mean() {
        assert!(close(f_measure(1.0, 1.0), 1.0));
        assert!(close(f_measure(0.8, 0.4), 2.0 * 0.8 * 0.4 / 1.2));
        assert!(close(f_measure(0.0, 0.9), 0.0));
        // Percentage scale works identically.
        assert!(close(f_measure(80.0, 40.0), 2.0 * 80.0 * 40.0 / 120.0));
    }

    #[test]
    fn compare_counts_overlap() {
        let found = vec!["a", "b", "c"];
        let truth = vec!["b", "c", "d", "e"];
        let q = MatchSetQuality::compare(&found, &truth);
        assert_eq!(q.true_positives, 2);
        assert_eq!(q.false_positives, 1);
        assert_eq!(q.false_negatives, 2);
        assert!(close(q.accuracy(), 0.5));
        assert!(close(q.precision(), 2.0 / 3.0));
        assert!(close(q.f_measure(), f_measure(0.5, 2.0 / 3.0)));
        assert!(close(q.f_measure_pct(), 100.0 * q.f_measure()));
    }

    #[test]
    fn perfect_and_empty_cases() {
        let q = MatchSetQuality::compare(&["x", "y"], &["x", "y"]);
        assert!(close(q.f_measure(), 1.0));
        assert!(close(q.accuracy_pct(), 100.0));

        // Nothing found, nothing expected → vacuously perfect.
        let q = MatchSetQuality::compare::<&str>(&[], &[]);
        assert!(close(q.accuracy(), 1.0));
        assert!(close(q.precision(), 1.0));
        assert!(close(q.f_measure(), 1.0));

        // Nothing found, something expected → zero.
        let q = MatchSetQuality::compare(&[], &["x"]);
        assert!(close(q.accuracy(), 0.0));
        assert!(close(q.precision(), 0.0));
        assert!(close(q.f_measure(), 0.0));

        // Something found, nothing expected → precision zero, accuracy vacuous.
        let q = MatchSetQuality::compare(&["x"], &[]);
        assert!(close(q.accuracy(), 1.0));
        assert!(close(q.precision(), 0.0));
        assert!(close(q.f_measure(), 0.0));
    }

    #[test]
    fn duplicates_in_inputs_are_set_collapsed() {
        let q = MatchSetQuality::compare(&["a", "a", "b"], &["a", "b", "b"]);
        assert_eq!(q.true_positives, 2);
        assert_eq!(q.false_positives, 0);
        assert_eq!(q.false_negatives, 0);
    }
}
