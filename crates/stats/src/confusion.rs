//! Confusion matrices and micro-averaged precision / recall.
//!
//! `ClusteredViewGen` (§3.2.2) assesses a classifier "in a standard way as the
//! combined, micro-averaged, precision and recall … according to the standard
//! F-β function with β = 1". [`ConfusionMatrix`] accumulates per-label
//! true-positive / false-positive / false-negative counts from (expected,
//! predicted) label pairs, and [`MicroAverage`] exposes the pooled scores.

use std::collections::BTreeMap;

use crate::fmeasure::f_beta;

/// Multi-class confusion counts keyed by label string.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfusionMatrix {
    /// counts[(expected, predicted)] = number of test items.
    counts: BTreeMap<(String, String), usize>,
}

/// Pooled (micro-averaged) precision / recall over all labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroAverage {
    /// Micro-averaged precision: ΣTP / (ΣTP + ΣFP).
    pub precision: f64,
    /// Micro-averaged recall: ΣTP / (ΣTP + ΣFN).
    pub recall: f64,
    /// Plain accuracy: correct / total.
    pub accuracy: f64,
    /// Number of correctly classified items (the `c` of the significance test).
    pub correct: usize,
    /// Total number of classified items.
    pub total: usize,
}

impl MicroAverage {
    /// Micro-averaged F-β of the pooled precision and recall.
    pub fn f_beta(&self, beta: f64) -> f64 {
        f_beta(self.precision, self.recall, beta)
    }

    /// Micro-averaged F1.
    pub fn f1(&self) -> f64 {
        self.f_beta(1.0)
    }
}

impl ConfusionMatrix {
    /// Create an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one classification outcome.
    pub fn record(&mut self, expected: impl Into<String>, predicted: impl Into<String>) {
        *self.counts.entry((expected.into(), predicted.into())).or_insert(0) += 1;
    }

    /// Record a batch of (expected, predicted) pairs.
    pub fn record_all<I, A, B>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<String>,
        B: Into<String>,
    {
        for (e, p) in pairs {
            self.record(e, p);
        }
    }

    /// Total number of recorded outcomes.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Number of correct outcomes (expected == predicted).
    pub fn correct(&self) -> usize {
        self.counts.iter().filter(|((e, p), _)| e == p).map(|(_, &c)| c).sum()
    }

    /// All labels seen on either side, sorted.
    pub fn labels(&self) -> Vec<String> {
        let mut labels: Vec<String> =
            self.counts.keys().flat_map(|(e, p)| [e.clone(), p.clone()]).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// True positives for one label.
    pub fn true_positives(&self, label: &str) -> usize {
        self.counts.get(&(label.to_string(), label.to_string())).copied().unwrap_or(0)
    }

    /// False positives for one label (predicted = label, expected ≠ label).
    pub fn false_positives(&self, label: &str) -> usize {
        self.counts.iter().filter(|((e, p), _)| p == label && e != label).map(|(_, &c)| c).sum()
    }

    /// False negatives for one label (expected = label, predicted ≠ label).
    pub fn false_negatives(&self, label: &str) -> usize {
        self.counts.iter().filter(|((e, p), _)| e == label && p != label).map(|(_, &c)| c).sum()
    }

    /// Per-label precision (1.0 when the label was never predicted).
    pub fn precision(&self, label: &str) -> f64 {
        let tp = self.true_positives(label) as f64;
        let fp = self.false_positives(label) as f64;
        if tp + fp == 0.0 {
            1.0
        } else {
            tp / (tp + fp)
        }
    }

    /// Per-label recall (1.0 when the label never appears as expected).
    pub fn recall(&self, label: &str) -> f64 {
        let tp = self.true_positives(label) as f64;
        let fn_ = self.false_negatives(label) as f64;
        if tp + fn_ == 0.0 {
            1.0
        } else {
            tp / (tp + fn_)
        }
    }

    /// Micro-averaged (pooled) precision / recall / accuracy.
    ///
    /// In single-label multi-class classification the pooled FP count equals
    /// the pooled FN count, so micro precision = micro recall = accuracy; all
    /// three are still exposed separately because the disjunct-merging code and
    /// the reports read them under their own names.
    pub fn micro_average(&self) -> MicroAverage {
        let total = self.total();
        let correct = self.correct();
        let labels = self.labels();
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for l in &labels {
            tp += self.true_positives(l);
            fp += self.false_positives(l);
            fn_ += self.false_negatives(l);
        }
        let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
        let accuracy = if total == 0 { 0.0 } else { correct as f64 / total as f64 };
        MicroAverage { precision, recall, accuracy, correct, total }
    }

    /// Error pairs `(expected, predicted)` with expected ≠ predicted and their
    /// counts, sorted by descending count. False positives and false negatives
    /// are *not* distinguished — `(v, v')` is pooled with `(v', v)` — exactly as
    /// the early-disjunct merging step of §3.3 requires.
    pub fn pooled_errors(&self) -> Vec<((String, String), usize)> {
        let mut pooled: BTreeMap<(String, String), usize> = BTreeMap::new();
        for ((e, p), &c) in &self.counts {
            if e == p {
                continue;
            }
            let key = if e <= p { (e.clone(), p.clone()) } else { (p.clone(), e.clone()) };
            *pooled.entry(key).or_insert(0) += c;
        }
        let mut out: Vec<_> = pooled.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// How many times `label` occurs as the expected label.
    pub fn expected_count(&self, label: &str) -> usize {
        self.counts.iter().filter(|((e, _), _)| e == label).map(|(_, &c)| c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn sample_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        // 3 correct book, 1 book misread as cd, 2 correct cd, 1 cd misread as book.
        m.record_all(vec![
            ("book", "book"),
            ("book", "book"),
            ("book", "book"),
            ("book", "cd"),
            ("cd", "cd"),
            ("cd", "cd"),
            ("cd", "book"),
        ]);
        m
    }

    #[test]
    fn counts_and_labels() {
        let m = sample_matrix();
        assert_eq!(m.total(), 7);
        assert_eq!(m.correct(), 5);
        assert_eq!(m.labels(), vec!["book".to_string(), "cd".to_string()]);
        assert_eq!(m.expected_count("book"), 4);
        assert_eq!(m.expected_count("cd"), 3);
    }

    #[test]
    fn per_label_counts() {
        let m = sample_matrix();
        assert_eq!(m.true_positives("book"), 3);
        assert_eq!(m.false_positives("book"), 1);
        assert_eq!(m.false_negatives("book"), 1);
        assert_eq!(m.true_positives("cd"), 2);
        assert_eq!(m.false_positives("cd"), 1);
        assert_eq!(m.false_negatives("cd"), 1);
    }

    #[test]
    fn per_label_precision_recall() {
        let m = sample_matrix();
        assert!(close(m.precision("book"), 0.75));
        assert!(close(m.recall("book"), 0.75));
        assert!(close(m.precision("cd"), 2.0 / 3.0));
        assert!(close(m.recall("cd"), 2.0 / 3.0));
        // Unseen label: conventions.
        assert!(close(m.precision("dvd"), 1.0));
        assert!(close(m.recall("dvd"), 1.0));
    }

    #[test]
    fn micro_average_equals_accuracy_for_single_label() {
        let m = sample_matrix();
        let micro = m.micro_average();
        assert!(close(micro.accuracy, 5.0 / 7.0));
        assert!(close(micro.precision, 5.0 / 7.0));
        assert!(close(micro.recall, 5.0 / 7.0));
        assert!(close(micro.f1(), 5.0 / 7.0));
        assert_eq!(micro.correct, 5);
        assert_eq!(micro.total, 7);
    }

    #[test]
    fn empty_matrix_micro_average() {
        let m = ConfusionMatrix::new();
        let micro = m.micro_average();
        assert_eq!(micro.total, 0);
        assert_eq!(micro.accuracy, 0.0);
        assert_eq!(micro.precision, 0.0);
    }

    #[test]
    fn pooled_errors_merge_directions() {
        let mut m = ConfusionMatrix::new();
        m.record("a", "b");
        m.record("b", "a");
        m.record("a", "c");
        m.record("a", "a");
        let errs = m.pooled_errors();
        assert_eq!(errs.len(), 2);
        // (a,b) pooled count 2 comes first.
        assert_eq!(errs[0], (("a".to_string(), "b".to_string()), 2));
        assert_eq!(errs[1], (("a".to_string(), "c".to_string()), 1));
    }

    #[test]
    fn perfect_classifier_has_no_errors() {
        let mut m = ConfusionMatrix::new();
        m.record_all(vec![("x", "x"), ("y", "y")]);
        assert!(m.pooled_errors().is_empty());
        assert!(close(m.micro_average().f1(), 1.0));
    }
}
