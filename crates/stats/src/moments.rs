//! Running moments: mean, variance, standard deviation.
//!
//! The matcher-score normalization of §2.3 ("the distribution of scores to all
//! target attributes are treated as samples of a normal distribution") needs
//! the empirical mean and standard deviation of small score samples. The
//! accumulator uses Welford's algorithm for numerical stability.

/// Online accumulator of count, mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an accumulator from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut m = Moments::new();
        for x in samples {
            m.push(x);
        }
        m
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`; 0 for fewer than 1 sample).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by `n - 1`; 0 for fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merge two accumulators (parallel Welford combination).
    pub fn merge(&self, other: &Moments) -> Moments {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Moments { n, mean, m2 }
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    Moments::from_samples(xs.iter().copied()).mean()
}

/// Population standard deviation of a slice.
pub fn population_std_dev(xs: &[f64]) -> f64 {
    Moments::from_samples(xs.iter().copied()).population_std_dev()
}

/// Sample standard deviation of a slice.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    Moments::from_samples(xs.iter().copied()).sample_std_dev()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let m = Moments::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count(), 8);
        assert!(close(m.mean(), 5.0));
        assert!(close(m.population_variance(), 4.0));
        assert!(close(m.population_std_dev(), 2.0));
        assert!(close(m.sample_variance(), 32.0 / 7.0));
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let m = Moments::from_samples([3.5]);
        assert!(close(m.mean(), 3.5));
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let a = Moments::from_samples([1.0, 2.0, 3.0]);
        let b = Moments::from_samples([10.0, 20.0]);
        let merged = a.merge(&b);
        let direct = Moments::from_samples([1.0, 2.0, 3.0, 10.0, 20.0]);
        assert_eq!(merged.count(), direct.count());
        assert!(close(merged.mean(), direct.mean()));
        assert!(close(merged.population_variance(), direct.population_variance()));
        // Merging with empty is identity.
        assert!(close(a.merge(&Moments::new()).mean(), a.mean()));
        assert!(close(Moments::new().merge(&b).mean(), b.mean()));
    }

    #[test]
    fn slice_helpers() {
        assert!(close(mean(&[1.0, 3.0]), 2.0));
        assert!(close(population_std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 2.0));
        assert!(sample_std_dev(&[]) == 0.0);
    }

    #[test]
    fn welford_is_stable_for_shifted_data() {
        // Large offset should not destroy the variance estimate.
        let offset = 1.0e9;
        let m = Moments::from_samples([offset + 1.0, offset + 2.0, offset + 3.0]);
        assert!(close(m.population_variance(), 2.0 / 3.0));
    }
}
