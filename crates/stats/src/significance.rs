//! The significance test of `ClusteredViewGen` (§3.2.2).
//!
//! The null hypothesis is that the classified attribute `h` and the
//! categorical attribute `l` are uncorrelated and labels are assigned randomly
//! in proportion to their training frequencies. Under that hypothesis, the
//! naive classifier `C_Naive` — always answering the most common training label
//! `v*` — scores a binomially distributed number of correct classifications
//! with `p = |v*| / n_train`, mean `μ = n_test·p` and `σ = sqrt(n_test·p·(1−p))`.
//!
//! The trained classifier's correct count `c` is then standardized and the
//! family of views is accepted iff `Φ((c − μ)/σ) > T` (typically 95 %).

use crate::binomial::Binomial;
use crate::normal::{normal_cdf, z_score};

/// Outcome of the significance comparison between a trained classifier and the
/// naive (majority-label) null model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificanceTest {
    /// Number of correct classifications `c` achieved on the testing data.
    pub correct: usize,
    /// Size of the testing set `n_test`.
    pub n_test: usize,
    /// Null-model success probability `p = |v*| / n_train`.
    pub null_p: f64,
    /// Null-model mean `μ = n_test · p`.
    pub mu: f64,
    /// Null-model standard deviation `σ = sqrt(n_test·p·(1−p))`.
    pub sigma: f64,
    /// The standardized score `(c − μ)/σ`.
    pub z: f64,
    /// `Φ(z)` — the probability that the alternative hypothesis ("l can be
    /// predicted by h") is preferred; compared against the threshold `T`.
    pub confidence: f64,
}

impl SignificanceTest {
    /// True when the classifier beats the null model at the given confidence
    /// threshold `T` (e.g. 0.95).
    pub fn is_significant(&self, threshold: f64) -> bool {
        self.confidence > threshold
    }

    /// The likelihood of the null hypothesis, `1 − Φ(z)` — the quantity the
    /// paper says should be small.
    pub fn null_likelihood(&self) -> f64 {
        1.0 - self.confidence
    }
}

/// Run the significance test.
///
/// * `correct` — number of test items the trained classifier got right (`c`);
/// * `n_test` — number of test items;
/// * `majority_count` — number of *training* items labelled with the most
///   common label `v*`;
/// * `n_train` — number of training items.
///
/// Degenerate inputs (empty training or testing sets) report zero confidence:
/// no evidence is never significant evidence.
pub fn significance_of_classifier(
    correct: usize,
    n_test: usize,
    majority_count: usize,
    n_train: usize,
) -> SignificanceTest {
    if n_test == 0 || n_train == 0 {
        return SignificanceTest {
            correct,
            n_test,
            null_p: 0.0,
            mu: 0.0,
            sigma: 0.0,
            z: 0.0,
            confidence: 0.0,
        };
    }
    let p = (majority_count as f64 / n_train as f64).clamp(0.0, 1.0);
    let null = Binomial::new(n_test as u64, p);
    let mu = null.mean();
    let sigma = null.std_dev();
    let z = z_score(correct as f64, mu, sigma);
    let confidence = if sigma == 0.0 {
        // The null model is deterministic (p = 0 or p = 1). Beating it strictly
        // is significant; merely equalling it is not.
        if (correct as f64) > mu {
            1.0
        } else {
            0.0
        }
    } else {
        normal_cdf(z)
    };
    SignificanceTest { correct, n_test, null_p: p, mu, sigma, z, confidence }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_classifier_is_significant() {
        // 95 of 100 correct vs a 50/50 null → overwhelmingly significant.
        let t = significance_of_classifier(95, 100, 100, 200);
        assert!(t.confidence > 0.999);
        assert!(t.is_significant(0.95));
        assert!(t.null_likelihood() < 0.001);
        assert!((t.mu - 50.0).abs() < 1e-9);
        assert!((t.sigma - 5.0).abs() < 1e-9);
        assert!((t.z - 9.0).abs() < 1e-9);
    }

    #[test]
    fn chance_level_classifier_is_not_significant() {
        // 50 of 100 correct vs a 50/50 null → Φ(0) = 0.5, not significant.
        let t = significance_of_classifier(50, 100, 100, 200);
        assert!((t.confidence - 0.5).abs() < 1e-6);
        assert!(!t.is_significant(0.95));
    }

    #[test]
    fn below_chance_classifier_is_not_significant() {
        let t = significance_of_classifier(30, 100, 100, 200);
        assert!(t.confidence < 0.5);
        assert!(!t.is_significant(0.5));
    }

    #[test]
    fn skewed_majority_raises_the_bar() {
        // Null model already answers correctly 90% of the time; a classifier at
        // 92/100 is barely above it and should not clear a 95% threshold.
        let t = significance_of_classifier(92, 100, 180, 200);
        assert!(!t.is_significant(0.95));
        // But 99/100 should.
        let t = significance_of_classifier(99, 100, 180, 200);
        assert!(t.is_significant(0.95));
    }

    #[test]
    fn degenerate_inputs_have_zero_confidence() {
        assert_eq!(significance_of_classifier(0, 0, 0, 10).confidence, 0.0);
        assert_eq!(significance_of_classifier(5, 10, 0, 0).confidence, 0.0);
    }

    #[test]
    fn deterministic_null_model() {
        // All training labels identical (p = 1): matching it exactly is not
        // significant, and beating it is impossible, so confidence is 0 unless
        // correct > n_test (which cannot happen).
        let t = significance_of_classifier(10, 10, 50, 50);
        assert_eq!(t.sigma, 0.0);
        assert_eq!(t.confidence, 0.0);

        // p = 0 null (majority label absent from training — artificial, but the
        // maths should hold): any correct answer is significant.
        let t = significance_of_classifier(1, 10, 0, 50);
        assert_eq!(t.confidence, 1.0);
    }

    #[test]
    fn monotone_in_correct_count() {
        let mut prev = 0.0;
        for c in (0..=100).step_by(10) {
            let t = significance_of_classifier(c, 100, 60, 200);
            assert!(t.confidence >= prev - 1e-12);
            prev = t.confidence;
        }
    }
}
