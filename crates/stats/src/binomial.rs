//! The binomial distribution used as the null model in `ClusteredViewGen`.
//!
//! §3.2.2: under the null hypothesis that a categorical attribute `l` is
//! unrelated to the classified attribute `h`, the number of correct
//! classifications made by the naive classifier (always predicting the most
//! common label `v*`) over `n_test` trials is binomial with
//! `p = |v*| / n_train`. Its mean is `n_test · p` and its standard deviation is
//! `sqrt(n_test · p · (1 − p))`.

use crate::normal::normal_cdf;

/// A binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    /// Number of trials.
    pub n: u64,
    /// Per-trial success probability (clamped to [0, 1]).
    pub p: f64,
}

impl Binomial {
    /// Create a binomial distribution; `p` is clamped into [0, 1].
    pub fn new(n: u64, p: f64) -> Self {
        Binomial { n, p: p.clamp(0.0, 1.0) }
    }

    /// Expected number of successes, `n · p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n · p · (1 − p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Standard deviation `sqrt(n · p · (1 − p))`.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Probability mass `P(X = k)`, computed in log space so large `n` does not
    /// overflow.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let n = self.n as f64;
        let kf = k as f64;
        let log_pmf = ln_choose(self.n, k) + kf * self.p.ln() + (n - kf) * (1.0 - self.p).ln();
        log_pmf.exp()
    }

    /// Cumulative probability `P(X ≤ k)` by direct summation (the inputs in
    /// this system have `n` in the hundreds at most).
    pub fn cdf(&self, k: u64) -> f64 {
        let k = k.min(self.n);
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// Normal approximation of `P(X ≤ x)` with continuity correction — this is
    /// the approximation the paper's significance test uses (`Φ((c − μ)/σ)`).
    pub fn normal_approx_cdf(&self, x: f64) -> f64 {
        let sigma = self.std_dev();
        if sigma == 0.0 {
            return if x >= self.mean() { 1.0 } else { 0.0 };
        }
        normal_cdf((x + 0.5 - self.mean()) / sigma)
    }
}

/// Natural log of the binomial coefficient `C(n, k)` via `ln Γ`.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)` via Stirling's series for large `n`, exact summation for small `n`.
fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 32 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let x = n as f64 + 1.0;
    // Stirling's approximation to ln Γ(x).
    (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn moments_match_formulas() {
        let b = Binomial::new(100, 0.3);
        assert!(close(b.mean(), 30.0, 1e-12));
        assert!(close(b.variance(), 21.0, 1e-12));
        assert!(close(b.std_dev(), 21.0f64.sqrt(), 1e-12));
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.37);
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!(close(total, 1.0, 1e-9));
    }

    #[test]
    fn pmf_known_values() {
        // Binomial(4, 0.5): P(X=2) = 6/16.
        let b = Binomial::new(4, 0.5);
        assert!(close(b.pmf(2), 0.375, 1e-12));
        assert!(close(b.pmf(0), 0.0625, 1e-12));
        assert_eq!(b.pmf(5), 0.0);
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(1), 0.0);
        assert_eq!(zero.cdf(10), 1.0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.pmf(3), 0.0);
        // Clamping of out-of-range p.
        assert_eq!(Binomial::new(5, 1.7).p, 1.0);
        assert_eq!(Binomial::new(5, -0.2).p, 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let b = Binomial::new(30, 0.42);
        let mut prev = 0.0;
        for k in 0..=30 {
            let c = b.cdf(k);
            assert!(c >= prev - 1e-12);
            assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        assert!(close(b.cdf(30), 1.0, 1e-9));
    }

    #[test]
    fn normal_approximation_tracks_exact_cdf() {
        let b = Binomial::new(200, 0.4);
        for &k in &[60u64, 70, 80, 90, 100] {
            let exact = b.cdf(k);
            let approx = b.normal_approx_cdf(k as f64);
            assert!(close(exact, approx, 0.02), "k={k}: exact={exact} approx={approx}");
        }
    }

    #[test]
    fn normal_approx_degenerate_sigma() {
        let b = Binomial::new(50, 1.0);
        assert_eq!(b.normal_approx_cdf(50.0), 1.0);
        assert_eq!(b.normal_approx_cdf(49.0), 0.0);
    }

    #[test]
    fn ln_factorial_consistency() {
        // Stirling branch vs exact branch should agree where they meet.
        let exact: f64 = (2..=40u64).map(|i| (i as f64).ln()).sum();
        assert!(close(ln_factorial(40), exact, 1e-6));
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }
}
