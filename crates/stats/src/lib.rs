//! # cxm-stats
//!
//! Statistical primitives used throughout the contextual schema matching system
//! (*Putting Context into Schema Matching*, Bohannon et al., VLDB 2006):
//!
//! * running moments (mean / variance / standard deviation) — [`moments`],
//! * the normal distribution (PDF, CDF Φ, quantiles) — [`normal`]; §2.3 of the
//!   paper converts raw matcher scores into confidences by treating the score
//!   distribution as samples of a normal,
//! * the binomial null model used by `ClusteredViewGen`'s significance test —
//!   [`binomial`] and [`significance`],
//! * micro-averaged precision / recall / F-β for classifier quality — [`confusion`],
//! * accuracy / precision / F-measure over match sets for the experimental
//!   evaluation (§5: `FMeasure = 2·acc·prec/(acc+prec)`) — [`fmeasure`].
//!
//! The crate is dependency-free and completely deterministic.

pub mod binomial;
pub mod confusion;
pub mod fmeasure;
pub mod moments;
pub mod normal;
pub mod significance;

pub use binomial::Binomial;
pub use confusion::{ConfusionMatrix, MicroAverage};
pub use fmeasure::{f_beta, f_measure, MatchSetQuality};
pub use moments::{mean, population_std_dev, sample_std_dev, Moments};
pub use normal::{normal_cdf, normal_pdf, normal_quantile, z_score};
pub use significance::{significance_of_classifier, SignificanceTest};
